"""Shared helpers for the benchmark suite's standalone entry points.

Every ``benchmarks/bench_*.py`` module doubles as a script: ``python
benchmarks/bench_X.py`` runs a scaled-down version of its reproduction and
writes a ``BENCH_<name>.json`` report (to ``$REPRO_BENCH_DIR`` or the
current directory) so CI can archive the perf trajectory.  This module
holds the bits they share; it is not collected by pytest (no ``bench_``
prefix match for test files, no ``test_`` functions).
"""

import json
import os
import sys
import time


def ensure_src_on_path() -> None:
    """Make ``import repro`` work when run as a plain script."""
    src = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
    if src not in sys.path:
        sys.path.insert(0, src)


def write_report(name: str, report: dict) -> str:
    """Write ``BENCH_<name>.json`` and return its path."""
    out_dir = os.environ.get("REPRO_BENCH_DIR", ".")
    path = os.path.join(out_dir, f"BENCH_{name}.json")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=1, sort_keys=True)
        fh.write("\n")
    return path


def timed(fn, *args, **kwargs):
    """Run ``fn`` and return ``(result, elapsed_seconds)``."""
    started = time.perf_counter()  # repro-lint: disable=RL02 -- benchmark harness measures real wall time
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - started  # repro-lint: disable=RL02 -- benchmark harness measures real wall time


def run_and_report(name: str, build_report) -> int:
    """Standard ``main()`` body: build the report dict, write it, print it."""
    report = build_report()
    path = write_report(name, report)
    json.dump(report, sys.stdout, indent=1, sort_keys=True)
    print()
    print(f"wrote {path}", file=sys.stderr)
    return 0
