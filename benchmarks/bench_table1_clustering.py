"""Benchmark / reproduction of Table I: clustering the six NAS kernels.

The benchmarked unit is the full Table I computation for one benchmark
(analytic communication graph at 256 ranks + partitioning + metrics).  The
assertions pin the reproduced values to the paper's within loose bands so a
regression in the partitioner or in the synthetic communication patterns is
caught here.  Run standalone it writes ``BENCH_table1_clustering.json``.
"""

import pytest
from bench_utils import ensure_src_on_path, run_and_report, timed

ensure_src_on_path()

from repro.analysis.table1 import build_table1, render_table1, table1_row  # noqa: E402
from repro.clustering.presets import TABLE1_PAPER_VALUES  # noqa: E402
from repro.workloads.nas import NAS_BENCHMARKS  # noqa: E402


@pytest.mark.parametrize("name", sorted(NAS_BENCHMARKS))
def test_table1_row(benchmark, name, table_nprocs):
    row = benchmark.pedantic(
        table1_row, args=(name,), kwargs={"nprocs": table_nprocs}, rounds=1, iterations=1
    )
    paper = TABLE1_PAPER_VALUES[name]
    assert row.num_clusters == paper["clusters"]
    assert row.rollback_pct == pytest.approx(paper["rollback_pct"], abs=6.0)
    assert row.logged_pct == pytest.approx(paper["logged_pct"], abs=8.0)


def test_table1_full(benchmark, table_nprocs):
    """The whole table (all six benchmarks), printed like the paper's Table I."""
    rows = benchmark.pedantic(build_table1, kwargs={"nprocs": table_nprocs},
                              rounds=1, iterations=1)
    print()
    print(render_table1(rows))
    assert len(rows) == 6


def _build_report() -> dict:
    rows, elapsed = timed(build_table1, nprocs=64)
    return {
        "benchmark": "table1-clustering",
        "nprocs": 64,
        "elapsed_s": round(elapsed, 3),
        "rows": {
            row.benchmark: {
                "clusters": row.num_clusters,
                "rollback_pct": round(row.rollback_pct, 2),
                "logged_pct": round(row.logged_pct, 2),
            }
            for row in rows
        },
    }


def main() -> int:
    return run_and_report("table1_clustering", _build_report)


if __name__ == "__main__":
    raise SystemExit(main())
