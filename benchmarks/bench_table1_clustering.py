"""Benchmark / reproduction of Table I: clustering the six NAS kernels.

The benchmarked unit is the full Table I computation for one benchmark
(analytic communication graph at 256 ranks + partitioning + metrics).  The
assertions pin the reproduced values to the paper's within loose bands so a
regression in the partitioner or in the synthetic communication patterns is
caught here.
"""

import pytest

from repro.analysis.table1 import build_table1, render_table1, table1_row
from repro.clustering.presets import TABLE1_PAPER_VALUES
from repro.workloads.nas import NAS_BENCHMARKS


@pytest.mark.parametrize("name", sorted(NAS_BENCHMARKS))
def test_table1_row(benchmark, name, table_nprocs):
    row = benchmark.pedantic(
        table1_row, args=(name,), kwargs={"nprocs": table_nprocs}, rounds=1, iterations=1
    )
    paper = TABLE1_PAPER_VALUES[name]
    assert row.num_clusters == paper["clusters"]
    assert row.rollback_pct == pytest.approx(paper["rollback_pct"], abs=6.0)
    assert row.logged_pct == pytest.approx(paper["logged_pct"], abs=8.0)


def test_table1_full(benchmark, table_nprocs):
    """The whole table (all six benchmarks), printed like the paper's Table I."""
    rows = benchmark.pedantic(build_table1, kwargs={"nprocs": table_nprocs},
                              rounds=1, iterations=1)
    print()
    print(render_table1(rows))
    assert len(rows) == 6
