"""Hot-path micro-benchmark: engine, transport and checkpoint throughput.

Measures three groups of rates on the simulator hot path:

* ``events_per_s``   -- schedule + execute empty engine events,
* ``messages_per_s`` -- allocate, transmit and deliver transport messages,
* ``checkpoint_scenario`` -- a full HydEE simulation checkpointing every
  iteration (the Table I / Figure 6 sweep regime): end-to-end events/s and
  checkpoints/s through the snapshot-strategy save/restore path.

The results are written to ``BENCH_engine.json`` (in ``$REPRO_BENCH_DIR``
or the current directory) so CI can archive the perf trajectory; the CI
bench-smoke job asserts ``events_per_s`` stays above a floor so hot-path
regressions fail the build.  Runs either under pytest (``pytest
benchmarks/bench_engine_hotpath.py -o python_files='bench_*.py'
--benchmark-only``) or directly::

    python benchmarks/bench_engine_hotpath.py

Pass ``--profile`` to additionally run the checkpoint-heavy scenario under
``cProfile`` and dump the top 20 functions by cumulative time -- the
starting point for any hot-path investigation.
"""

import argparse
import cProfile
import pstats
import sys
import time

from bench_utils import ensure_src_on_path, run_and_report, write_report

ensure_src_on_path()

from repro.core.config import HydEEConfig  # noqa: E402
from repro.core.protocol import HydEEProtocol  # noqa: E402
from repro.simulator.channel import Transport  # noqa: E402
from repro.simulator.engine import SimulationEngine  # noqa: E402
from repro.simulator.messages import Message  # noqa: E402
from repro.simulator.network import MyrinetMXModel  # noqa: E402
from repro.simulator.simulation import Simulation  # noqa: E402
from repro.workloads.stencil import Stencil2DApplication  # noqa: E402

N_EVENTS = 200_000
N_MESSAGES = 50_000
CKPT_NPROCS = 16
CKPT_ITERATIONS = 60


def _noop() -> None:
    pass


def measure_event_throughput(n_events: int = N_EVENTS) -> float:
    """Events per second: schedule ``n_events`` empty events and drain them."""
    engine = SimulationEngine()
    started = time.perf_counter()  # repro-lint: disable=RL02 -- benchmark harness measures real wall time
    schedule = engine.schedule
    for i in range(n_events):
        schedule(float(i) * 1e-9, _noop)
    engine.run()
    elapsed = time.perf_counter() - started  # repro-lint: disable=RL02 -- benchmark harness measures real wall time
    assert engine.events_processed == n_events
    return n_events / elapsed


def measure_message_throughput(n_messages: int = N_MESSAGES) -> float:
    """Messages per second: allocate + transmit + deliver on one channel."""
    engine = SimulationEngine()
    delivered = []
    transport = Transport(engine, MyrinetMXModel(), delivered.append)
    started = time.perf_counter()  # repro-lint: disable=RL02 -- benchmark harness measures real wall time
    for i in range(n_messages):
        transport.transmit(Message(source=0, dest=1, tag=i, size_bytes=64))
    engine.run()
    elapsed = time.perf_counter() - started  # repro-lint: disable=RL02 -- benchmark harness measures real wall time
    assert len(delivered) == n_messages
    return n_messages / elapsed


def measure_checkpoint_throughput(
    nprocs: int = CKPT_NPROCS, iterations: int = CKPT_ITERATIONS
) -> dict:
    """Checkpoint-heavy end-to-end scenario: HydEE, checkpoint every iteration.

    Exercises the whole save path (workload snapshot strategy, protocol
    payload snapshot, storage write pricing) under the densest checkpoint
    interval of the paper's sweeps.
    """
    clusters = [
        list(range(c * 4, (c + 1) * 4)) for c in range(nprocs // 4)
    ]
    app = Stencil2DApplication(nprocs=nprocs, iterations=iterations)
    protocol = HydEEProtocol(
        HydEEConfig(
            clusters=clusters, checkpoint_interval=1, checkpoint_size_bytes=64 * 1024
        )
    )
    sim = Simulation(app, nprocs=nprocs, protocol=protocol)
    started = time.perf_counter()  # repro-lint: disable=RL02 -- benchmark harness measures real wall time
    result = sim.run()
    elapsed = time.perf_counter() - started  # repro-lint: disable=RL02 -- benchmark harness measures real wall time
    assert result.completed
    checkpoints = sim.storage.writes
    assert checkpoints == nprocs * iterations
    return {
        "nprocs": nprocs,
        "iterations": iterations,
        "checkpoints": checkpoints,
        "events": sim.engine.events_processed,
        "events_per_s": round(sim.engine.events_processed / elapsed),
        "checkpoints_per_s": round(checkpoints / elapsed),
    }


def bench_report() -> dict:
    return {
        "benchmark": "engine-hotpath",
        "n_events": N_EVENTS,
        "n_messages": N_MESSAGES,
        "events_per_s": round(measure_event_throughput()),
        "messages_per_s": round(measure_message_throughput()),
        "checkpoint_scenario": measure_checkpoint_throughput(),
    }


# ------------------------------------------------------------------- pytest
def test_engine_hotpath_benchmark(benchmark):
    report = benchmark.pedantic(bench_report, rounds=1, iterations=1)
    path = write_report("engine", report)
    print()
    print(f"{report['events_per_s']:>12,} events/s")
    print(f"{report['messages_per_s']:>12,} messages/s")
    print(f"wrote {path}")
    assert report["events_per_s"] > 0
    assert report["messages_per_s"] > 0


def profile_hot_path(top: int = 20) -> None:
    """Profile the checkpoint-heavy scenario; print top functions by cumtime."""
    profiler = cProfile.Profile()
    profiler.enable()
    measure_checkpoint_throughput()
    profiler.disable()
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.sort_stats("cumulative").print_stats(top)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--profile",
        action="store_true",
        help="also profile the checkpoint scenario (cProfile, top 20 by "
        "cumulative time) after writing the report",
    )
    args = parser.parse_args(argv)
    status = run_and_report("engine", bench_report)
    if args.profile:
        profile_hot_path()
    return status


if __name__ == "__main__":
    raise SystemExit(main())
