"""Hot-path micro-benchmark: engine event and transport message throughput.

Measures two rates on the slotted hot-path classes
(:class:`~repro.simulator.engine._ScheduledEvent`,
:class:`~repro.simulator.messages.Message`):

* ``events_per_s``   -- schedule + execute empty engine events,
* ``messages_per_s`` -- allocate, transmit and deliver transport messages.

The results are written to ``BENCH_engine.json`` (in ``$REPRO_BENCH_DIR``
or the current directory) so CI can archive the perf trajectory.  Runs
either under pytest (``pytest benchmarks/bench_engine_hotpath.py -o
python_files='bench_*.py' --benchmark-only``) or directly::

    python benchmarks/bench_engine_hotpath.py
"""

import time

from bench_utils import ensure_src_on_path, run_and_report, write_report

ensure_src_on_path()

from repro.simulator.channel import Transport  # noqa: E402
from repro.simulator.engine import SimulationEngine  # noqa: E402
from repro.simulator.messages import Message  # noqa: E402
from repro.simulator.network import MyrinetMXModel  # noqa: E402

N_EVENTS = 200_000
N_MESSAGES = 50_000


def _noop() -> None:
    pass


def measure_event_throughput(n_events: int = N_EVENTS) -> float:
    """Events per second: schedule ``n_events`` empty events and drain them."""
    engine = SimulationEngine()
    started = time.perf_counter()
    schedule = engine.schedule
    for i in range(n_events):
        schedule(float(i) * 1e-9, _noop)
    engine.run()
    elapsed = time.perf_counter() - started
    assert engine.events_processed == n_events
    return n_events / elapsed


def measure_message_throughput(n_messages: int = N_MESSAGES) -> float:
    """Messages per second: allocate + transmit + deliver on one channel."""
    engine = SimulationEngine()
    delivered = []
    transport = Transport(engine, MyrinetMXModel(), delivered.append)
    started = time.perf_counter()
    for i in range(n_messages):
        transport.transmit(Message(source=0, dest=1, tag=i, size_bytes=64))
    engine.run()
    elapsed = time.perf_counter() - started
    assert len(delivered) == n_messages
    return n_messages / elapsed


def bench_report() -> dict:
    return {
        "benchmark": "engine-hotpath",
        "n_events": N_EVENTS,
        "n_messages": N_MESSAGES,
        "events_per_s": round(measure_event_throughput()),
        "messages_per_s": round(measure_message_throughput()),
    }


# ------------------------------------------------------------------- pytest
def test_engine_hotpath_benchmark(benchmark):
    report = benchmark.pedantic(bench_report, rounds=1, iterations=1)
    path = write_report("engine", report)
    print()
    print(f"{report['events_per_s']:>12,} events/s")
    print(f"{report['messages_per_s']:>12,} messages/s")
    print(f"wrote {path}")
    assert report["events_per_s"] > 0
    assert report["messages_per_s"] > 0


def main() -> int:
    return run_and_report("engine", bench_report)


if __name__ == "__main__":
    raise SystemExit(main())
