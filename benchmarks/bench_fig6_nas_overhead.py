"""Benchmark / reproduction of Figure 6: NAS failure-free overhead.

The benchmarked unit is the three-way comparison (native MPICH2, full message
logging, HydEE with clustering) for one NAS kernel.  The default rank count
is scaled down (36, or 256 with ``REPRO_BENCH_FULL=1``); the quantity that
must reproduce is the *normalized* execution time, which the paper reports to
be at most ~1.25 % above native for HydEE and no better for full logging.
"""

import pytest

from repro.analysis.overhead import measure_overhead, render_figure6

#: FT's all-to-all is quadratic in the rank count; keep the per-benchmark
#: budget reasonable by default.
BENCHMARKS = ["bt", "cg", "ft", "lu", "mg", "sp"]


@pytest.mark.parametrize("name", BENCHMARKS)
def test_figure6_overhead(benchmark, name, bench_nprocs):
    nprocs = bench_nprocs
    iterations = 2
    row = benchmark.pedantic(
        measure_overhead,
        args=(name,),
        kwargs={"nprocs": nprocs, "iterations": iterations},
        rounds=1,
        iterations=1,
    )
    print()
    print(render_figure6([row]))
    native = row.normalized("native")
    hydee = row.normalized("hydee")
    logging_all = row.normalized("message_logging")
    assert native == pytest.approx(1.0)
    # Figure 6 shape: both overheads are small; HydEE never costs more than
    # logging every message.
    assert 1.0 < hydee < 1.08
    assert hydee <= logging_all + 1e-6
    # HydEE logs only the inter-cluster fraction of the traffic.
    assert row.logged_fraction["hydee"] < row.logged_fraction["message_logging"]
