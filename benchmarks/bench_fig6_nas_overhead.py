"""Benchmark / reproduction of Figure 6: NAS failure-free overhead.

The benchmarked unit is the three-way comparison (native MPICH2, full message
logging, HydEE with clustering) for one NAS kernel.  The default rank count
is scaled down (36, or 256 with ``REPRO_BENCH_FULL=1``); the quantity that
must reproduce is the *normalized* execution time, which the paper reports to
be at most ~1.25 % above native for HydEE and no better for full logging.
Run standalone it writes ``BENCH_fig6_nas_overhead.json``.
"""

import pytest
from bench_utils import ensure_src_on_path, run_and_report, timed

ensure_src_on_path()

from repro.analysis.overhead import by_config, measure_overhead, render_figure6  # noqa: E402

#: FT's all-to-all is quadratic in the rank count; keep the per-benchmark
#: budget reasonable by default.
BENCHMARKS = ["bt", "cg", "ft", "lu", "mg", "sp"]


@pytest.mark.parametrize("name", BENCHMARKS)
def test_figure6_overhead(benchmark, name, bench_nprocs):
    nprocs = bench_nprocs
    iterations = 2
    rows = benchmark.pedantic(
        measure_overhead,
        args=(name,),
        kwargs={"nprocs": nprocs, "iterations": iterations},
        rounds=1,
        iterations=1,
    )
    print()
    print(render_figure6(rows))
    configs = by_config(rows)
    native = configs["native"].normalized
    hydee = configs["hydee"].normalized
    logging_all = configs["message_logging"].normalized
    assert native == pytest.approx(1.0)
    # Figure 6 shape: both overheads are small; HydEE never costs more than
    # logging every message.
    assert 1.0 < hydee < 1.08
    assert hydee <= logging_all + 1e-6
    # HydEE logs only the inter-cluster fraction of the traffic.
    assert configs["hydee"].logged_fraction < configs["message_logging"].logged_fraction


def _build_report() -> dict:
    report = {"benchmark": "fig6-nas-overhead", "nprocs": 16, "iterations": 2}
    total = 0.0
    for name in ("lu", "mg"):
        rows, elapsed = timed(measure_overhead, name, nprocs=16, iterations=2)
        configs = by_config(rows)
        total += elapsed
        report[name] = {
            "hydee_normalized": round(configs["hydee"].normalized, 5),
            "message_logging_normalized": round(configs["message_logging"].normalized, 5),
            "hydee_logged_pct": round(100.0 * configs["hydee"].logged_fraction, 2),
        }
    report["elapsed_s"] = round(total, 3)
    return report


def main() -> int:
    return run_and_report("fig6_nas_overhead", _build_report)


if __name__ == "__main__":
    raise SystemExit(main())
