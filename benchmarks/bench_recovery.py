"""Benchmark of HydEE recovery (failure containment experiment, Section IV).

The benchmarked unit is a full run of a 2-D stencil with an injected failure,
including rollback of the affected cluster, phase-ordered replay from the
sender-based logs and completion of the application.  The scenario is a
declarative :class:`ScenarioSpec` executed through the campaign runner; the
assertions check the containment and correctness claims each time the
benchmark runs.
"""

import pytest

from repro.analysis.containment import render_containment, run_containment_experiment
from repro.campaign import run_campaign
from repro.scenarios import (
    ClusteringSpec,
    FailureSpec,
    ProtocolSpec,
    ScenarioSpec,
    WorkloadSpec,
)

NPROCS = 16
ITERATIONS = 8

RECOVERY_SPEC = ScenarioSpec(
    name="bench:hydee-recovery",
    workload=WorkloadSpec(kind="stencil2d", nprocs=NPROCS, iterations=ITERATIONS),
    protocol=ProtocolSpec(
        name="hydee",
        options={"checkpoint_interval": 2, "checkpoint_size_bytes": 64 * 1024},
        clustering=ClusteringSpec(method="block", num_clusters=4),
    ),
    failures=(FailureSpec(ranks=(5,), at_iteration=5),),
)


def _run_with_failure():
    outcome = run_campaign([RECOVERY_SPEC], keep_artifacts=True)
    return outcome.artifacts[0]


def test_hydee_recovery_benchmark(benchmark):
    result = benchmark.pedantic(_run_with_failure, rounds=3, iterations=1)
    assert result.completed
    assert result.stats.ranks_rolled_back == 4
    assert result.stats.extra["pstats_determinants_logged"] == 0
    assert result.stats.extra["pstats_replayed_messages"] > 0


def test_containment_comparison_benchmark(benchmark):
    rows = benchmark.pedantic(
        run_containment_experiment,
        kwargs={"nprocs": NPROCS, "iterations": 6, "fail_at_iteration": 4},
        rounds=1,
        iterations=1,
    )
    print()
    print(render_containment(rows))
    by_name = {row.protocol: row for row in rows}
    assert by_name["hydee"].ranks_rolled_back < by_name["coordinated"].ranks_rolled_back
    assert all(row.results_match_reference for row in rows)
