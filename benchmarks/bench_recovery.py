"""Benchmark of HydEE recovery (failure containment experiment, Section IV).

The benchmarked unit is a full run of a 2-D stencil with an injected failure,
including rollback of the affected cluster, phase-ordered replay from the
sender-based logs and completion of the application.  The scenario is a
declarative :class:`ScenarioSpec` executed through the campaign runner; the
assertions check the containment and correctness claims (through the run's
metric tree) each time the benchmark runs.  Run standalone it writes
``BENCH_recovery.json``.
"""

from bench_utils import ensure_src_on_path, run_and_report, timed

ensure_src_on_path()

from repro.analysis.containment import (  # noqa: E402
    render_containment,
    run_containment_experiment,
)
from repro.campaign import run_campaign  # noqa: E402
from repro.scenarios import (  # noqa: E402
    ClusteringSpec,
    FailureSpec,
    ProtocolSpec,
    ScenarioSpec,
    WorkloadSpec,
)

NPROCS = 16
ITERATIONS = 8

RECOVERY_SPEC = ScenarioSpec(
    name="bench:hydee-recovery",
    workload=WorkloadSpec(kind="stencil2d", nprocs=NPROCS, iterations=ITERATIONS),
    protocol=ProtocolSpec(
        name="hydee",
        options={"checkpoint_interval": 2, "checkpoint_size_bytes": 64 * 1024},
        clustering=ClusteringSpec(method="block", num_clusters=4),
    ),
    failures=(FailureSpec(ranks=(5,), at_iteration=5),),
)


def _run_with_failure():
    outcome = run_campaign([RECOVERY_SPEC], keep_artifacts=True)
    return outcome.artifacts[0]


def test_hydee_recovery_benchmark(benchmark):
    result = benchmark.pedantic(_run_with_failure, rounds=3, iterations=1)
    assert result.completed
    assert result.stats.ranks_rolled_back == 4
    assert result.metric("protocol.determinants_logged") == 0
    assert result.metric("protocol.replayed_messages") > 0


def test_containment_comparison_benchmark(benchmark):
    rows = benchmark.pedantic(
        run_containment_experiment,
        kwargs={"nprocs": NPROCS, "iterations": 6, "fail_at_iteration": 4},
        rounds=1,
        iterations=1,
    )
    print()
    print(render_containment(rows))
    by_name = {row.protocol: row for row in rows}
    assert by_name["hydee"].ranks_rolled_back < by_name["coordinated"].ranks_rolled_back
    assert all(row.results_match_reference for row in rows)


def _build_report() -> dict:
    result, elapsed = timed(_run_with_failure)
    return {
        "benchmark": "hydee-recovery",
        "nprocs": NPROCS,
        "iterations": ITERATIONS,
        "elapsed_s": round(elapsed, 3),
        "ranks_rolled_back": result.stats.ranks_rolled_back,
        "replayed_messages": result.metric("protocol.replayed_messages", 0),
        "makespan_ms": round(result.makespan * 1e3, 3),
    }


def main() -> int:
    return run_and_report("recovery", _build_report)


if __name__ == "__main__":
    raise SystemExit(main())
