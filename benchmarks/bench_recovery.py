"""Benchmark of HydEE recovery (failure containment experiment, Section IV).

The benchmarked unit is a full run of a 2-D stencil with an injected failure,
including rollback of the affected cluster, phase-ordered replay from the
sender-based logs and completion of the application.  The assertions check
the containment and correctness claims each time the benchmark runs.
"""

import pytest

from repro import HydEEConfig, HydEEProtocol, Simulation
from repro.analysis.containment import render_containment, run_containment_experiment
from repro.clustering import block_partition
from repro.simulator.failures import FailureEvent, FailureInjector
from repro.workloads import Stencil2DApplication

NPROCS = 16
ITERATIONS = 8
CLUSTERS = block_partition(NPROCS, 4)


def _run_with_failure():
    app = Stencil2DApplication(nprocs=NPROCS, iterations=ITERATIONS)
    protocol = HydEEProtocol(
        HydEEConfig(clusters=CLUSTERS, checkpoint_interval=2, checkpoint_size_bytes=64 * 1024)
    )
    failures = FailureInjector([FailureEvent(ranks=[5], at_iteration=5)])
    result = Simulation(app, nprocs=NPROCS, protocol=protocol, failures=failures).run()
    return result, protocol


def test_hydee_recovery_benchmark(benchmark):
    result, protocol = benchmark.pedantic(_run_with_failure, rounds=3, iterations=1)
    assert result.completed
    assert result.stats.ranks_rolled_back == 4
    assert protocol.pstats.determinants_logged == 0
    assert protocol.pstats.replayed_messages > 0


def test_containment_comparison_benchmark(benchmark):
    rows = benchmark.pedantic(
        run_containment_experiment,
        kwargs={"nprocs": NPROCS, "iterations": 6, "fail_at_iteration": 4},
        rounds=1,
        iterations=1,
    )
    print()
    print(render_containment(rows))
    by_name = {row.protocol: row for row in rows}
    assert by_name["hydee"].ranks_rolled_back < by_name["coordinated"].ranks_rolled_back
    assert all(row.results_match_reference for row in rows)
