"""Fast-forward coverage sweep across the workload catalogue.

Runs every bulk-compatible workload once in exact mode and once in hybrid
mode under the same HydEE configuration and reports, per workload, whether
the hybrid executor actually fast-forwarded (no fallback to full DES), how
many iterations were skipped analytically (and how many of those were
batched whole checkpoint intervals at a time), and the relative makespan
error against the exact run.  Run standalone it writes
``BENCH_ff_coverage.json``.

The point of the report is breadth, not peak speed: the hybrid mode is only
an optimisation of the common case if the *whole* catalogue stays on the
fast path, so CI asserts that every swept workload completes with zero
fallbacks.  (The ring workload legitimately reports ``batched_iterations ==
0``: its max-based causal phase clock has a period of 4 iterations, longer
than the verifiable stride for its cluster size, so it fast-forwards
per-message rather than in batched intervals.)
"""

from bench_utils import ensure_src_on_path, run_and_report, timed

ensure_src_on_path()

from repro.scenarios.build import build  # noqa: E402
from repro.scenarios.spec import (  # noqa: E402
    ClusteringSpec,
    ProtocolSpec,
    ScenarioSpec,
    WorkloadSpec,
)

NPROCS = 16
CHECKPOINT_INTERVAL = 8

#: Workload -> constructor arguments.  The NAS kernels run fewer iterations
#: than the synthetic patterns because their per-iteration state updates are
#: heavier; the sweep is about coverage, not duration.
CASES = {
    "stencil1d": dict(kind="stencil1d", nprocs=NPROCS, iterations=120),
    "stencil2d": dict(kind="stencil2d", nprocs=NPROCS, iterations=120),
    "ring": dict(kind="ring", nprocs=NPROCS, iterations=120),
    "pipeline": dict(kind="pipeline", nprocs=NPROCS, iterations=120),
    "bt": dict(kind="bt", nprocs=NPROCS, iterations=60),
    "cg": dict(kind="cg", nprocs=NPROCS, iterations=60),
    "ft": dict(kind="ft", nprocs=NPROCS, iterations=60),
    "lu": dict(kind="lu", nprocs=NPROCS, iterations=60),
    "mg": dict(kind="mg", nprocs=NPROCS, iterations=60),
    "sp": dict(kind="sp", nprocs=NPROCS, iterations=60),
}


def _spec(name: str, workload_args: dict, execution: str) -> ScenarioSpec:
    return ScenarioSpec(
        name=f"ff-coverage-{name}-{execution}",
        workload=WorkloadSpec(**workload_args),
        protocol=ProtocolSpec(
            name="hydee",
            clustering=ClusteringSpec(method="block", num_clusters=4),
            options={
                "checkpoint_interval": CHECKPOINT_INTERVAL,
                "checkpoint_size_bytes": 65536,
            },
        ),
        execution=execution,
    )


def _sweep() -> dict:
    workloads = {}
    fast_forwarding = 0
    for name, workload_args in CASES.items():
        exact_result, exact_s = timed(build(_spec(name, workload_args, "exact")).run)
        hybrid_sim = build(_spec(name, workload_args, "hybrid"))
        hybrid_result, hybrid_s = timed(hybrid_sim.run)

        stats = hybrid_sim.hybrid_stats
        fallback = bool(stats["fallback"])
        exact_makespan = exact_result.stats.makespan
        rel_err = abs(hybrid_result.stats.makespan - exact_makespan) / exact_makespan
        if not fallback:
            fast_forwarding += 1
        workloads[name] = {
            "fallback": fallback,
            "fallback_reason": hybrid_sim.stats.extra.get("hybrid_fallback_reason", ""),
            "warmup_iterations": int(stats["warmup_iterations"]),
            "ff_iterations": int(stats["ff_iterations"]),
            "batched_iterations": int(stats["batched_iterations"]),
            "makespan_rel_err": rel_err,
            "exact_elapsed_s": round(exact_s, 4),
            "hybrid_elapsed_s": round(hybrid_s, 4),
            "speedup": round(exact_s / max(hybrid_s, 1e-9), 2),
        }
    return {
        "nprocs": NPROCS,
        "checkpoint_interval": CHECKPOINT_INTERVAL,
        "workloads_swept": len(workloads),
        "workloads_fast_forwarding": fast_forwarding,
        "workloads": workloads,
    }


def main() -> int:
    return run_and_report("ff_coverage", _sweep)


if __name__ == "__main__":
    raise SystemExit(main())
