"""Shared configuration for the benchmark suite.

Each benchmark regenerates (a scaled-down version of) one of the paper's
tables or figures and prints the corresponding rows, so that
``pytest benchmarks/ --benchmark-only`` doubles as the reproduction harness.
Set ``REPRO_BENCH_FULL=1`` to run the paper-scale (256-rank) configurations.
"""

import os

import pytest


def full_scale() -> bool:
    return os.environ.get("REPRO_BENCH_FULL", "0") == "1"


@pytest.fixture(scope="session")
def bench_nprocs() -> int:
    """Rank count used by the simulation-based benchmarks."""
    return 256 if full_scale() else 36


@pytest.fixture(scope="session")
def table_nprocs() -> int:
    """Rank count used by the (analytic) clustering benchmarks."""
    return 256
