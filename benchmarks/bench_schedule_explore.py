"""Benchmark of schedule-space exploration (the race-detector harness).

Two halves, mirroring the explorer's contract:

* **Invariance + throughput** -- the three pinned faulty scenarios (HydEE
  partial rollback, coordinated global rollback, message-logging replay)
  run on the flat network, where reordering equal-time events cannot move
  any event time, so *everything* (state, recovery trace, makespan) must
  be interleaving-invariant.  The benchmarked rate is interleavings/s over
  the whole sweep.

* **Recovery time over schedules** -- the HydEE scenario re-run on an
  oversubscribed cluster-per-node topology.  Link contention makes event
  times (and therefore the committed recovery line: which checkpoint beats
  the failure) legitimately schedule-dependent, so no invariance is
  asserted; what the report captures is the *distribution of recovery
  time over schedules* -- the makespan spread across seeded adversarial
  interleavings of one identical failure draw -- the experiment family the
  explorer opens up beyond Monte Carlo's distribution over failure draws.

Run standalone it writes ``BENCH_schedule_explore.json``.
"""

import dataclasses

from bench_utils import ensure_src_on_path, run_and_report, timed

ensure_src_on_path()

from repro.scenarios.spec import NetworkSpec, TopologySpec  # noqa: E402
from repro.schedexplore.explorer import explore  # noqa: E402
from repro.schedexplore.pinned import PINNED_SCENARIOS  # noqa: E402

SEEDS = 5
CONTENDED_SEEDS = 8
POLICY = "adversarial"

CONTENDED = dataclasses.replace(
    PINNED_SCENARIOS["hydee-stencil2d-single-failure"],
    name="hydee-stencil2d-contended",
    network=NetworkSpec(
        topology=TopologySpec(
            preset="cluster-per-node",
            params={"ranks_per_node": 4, "oversubscription": 4.0},
        )
    ),
)


def _explore_pinned():
    return {
        name: explore(spec, seeds=SEEDS, policy=POLICY)
        for name, spec in sorted(PINNED_SCENARIOS.items())
    }


def _explore_contended():
    # shrink=False: contention makes divergences expected (and plentiful),
    # so delta-debugging them would only burn time; the object of interest
    # here is the makespan distribution, not a witness.
    return explore(CONTENDED, seeds=CONTENDED_SEEDS, policy=POLICY, shrink=False)


def test_schedule_explore_benchmark(benchmark):
    reports = benchmark.pedantic(_explore_pinned, rounds=1, iterations=1)
    for name, report in reports.items():
        assert report.invariant, (
            f"{name}: schedule-space divergence: "
            f"{[w.divergence for w in report.witnesses]}"
        )
        assert report.interleavings == SEEDS + 1
        assert report.times_compared
        assert report.to_payload()["makespan"]["spread"] == 0.0


def _build_report() -> dict:
    reports, elapsed = timed(_explore_pinned)
    interleavings = sum(report.interleavings for report in reports.values())
    divergences = sum(len(report.witnesses) for report in reports.values())

    contended, contended_elapsed = timed(_explore_contended)
    contended_payload = contended.to_payload()
    makespan = contended_payload["makespan"]

    return {
        "policy": POLICY,
        "seeds": SEEDS,
        "scenarios": sorted(reports),
        "interleavings": interleavings,
        "interleavings_per_s": round(interleavings / elapsed, 2),
        "elapsed_s": round(elapsed, 3),
        "divergences": divergences,
        "invariant": divergences == 0,
        "tie_dispatches_max": max(
            payload["tie_dispatches"]["max"]
            for payload in (report.to_payload() for report in reports.values())
        ),
        "recovery_time_over_schedules": {
            "scenario": CONTENDED.name,
            "seeds": CONTENDED_SEEDS,
            "elapsed_s": round(contended_elapsed, 3),
            "times_compared": contended_payload["times_compared"],
            "makespan_baseline_s": makespan["baseline"],
            "makespan_min_s": makespan["min"],
            "makespan_max_s": makespan["max"],
            "makespan_spread_s": makespan["spread"],
            "makespan_all_s": makespan["all"],
            # Under contention the committed recovery line is legitimately
            # schedule-dependent (a reordered link serialisation shifts
            # which checkpoint beats the failure), so this counts observed
            # alternative outcomes, not detector findings.
            "schedule_dependent_runs": contended_payload["divergences"],
        },
    }


def main() -> int:
    return run_and_report("schedule_explore", _build_report)


if __name__ == "__main__":
    raise SystemExit(main())
