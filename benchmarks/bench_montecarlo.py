"""Benchmark of Monte Carlo fault campaigns (Experiment E8).

The benchmarked unit is a full efficiency-vs-MTBF campaign: HydEE and
coordinated checkpointing, each swept over three per-rank MTBF points with
N seeded fault-trace replicas per point, fanned through the campaign
runner.  The assertions check the containment ordering the experiment is
designed to show (HydEE wastes less re-executed compute than coordinated
checkpointing at every MTBF) and that replica throughput is reported.  Run
standalone it writes ``BENCH_montecarlo.json``.
"""

from bench_utils import ensure_src_on_path, run_and_report, timed

ensure_src_on_path()

from repro.analysis.efficiency import (  # noqa: E402
    containment_holds,
    render_efficiency,
    run_efficiency_experiment,
    wasted_work_by_protocol,
)

NPROCS = 16
ITERATIONS = 6
REPLICAS = 20
MTBF_FACTORS = (4.0, 8.0, 16.0)
PROTOCOLS = ("hydee", "coordinated")


def _run_sweep():
    return run_efficiency_experiment(
        nprocs=NPROCS,
        iterations=ITERATIONS,
        protocols=PROTOCOLS,
        mtbf_factors=MTBF_FACTORS,
        replicas=REPLICAS,
    )


def test_montecarlo_benchmark(benchmark):
    rows = benchmark.pedantic(_run_sweep, rounds=1, iterations=1)
    print()
    print(render_efficiency(rows))
    # The paper's qualitative ordering: containment pays at every MTBF.
    assert containment_holds(rows)
    for row in rows:
        assert row.completed_replicas > 0
        assert row.replicas == REPLICAS
    by_key = {(r.protocol, r.mtbf_s): r for r in rows}
    for (protocol, mtbf), row in by_key.items():
        if protocol == "hydee":
            assert row.ranks_rolled_back_mean < \
                by_key[("coordinated", mtbf)].ranks_rolled_back_mean


def _build_report() -> dict:
    rows, elapsed = timed(_run_sweep)
    replica_sims = sum(row.replicas for row in rows)
    wasted = {
        f"{mtbf * 1e3:.3f}ms": {k: round(v * 1e6, 2) for k, v in sorted(point.items())}
        for mtbf, point in sorted(wasted_work_by_protocol(rows).items())
    }
    return {
        "benchmark": "montecarlo",
        "nprocs": NPROCS,
        "replicas_per_point": REPLICAS,
        "mtbf_factors": list(MTBF_FACTORS),
        "protocols": list(PROTOCOLS),
        "replica_sims": replica_sims,
        "elapsed_s": round(elapsed, 3),
        "replicas_per_s": round(replica_sims / elapsed, 1) if elapsed > 0 else 0.0,
        # Same rate at higher precision, under the name the hybrid-execution
        # benchmark uses, so the two reports can be compared side by side.
        "replica_sims_per_s": round(replica_sims / elapsed, 2) if elapsed > 0 else 0.0,
        "containment_holds": containment_holds(rows),
        "wasted_work_us": wasted,
    }


def main() -> int:
    return run_and_report("montecarlo", _build_report)


if __name__ == "__main__":
    raise SystemExit(main())
