"""Ablation benchmarks: piggyback policy decomposition and cluster-count sweep.

These regenerate the two ablation studies of DESIGN.md (E5 and E6): where the
Figure 5 peaks come from (piggyback policy) and the rollback-vs-logging
frontier the clustering tool optimises (cluster-count sweep).  Run standalone
it writes ``BENCH_ablations.json``.
"""

import pytest
from bench_utils import ensure_src_on_path, run_and_report, timed

ensure_src_on_path()

from repro.experiments.ablation_clusters import render as render_sweep  # noqa: E402
from repro.experiments.ablation_clusters import run as run_cluster_sweep  # noqa: E402
from repro.experiments.ablation_piggyback import render as render_piggyback  # noqa: E402
from repro.experiments.ablation_piggyback import run as run_piggyback  # noqa: E402


def test_piggyback_policy_ablation(benchmark):
    rows = benchmark(run_piggyback, sizes=[1, 16, 32, 64, 512, 1024, 4096, 65536, 1 << 20])
    print()
    print(render_piggyback(rows))
    for row in rows:
        # Doing nothing costs nothing, and the hybrid rule behaves like the
        # inline policy below 1 KiB and like the separate-message policy above
        # (Section V-A): cheap piggybacking for small messages, no extra
        # memory copy for large ones.
        assert row["none_pct"] == pytest.approx(0.0, abs=1e-9)
        hybrid = row["inline-small-separate-large_pct"]
        if row["bytes"] < 1024:
            assert hybrid == pytest.approx(row["inline_pct"], abs=0.1)
        else:
            assert hybrid == pytest.approx(row["separate_pct"], abs=0.1)


@pytest.mark.parametrize("name", ["bt", "cg", "ft"])
def test_cluster_count_sweep(benchmark, name, table_nprocs):
    rows = benchmark.pedantic(
        run_cluster_sweep,
        kwargs={"benchmark": name, "nprocs": table_nprocs, "counts": [2, 4, 8, 16, 32]},
        rounds=1,
        iterations=1,
    )
    print()
    print(render_sweep(name, rows))
    rollbacks = [row["rollback_pct"] for row in rows]
    assert rollbacks == sorted(rollbacks, reverse=True)
    # FT's all-to-all cannot be clustered cheaply: even the best bisection
    # logs over a third of the traffic, and more clusters only make it worse.
    if name == "ft":
        assert rows[0]["logged_pct"] > 30
        logged = [row["logged_pct"] for row in rows]
        assert logged == sorted(logged)


def _build_report() -> dict:
    piggyback, piggyback_s = timed(run_piggyback, sizes=[16, 64, 2048, 65536])
    sweep, sweep_s = timed(run_cluster_sweep, benchmark="bt", nprocs=64, counts=[2, 4, 8])
    return {
        "benchmark": "ablations",
        "elapsed_s": round(piggyback_s + sweep_s, 3),
        "piggyback_sizes": [row["bytes"] for row in piggyback],
        "bt_sweep": {
            str(row["clusters"]): {
                "rollback_pct": row["rollback_pct"],
                "logged_pct": row["logged_pct"],
            }
            for row in sweep
        },
    }


def main() -> int:
    return run_and_report("ablations", _build_report)


if __name__ == "__main__":
    raise SystemExit(main())
