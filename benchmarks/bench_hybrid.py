"""Benchmark of the hybrid execution mode (analytic fast-forward).

The benchmarked unit is a 20-replica Monte Carlo campaign of a long
stencil run under HydEE with sparse exponential faults -- the regime the
hybrid mode targets (failures are rare, so almost all simulated time is
failure-free steady state).  The campaign is run twice, once with every
replica forced to full discrete-event execution and once with the default
hybrid mode, and the report compares replica throughput
(``replica_sims_per_s``) and the aggregate accuracy of the fast path.
Run standalone it writes ``BENCH_hybrid.json``.
"""

import dataclasses

from bench_utils import ensure_src_on_path, run_and_report, timed

ensure_src_on_path()

from repro.faults.montecarlo import run_montecarlo  # noqa: E402
from repro.faults.spec import FaultModelSpec  # noqa: E402
from repro.scenarios.build import build  # noqa: E402
from repro.scenarios.spec import (  # noqa: E402
    ClusteringSpec,
    ProtocolSpec,
    ScenarioSpec,
    WorkloadSpec,
)

NPROCS = 16
ITERATIONS = 1400
REPLICAS = 20
CHECKPOINT_INTERVAL = 8
#: Per-rank MTBF as a multiple of ``nprocs * failure-free makespan``: 1.5
#: means a replica sees ~0.7 failures on average -- sparse, but strikes
#: (and therefore guard-window DES + recovery) do occur across the campaign.
MTBF_MAKESPAN_FACTOR = 1.5


def _base_spec() -> ScenarioSpec:
    return ScenarioSpec(
        name="bench-hybrid",
        workload=WorkloadSpec(kind="stencil2d", nprocs=NPROCS, iterations=ITERATIONS),
        protocol=ProtocolSpec(
            name="hydee",
            clustering=ClusteringSpec(method="block", num_clusters=4),
            options={
                "checkpoint_interval": CHECKPOINT_INTERVAL,
                "checkpoint_size_bytes": 65536,
            },
        ),
    )


def _faulty_spec() -> ScenarioSpec:
    base = _base_spec()
    makespan = build(base).run().stats.makespan
    fault_model = FaultModelSpec(
        distribution="exponential",
        seed=7,
        params={"mtbf_s": makespan * NPROCS * MTBF_MAKESPAN_FACTOR},
        horizon_s=makespan,
        max_failures=3,
    )
    return dataclasses.replace(base, fault_model=fault_model)


def _campaign(spec: ScenarioSpec, execution: str):
    return run_montecarlo(spec, replicas=REPLICAS, execution=execution)


def _mode_summary(result, elapsed: float) -> dict:
    runs = [r for r in result.runs if r.metrics is not None]
    fallbacks = sum(1 for r in runs if r.metrics.get("sim.hybrid.fallback", 0))
    makespans = [r.metrics.get("sim.makespan") for r in runs]
    return {
        "elapsed_s": round(elapsed, 3),
        "replica_sims_per_s": round(result.replicas / elapsed, 2) if elapsed > 0 else 0.0,
        "completed_replicas": result.completed_replicas,
        "fallback_replicas": fallbacks,
        "makespan_mean_s": sum(makespans) / len(makespans) if makespans else None,
        "failures_injected": sum(
            int(r.metrics.get("sim.failures_injected", 0) or 0) for r in runs
        ),
    }


def _run_both(spec: ScenarioSpec) -> dict:
    out = {}
    for mode in ("exact", "hybrid"):
        result, elapsed = timed(_campaign, spec, mode)
        out[mode] = _mode_summary(result, elapsed)
    return out


def test_hybrid_benchmark(benchmark):
    spec = _faulty_spec()
    modes = benchmark.pedantic(_run_both, args=(spec,), rounds=1, iterations=1)
    exact, hybrid = modes["exact"], modes["hybrid"]
    assert exact["completed_replicas"] == REPLICAS
    assert hybrid["completed_replicas"] == REPLICAS
    # The point of the fast path: an order of magnitude more replicas per
    # second on the sparse-fault campaign...
    assert hybrid["replica_sims_per_s"] >= 10 * exact["replica_sims_per_s"], modes
    # ...at matching aggregate statistics.
    rel = abs(hybrid["makespan_mean_s"] - exact["makespan_mean_s"]) / exact["makespan_mean_s"]
    assert rel < 0.01, f"hybrid makespan mean drifted {rel:.2%}"


def _build_report() -> dict:
    spec = _faulty_spec()
    modes = _run_both(spec)
    exact, hybrid = modes["exact"], modes["hybrid"]
    speedup = (
        hybrid["replica_sims_per_s"] / exact["replica_sims_per_s"]
        if exact["replica_sims_per_s"]
        else 0.0
    )
    rel = abs(hybrid["makespan_mean_s"] - exact["makespan_mean_s"]) / exact["makespan_mean_s"]
    return {
        "benchmark": "hybrid",
        "nprocs": NPROCS,
        "iterations": ITERATIONS,
        "replicas": REPLICAS,
        "checkpoint_interval": CHECKPOINT_INTERVAL,
        "exact": exact,
        "hybrid": hybrid,
        "speedup": round(speedup, 2),
        "makespan_mean_rel_err": rel,
    }


def main() -> int:
    return run_and_report("hybrid", _build_report)


if __name__ == "__main__":
    raise SystemExit(main())
