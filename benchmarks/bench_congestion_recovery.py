"""Benchmark of recovery under inter-cluster congestion (Experiment E7).

The benchmarked unit is the full congested-recovery campaign: HydEE and
coordinated checkpointing, each run failure-free and with one injected
failure, over a hierarchical topology at two inter-cluster oversubscription
factors.  The assertions check the containment claim that the experiment is
designed to show: the recovery cost of coordinated checkpointing grows
faster with oversubscription than HydEE's.  Run standalone it writes
``BENCH_congestion_recovery.json``.
"""

from bench_utils import ensure_src_on_path, run_and_report, timed

ensure_src_on_path()

from repro.analysis.congestion import (  # noqa: E402
    recovery_divergence,
    render_congestion,
    run_congestion_experiment,
)

NPROCS = 16
ITERATIONS = 6
OVERSUBSCRIPTIONS = (1.0, 8.0)


def _run_sweep():
    return run_congestion_experiment(
        nprocs=NPROCS,
        iterations=ITERATIONS,
        oversubscriptions=OVERSUBSCRIPTIONS,
    )


def test_congested_recovery_benchmark(benchmark):
    rows = benchmark.pedantic(_run_sweep, rounds=1, iterations=1)
    print()
    print(render_congestion(rows))
    divergence = recovery_divergence(rows)
    # Containment pays off under congestion: coordinated checkpointing's
    # recovery cost grows faster with oversubscription than HydEE's.
    assert divergence["coordinated"] > divergence["hydee"]
    by_key = {(r.protocol, r.oversubscription): r for r in rows}
    for oversub in OVERSUBSCRIPTIONS:
        assert by_key[("hydee", oversub)].ranks_rolled_back < \
            by_key[("coordinated", oversub)].ranks_rolled_back


def _build_report() -> dict:
    rows, elapsed = timed(_run_sweep)
    divergence = recovery_divergence(rows)
    return {
        "benchmark": "congestion-recovery",
        "nprocs": NPROCS,
        "oversubscriptions": list(OVERSUBSCRIPTIONS),
        "elapsed_s": round(elapsed, 3),
        "recovery_growth": {k: round(v, 3) for k, v in sorted(divergence.items())},
    }


def main() -> int:
    return run_and_report("congestion_recovery", _build_report)


if __name__ == "__main__":
    raise SystemExit(main())
