"""Benchmark of recovery under inter-cluster congestion (Experiment E7).

The benchmarked unit is the full congested-recovery campaign: HydEE and
coordinated checkpointing, each run failure-free and with one injected
failure, over a hierarchical topology at two inter-cluster oversubscription
factors.  The assertions check the containment claim that the experiment is
designed to show: the recovery cost of coordinated checkpointing grows
faster with oversubscription than HydEE's.
"""

from repro.analysis.congestion import (
    recovery_divergence,
    render_congestion,
    run_congestion_experiment,
)

NPROCS = 16
ITERATIONS = 6
OVERSUBSCRIPTIONS = (1.0, 8.0)


def _run_sweep():
    return run_congestion_experiment(
        nprocs=NPROCS,
        iterations=ITERATIONS,
        oversubscriptions=OVERSUBSCRIPTIONS,
    )


def test_congested_recovery_benchmark(benchmark):
    rows = benchmark.pedantic(_run_sweep, rounds=1, iterations=1)
    print()
    print(render_congestion(rows))
    divergence = recovery_divergence(rows)
    # Containment pays off under congestion: coordinated checkpointing's
    # recovery cost grows faster with oversubscription than HydEE's.
    assert divergence["coordinated"] > divergence["hydee"]
    by_key = {(r.protocol, r.oversubscription): r for r in rows}
    for oversub in OVERSUBSCRIPTIONS:
        assert by_key[("hydee", oversub)].ranks_rolled_back < \
            by_key[("coordinated", oversub)].ranks_rolled_back
