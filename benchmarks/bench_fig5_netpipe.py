"""Benchmark / reproduction of Figure 5: NetPIPE ping-pong under HydEE.

The benchmarked unit is the simulated ping-pong sweep over the message-size
range for the three configurations (native, HydEE without logging, HydEE with
logging); the printed series are the Figure 5 curves.  Run standalone
(``python benchmarks/bench_fig5_netpipe.py``) it writes
``BENCH_fig5_netpipe.json``.
"""

from bench_utils import ensure_src_on_path, run_and_report, timed

ensure_src_on_path()

from repro.analysis.netpipe_analysis import (  # noqa: E402
    analytic_netpipe_experiment,
    run_netpipe_experiment,
)
from repro.simulator.network import netpipe_sizes  # noqa: E402

#: Reduced size sweep (one point per decade region) used by default; the full
#: NetPIPE sweep (1 B .. 8 MiB) is exercised by the experiment entry point.
SIZES = [1, 4, 16, 32, 48, 64, 128, 512, 1024, 4096, 65536, 1 << 20, 8 << 20]


def test_figure5_simulated_sweep(benchmark):
    result = benchmark.pedantic(
        run_netpipe_experiment, kwargs={"sizes": SIZES, "repeats": 2}, rounds=1, iterations=1
    )
    print()
    print(result.as_text())
    logging_lat = result.latency_reduction_pct("hydee_logging")
    no_logging_lat = result.latency_reduction_pct("hydee_no_logging")
    # Shape of Figure 5: overhead is bounded, vanishes for large messages and
    # logging ~ no-logging (the memcpy is hidden by the transfer).
    assert min(logging_lat) > -45.0
    assert logging_lat[-1] > -2.0
    assert all(abs(a - b) < 5.0 for a, b in zip(logging_lat, no_logging_lat))


def test_figure5_analytic_model(benchmark):
    series = benchmark(analytic_netpipe_experiment, sizes=list(netpipe_sizes(8 << 20)))
    assert len(series["sizes"]) == len(series["latency_reduction_logging_pct"])
    assert all(v <= 1e-9 for v in series["latency_reduction_logging_pct"])


def _build_report() -> dict:
    result, elapsed = timed(run_netpipe_experiment, sizes=SIZES, repeats=2)
    logging_lat = result.latency_reduction_pct("hydee_logging")
    return {
        "benchmark": "fig5-netpipe",
        "sizes": SIZES,
        "elapsed_s": round(elapsed, 3),
        "worst_latency_degradation_pct": round(min(logging_lat), 3),
        "large_message_degradation_pct": round(logging_lat[-1], 3),
    }


def main() -> int:
    return run_and_report("fig5_netpipe", _build_report)


if __name__ == "__main__":
    raise SystemExit(main())
