"""Failure-containment and recovery experiments (Sections III-IV claims).

The paper's central functional claim -- beyond the overhead numbers -- is
that a failure only rolls back the failed process's cluster, that recovery
replays only logged inter-cluster messages, and that the recovered execution
is correct.  This harness quantifies those properties and compares HydEE
against the baseline protocols:

* fraction of processes rolled back by one failure,
* number of messages replayed from logs,
* number of orphan messages handled without event logging,
* whether the final application results match the failure-free reference.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.analysis.reporting import format_dict_table
from repro.clustering.partitioner import block_partition
from repro.core.config import HydEEConfig
from repro.core.protocol import HydEEProtocol
from repro.errors import ProtocolError
from repro.ftprotocols.coordinated import CoordinatedCheckpointProtocol
from repro.ftprotocols.message_logging import FullMessageLoggingProtocol
from repro.simulator.failures import FailureEvent, FailureInjector
from repro.simulator.network import NetworkModel
from repro.simulator.simulation import Simulation, SimulationConfig
from repro.simulator.trace import compare_send_sequences
from repro.workloads.stencil import Stencil2DApplication


@dataclass
class ContainmentRow:
    """Outcome of one protocol's recovery from one failure scenario."""

    protocol: str
    nprocs: int
    failed_ranks: List[int]
    ranks_rolled_back: int
    rolled_back_pct: float
    replayed_messages: int
    suppressed_orphans: int
    logged_bytes: int
    recovery_time_s: float
    results_match_reference: bool
    send_sequences_match: bool

    def as_dict(self) -> Dict[str, Any]:
        return {
            "protocol": self.protocol,
            "failed": ",".join(str(r) for r in self.failed_ranks),
            "rolled_back": self.ranks_rolled_back,
            "rolled_back_pct": round(self.rolled_back_pct, 1),
            "replayed": self.replayed_messages,
            "orphans": self.suppressed_orphans,
            "logged_MB": round(self.logged_bytes / 1e6, 2),
            "recovery_ms": round(self.recovery_time_s * 1e3, 3),
            "correct": self.results_match_reference,
            "send_det": self.send_sequences_match,
        }


def _default_workload(nprocs: int, iterations: int):
    return Stencil2DApplication(nprocs=nprocs, iterations=iterations)


def run_containment_experiment(
    nprocs: int = 16,
    iterations: int = 8,
    failed_ranks: Sequence[int] = (5,),
    fail_at_iteration: int = 5,
    checkpoint_interval: int = 2,
    num_clusters: int = 4,
    workload_factory: Optional[Callable[[int, int], Any]] = None,
    network: Optional[NetworkModel] = None,
    protocols: Sequence[str] = ("hydee", "coordinated", "message-logging"),
) -> List[ContainmentRow]:
    """Inject the same failure under several protocols and compare containment."""
    make_app = workload_factory or _default_workload
    config = SimulationConfig(network=network) if network is not None else SimulationConfig()

    # Failure-free reference (native, no protocol).
    ref_app = make_app(nprocs, iterations)
    reference = Simulation(ref_app, nprocs=nprocs, config=config).run()

    # Use equal contiguous blocks so the rollback fraction is exactly
    # num_clusters**-1 and rows are easy to interpret; the graph partitioner
    # is exercised by the Table I harness and the clustering tests.
    clusters = block_partition(nprocs, num_clusters)

    def make_protocol(name: str):
        if name == "hydee":
            return HydEEProtocol(
                HydEEConfig(
                    clusters=clusters,
                    checkpoint_interval=checkpoint_interval,
                    checkpoint_size_bytes=64 * 1024,
                )
            )
        if name == "coordinated":
            return CoordinatedCheckpointProtocol(
                checkpoint_interval=checkpoint_interval, checkpoint_size_bytes=64 * 1024
            )
        if name == "message-logging":
            return FullMessageLoggingProtocol(
                checkpoint_interval=checkpoint_interval, checkpoint_size_bytes=64 * 1024
            )
        raise ProtocolError(f"unknown protocol {name!r} in containment experiment")

    rows: List[ContainmentRow] = []
    for name in protocols:
        protocol = make_protocol(name)
        injector = FailureInjector(
            [FailureEvent(ranks=list(failed_ranks), at_iteration=fail_at_iteration)]
        )
        app = make_app(nprocs, iterations)
        sim = Simulation(app, nprocs=nprocs, protocol=protocol, failures=injector, config=config)
        result = sim.run()

        pstats = getattr(protocol, "pstats", None)
        replayed = pstats.replayed_messages if pstats else 0
        orphans = pstats.suppressed_orphans if pstats else 0
        logged = pstats.logged_bytes if pstats else 0
        mismatches = compare_send_sequences(reference.trace, result.trace)
        rows.append(
            ContainmentRow(
                protocol=name,
                nprocs=nprocs,
                failed_ranks=sorted(failed_ranks),
                ranks_rolled_back=result.stats.ranks_rolled_back,
                rolled_back_pct=100.0 * result.stats.rolled_back_fraction,
                replayed_messages=replayed,
                suppressed_orphans=orphans,
                logged_bytes=logged,
                recovery_time_s=result.stats.recovery_time,
                results_match_reference=result.rank_results == reference.rank_results,
                send_sequences_match=not mismatches,
            )
        )
    return rows


def render_containment(rows: Sequence[ContainmentRow]) -> str:
    return format_dict_table(
        [row.as_dict() for row in rows],
        columns=[
            "protocol",
            "failed",
            "rolled_back",
            "rolled_back_pct",
            "replayed",
            "orphans",
            "logged_MB",
            "recovery_ms",
            "correct",
            "send_det",
        ],
        title="Failure containment: one failure, same workload, different protocols",
    )
