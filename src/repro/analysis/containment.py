"""Failure-containment and recovery experiments (Sections III-IV claims).

The paper's central functional claim -- beyond the overhead numbers -- is
that a failure only rolls back the failed process's cluster, that recovery
replays only logged inter-cluster messages, and that the recovered execution
is correct.  This harness quantifies those properties and compares HydEE
against the baseline protocols:

* fraction of processes rolled back by one failure,
* number of messages replayed from logs,
* number of orphan messages handled without event logging,
* whether the final application results match the failure-free reference.

Every run is declared as a :class:`~repro.scenarios.spec.ScenarioSpec` and
executed through the campaign runner.  Unlike the overhead sweeps, this
experiment needs the *live* simulation results (send-sequence traces and
per-rank results to compare against the reference), so the campaign runs
with ``keep_artifacts=True`` and per-event tracing enabled, and records are
not cached.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro.analysis.reporting import format_dict_table
from repro.campaign.runner import run_campaign
from repro.scenarios.build import to_network_spec
from repro.scenarios.spec import (
    ClusteringSpec,
    FailureSpec,
    ProtocolSpec,
    ScenarioSpec,
    WorkloadSpec,
)
from repro.simulator.network import NetworkModel
from repro.simulator.trace import compare_send_sequences


@dataclass
class ContainmentRow:
    """Outcome of one protocol's recovery from one failure scenario."""

    protocol: str
    nprocs: int
    failed_ranks: List[int]
    ranks_rolled_back: int
    rolled_back_pct: float
    replayed_messages: int
    suppressed_orphans: int
    logged_bytes: int
    recovery_time_s: float
    results_match_reference: bool
    send_sequences_match: bool

    def as_dict(self) -> Dict[str, Any]:
        return {
            "protocol": self.protocol,
            "failed": ",".join(str(r) for r in self.failed_ranks),
            "rolled_back": self.ranks_rolled_back,
            "rolled_back_pct": round(self.rolled_back_pct, 1),
            "replayed": self.replayed_messages,
            "orphans": self.suppressed_orphans,
            "logged_MB": round(self.logged_bytes / 1e6, 2),
            "recovery_ms": round(self.recovery_time_s * 1e3, 3),
            "correct": self.results_match_reference,
            "send_det": self.send_sequences_match,
        }


def containment_specs(
    nprocs: int = 16,
    iterations: int = 8,
    failed_ranks: Sequence[int] = (5,),
    fail_at_iteration: int = 5,
    checkpoint_interval: int = 2,
    num_clusters: int = 4,
    workload: Optional[WorkloadSpec] = None,
    network: Optional[NetworkModel] = None,
    protocols: Sequence[str] = ("hydee", "coordinated", "message-logging"),
) -> List[ScenarioSpec]:
    """Declare the reference run plus one failure run per protocol."""
    network_spec = to_network_spec(network)
    workload = workload or WorkloadSpec(kind="stencil2d", nprocs=nprocs, iterations=iterations)
    failure = FailureSpec(ranks=tuple(failed_ranks), at_iteration=fail_at_iteration)
    # Send-sequence comparisons need per-event traces on both sides.
    config = {"record_trace_events": True}
    checkpoint_options = {
        "checkpoint_interval": checkpoint_interval,
        "checkpoint_size_bytes": 64 * 1024,
    }

    def protocol_spec(name: str) -> ProtocolSpec:
        if name == "hydee":
            # Equal contiguous blocks so the rollback fraction is exactly
            # num_clusters**-1 and rows are easy to interpret; the graph
            # partitioner is exercised by the Table I harness.
            return ProtocolSpec(
                name="hydee",
                options=checkpoint_options,
                clustering=ClusteringSpec(method="block", num_clusters=num_clusters),
            )
        return ProtocolSpec(name=name, options=checkpoint_options)

    specs = [
        ScenarioSpec(
            name="containment:reference",
            workload=workload,
            protocol=ProtocolSpec(name="native"),
            network=network_spec,
            config=config,
            tags={"experiment": "containment", "role": "reference"},
        )
    ]
    specs.extend(
        ScenarioSpec(
            name=f"containment:{name}",
            workload=workload,
            protocol=protocol_spec(name),
            network=network_spec,
            failures=(failure,),
            config=config,
            tags={"experiment": "containment", "role": "failure", "protocol": name},
        )
        for name in protocols
    )
    return specs


def run_containment_experiment(
    nprocs: int = 16,
    iterations: int = 8,
    failed_ranks: Sequence[int] = (5,),
    fail_at_iteration: int = 5,
    checkpoint_interval: int = 2,
    num_clusters: int = 4,
    workload: Optional[WorkloadSpec] = None,
    network: Optional[NetworkModel] = None,
    protocols: Sequence[str] = ("hydee", "coordinated", "message-logging"),
    workers: int = 1,
) -> List[ContainmentRow]:
    """Inject the same failure under several protocols and compare containment."""
    specs = containment_specs(
        nprocs=nprocs,
        iterations=iterations,
        failed_ranks=failed_ranks,
        fail_at_iteration=fail_at_iteration,
        checkpoint_interval=checkpoint_interval,
        num_clusters=num_clusters,
        workload=workload,
        network=network,
        protocols=protocols,
    )
    outcome = run_campaign(specs, workers=workers, keep_artifacts=True)

    reference = outcome.artifacts[0]
    rows: List[ContainmentRow] = []
    for spec, result in zip(outcome.specs[1:], outcome.artifacts[1:]):
        name = spec.tags["protocol"]
        extra = result.stats.extra
        mismatches = compare_send_sequences(reference.trace, result.trace)
        rows.append(
            ContainmentRow(
                protocol=name,
                nprocs=spec.workload.nprocs,
                failed_ranks=sorted(failed_ranks),
                ranks_rolled_back=result.stats.ranks_rolled_back,
                rolled_back_pct=100.0 * result.stats.rolled_back_fraction,
                replayed_messages=extra.get("pstats_replayed_messages", 0),
                suppressed_orphans=extra.get("pstats_suppressed_orphans", 0),
                logged_bytes=extra.get("pstats_logged_bytes", 0),
                recovery_time_s=result.stats.recovery_time,
                results_match_reference=result.rank_results == reference.rank_results,
                send_sequences_match=not mismatches,
            )
        )
    return rows


def render_containment(rows: Sequence[ContainmentRow]) -> str:
    return format_dict_table(
        [row.as_dict() for row in rows],
        columns=[
            "protocol",
            "failed",
            "rolled_back",
            "rolled_back_pct",
            "replayed",
            "orphans",
            "logged_MB",
            "recovery_ms",
            "correct",
            "send_det",
        ],
        title="Failure containment: one failure, same workload, different protocols",
    )
