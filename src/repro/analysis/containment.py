"""Failure-containment and recovery experiments (Sections III-IV claims).

The paper's central functional claim -- beyond the overhead numbers -- is
that a failure only rolls back the failed process's cluster, that recovery
replays only logged inter-cluster messages, and that the recovered execution
is correct.  This harness quantifies those properties and compares HydEE
against the baseline protocols:

* fraction of processes rolled back by one failure,
* number of messages replayed from logs,
* number of orphan messages handled without event logging,
* whether the final application results match the failure-free reference.

Every run is declared as a :class:`~repro.scenarios.spec.ScenarioSpec` and
executed through the campaign runner.  Unlike the overhead sweeps, this
experiment needs the *live* simulation results (send-sequence traces and
per-rank results to compare against the reference), so the campaign runs
with ``keep_artifacts=True`` and per-event tracing enabled, and records are
not cached; protocol counters are read from each result's
:class:`~repro.results.metrics.MetricSet` (``protocol.*``), never from raw
stat dicts.  The row layout is the registered :data:`CONTAINMENT` schema.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.campaign.runner import run_campaign
from repro.results.tables import Column, Row, TableSchema, register_table
from repro.scenarios.build import to_network_spec
from repro.scenarios.spec import (
    ClusteringSpec,
    FailureSpec,
    ProtocolSpec,
    ScenarioSpec,
    WorkloadSpec,
)
from repro.simulator.network import NetworkModel
from repro.simulator.trace import compare_send_sequences

#: Outcome of one protocol's recovery from one failure scenario.  Live-only
#: (needs traces), so the schema registers without a store builder.
CONTAINMENT = register_table(
    TableSchema(
        "containment",
        columns=(
            Column("protocol", "str"),
            Column("failed_ranks", "str", header="failed"),
            Column("ranks_rolled_back", "int", header="rolled_back"),
            Column("rolled_back_pct", "float", units="%", format=".1f"),
            Column("replayed_messages", "int", header="replayed"),
            Column("suppressed_orphans", "int", header="orphans"),
            Column("logged_bytes", "int", units="B", scale=1e-6, format=".2f",
                   header="logged_MB"),
            Column("recovery_time_s", "float", units="s", scale=1e3, format=".3f",
                   header="recovery_ms"),
            Column("results_match_reference", "bool", header="correct"),
            Column("send_sequences_match", "bool", header="send_det"),
        ),
        title="Failure containment: one failure, same workload, different protocols",
    )
)


def containment_specs(
    nprocs: int = 16,
    iterations: int = 8,
    failed_ranks: Sequence[int] = (5,),
    fail_at_iteration: int = 5,
    checkpoint_interval: int = 2,
    num_clusters: int = 4,
    workload: Optional[WorkloadSpec] = None,
    network: Optional[NetworkModel] = None,
    protocols: Sequence[str] = ("hydee", "coordinated", "message-logging"),
) -> List[ScenarioSpec]:
    """Declare the reference run plus one failure run per protocol."""
    network_spec = to_network_spec(network)
    workload = workload or WorkloadSpec(kind="stencil2d", nprocs=nprocs, iterations=iterations)
    failure = FailureSpec(ranks=tuple(failed_ranks), at_iteration=fail_at_iteration)
    # Send-sequence comparisons need per-event traces on both sides.
    config = {"record_trace_events": True}
    checkpoint_options = {
        "checkpoint_interval": checkpoint_interval,
        "checkpoint_size_bytes": 64 * 1024,
    }

    def protocol_spec(name: str) -> ProtocolSpec:
        if name == "hydee":
            # Equal contiguous blocks so the rollback fraction is exactly
            # num_clusters**-1 and rows are easy to interpret; the graph
            # partitioner is exercised by the Table I harness.
            return ProtocolSpec(
                name="hydee",
                options=checkpoint_options,
                clustering=ClusteringSpec(method="block", num_clusters=num_clusters),
            )
        return ProtocolSpec(name=name, options=checkpoint_options)

    specs = [
        ScenarioSpec(
            name="containment:reference",
            workload=workload,
            protocol=ProtocolSpec(name="native"),
            network=network_spec,
            config=config,
            tags={"experiment": "containment", "role": "reference"},
        )
    ]
    specs.extend(
        ScenarioSpec(
            name=f"containment:{name}",
            workload=workload,
            protocol=protocol_spec(name),
            network=network_spec,
            failures=(failure,),
            config=config,
            tags={"experiment": "containment", "role": "failure", "protocol": name},
        )
        for name in protocols
    )
    return specs


def run_containment_experiment(
    nprocs: int = 16,
    iterations: int = 8,
    failed_ranks: Sequence[int] = (5,),
    fail_at_iteration: int = 5,
    checkpoint_interval: int = 2,
    num_clusters: int = 4,
    workload: Optional[WorkloadSpec] = None,
    network: Optional[NetworkModel] = None,
    protocols: Sequence[str] = ("hydee", "coordinated", "message-logging"),
    workers: int = 1,
) -> List[Row]:
    """Inject the same failure under several protocols and compare containment."""
    specs = containment_specs(
        nprocs=nprocs,
        iterations=iterations,
        failed_ranks=failed_ranks,
        fail_at_iteration=fail_at_iteration,
        checkpoint_interval=checkpoint_interval,
        num_clusters=num_clusters,
        workload=workload,
        network=network,
        protocols=protocols,
    )
    outcome = run_campaign(specs, workers=workers, keep_artifacts=True)

    reference = outcome.artifacts[0]
    rows: List[Row] = []
    for spec, result in zip(outcome.specs[1:], outcome.artifacts[1:]):
        name = spec.tags["protocol"]
        mismatches = compare_send_sequences(reference.trace, result.trace)
        rows.append(
            CONTAINMENT.row(
                protocol=name,
                failed_ranks=",".join(str(r) for r in sorted(failed_ranks)),
                ranks_rolled_back=result.stats.ranks_rolled_back,
                rolled_back_pct=100.0 * result.stats.rolled_back_fraction,
                replayed_messages=result.metric("protocol.replayed_messages", 0),
                suppressed_orphans=result.metric("protocol.suppressed_orphans", 0),
                logged_bytes=result.metric("protocol.logged_bytes", 0),
                recovery_time_s=result.stats.recovery_time,
                results_match_reference=result.rank_results == reference.rank_results,
                send_sequences_match=not mismatches,
            )
        )
    return rows


def render_containment(rows: Sequence[Row]) -> str:
    return CONTAINMENT.render_text(rows)
