"""Figure 5 harness: NetPIPE ping-pong under native MPICH2 and HydEE.

Three configurations are measured over a sweep of message sizes:

* ``native``            -- no protocol (the MPICH2 reference);
* ``hydee_no_logging``  -- both ranks in the same cluster: only the
  piggybacked (date, phase) is paid;
* ``hydee_logging``     -- ranks in different clusters: piggyback plus
  sender-based payload logging.

The harness can run the actual simulated ping-pong (default) or fall back to
the closed-form model of :mod:`repro.analysis.perf_model`; both produce the
same series structure so the benchmarks and tests can compare them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.analysis.perf_model import analytic_pingpong_series
from repro.analysis.reporting import format_series
from repro.core.config import HydEEConfig
from repro.core.protocol import HydEEProtocol
from repro.simulator.network import MyrinetMXModel, NetworkModel, netpipe_sizes
from repro.simulator.simulation import Simulation, SimulationConfig
from repro.workloads.netpipe import PingPongApplication


@dataclass
class NetpipeResult:
    """Latency/bandwidth sweep for the three Figure 5 configurations."""

    sizes: List[int]
    latency_s: Dict[str, List[float]] = field(default_factory=dict)
    bandwidth_bytes_per_s: Dict[str, List[float]] = field(default_factory=dict)

    def latency_reduction_pct(self, config: str) -> List[float]:
        """Latency change vs native, in percent (negative = slower)."""
        native = self.latency_s["native"]
        other = self.latency_s[config]
        return [100.0 * (n - o) / n if n > 0 else 0.0 for n, o in zip(native, other)]

    def bandwidth_reduction_pct(self, config: str) -> List[float]:
        """Bandwidth change vs native, in percent (negative = lower)."""
        native = self.bandwidth_bytes_per_s["native"]
        other = self.bandwidth_bytes_per_s[config]
        return [100.0 * (o - n) / n if n > 0 else 0.0 for n, o in zip(native, other)]

    def as_text(self) -> str:
        series = {
            "lat% no-log": [round(v, 2) for v in self.latency_reduction_pct("hydee_no_logging")],
            "lat% log": [round(v, 2) for v in self.latency_reduction_pct("hydee_logging")],
            "bw% no-log": [round(v, 2) for v in self.bandwidth_reduction_pct("hydee_no_logging")],
            "bw% log": [round(v, 2) for v in self.bandwidth_reduction_pct("hydee_logging")],
        }
        return format_series(
            "bytes",
            self.sizes,
            series,
            title="Figure 5 -- ping-pong performance change vs native MPICH2 (negative = overhead)",
        )


def _run_pingpong(
    sizes: Sequence[int],
    network: NetworkModel,
    protocol_factory,
    repeats: int,
) -> Dict[int, Dict[str, float]]:
    app = PingPongApplication(nprocs=2, sizes=list(sizes), repeats=repeats)
    protocol = protocol_factory() if protocol_factory is not None else None
    sim = Simulation(
        app,
        nprocs=2,
        protocol=protocol,
        config=SimulationConfig(network=network, record_trace_events=False),
    )
    result = sim.run()
    return result.rank_results[0]["measurements"]


def run_netpipe_experiment(
    sizes: Optional[Sequence[int]] = None,
    network: Optional[NetworkModel] = None,
    repeats: int = 3,
    piggyback_bytes: int = 12,
) -> NetpipeResult:
    """Run the simulated Figure 5 experiment and return the three series."""
    network = network or MyrinetMXModel()
    sizes = list(sizes) if sizes is not None else list(netpipe_sizes())

    configs = {
        "native": None,
        # Both ranks in the same cluster: nothing is logged.
        "hydee_no_logging": lambda: HydEEProtocol(
            HydEEConfig(clusters=[[0, 1]], piggyback_bytes=piggyback_bytes)
        ),
        # Ranks in different clusters: the ping-pong channel is logged.
        "hydee_logging": lambda: HydEEProtocol(
            HydEEConfig(clusters=[[0], [1]], piggyback_bytes=piggyback_bytes)
        ),
    }

    result = NetpipeResult(sizes=list(sizes))
    for name, factory in configs.items():
        measurements = _run_pingpong(sizes, network, factory, repeats)
        result.latency_s[name] = [measurements[s]["latency_s"] for s in sizes]
        result.bandwidth_bytes_per_s[name] = [
            measurements[s]["bandwidth_bytes_per_s"] for s in sizes
        ]
    return result


def analytic_netpipe_experiment(
    sizes: Optional[Sequence[int]] = None,
    network: Optional[NetworkModel] = None,
    piggyback_bytes: int = 12,
) -> Dict[str, List[float]]:
    """Closed-form counterpart of :func:`run_netpipe_experiment`."""
    return analytic_pingpong_series(
        sizes=sizes, network=network, piggyback_bytes=piggyback_bytes
    )
