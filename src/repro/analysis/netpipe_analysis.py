"""Figure 5 harness: NetPIPE ping-pong under native MPICH2 and HydEE.

Three configurations are measured over a sweep of message sizes:

* ``native``            -- no protocol (the MPICH2 reference);
* ``hydee_no_logging``  -- both ranks in the same cluster: only the
  piggybacked (date, phase) is paid;
* ``hydee_logging``     -- ranks in different clusters: piggyback plus
  sender-based payload logging.

The harness can run the actual simulated ping-pong (default) or fall back to
the closed-form model of :mod:`repro.analysis.perf_model`; both produce the
same series structure so the benchmarks and tests can compare them.  The
per-size measurements are read through :class:`~repro.results.run.RunResult`
(``data["rank_results"]``), and the printed series follow the registered
:data:`NETPIPE` table schema, so ``repro-campaign query STORE --table
netpipe`` rebuilds the Figure 5 series from a cached store.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.analysis.perf_model import analytic_pingpong_series
from repro.campaign.runner import run_campaign
from repro.campaign.store import ResultsStore
from repro.results.query import ResultSet
from repro.results.run import RunResult
from repro.results.tables import Column, Row, TableSchema, register_table
from repro.scenarios.build import to_network_spec
from repro.scenarios.spec import (
    ClusteringSpec,
    ProtocolSpec,
    ScenarioSpec,
    WorkloadSpec,
)
from repro.simulator.network import NetworkModel, netpipe_sizes


def _rows_from_store(resultset: ResultSet) -> List[Row]:
    return result_from_resultset(resultset).rows()


#: One NetPIPE size point: latency/bandwidth change vs native, in percent.
NETPIPE = register_table(
    TableSchema(
        "netpipe",
        columns=(
            Column("bytes", "int"),
            Column("lat_no_log_pct", "float", units="%", format=".2f",
                   header="lat% no-log"),
            Column("lat_log_pct", "float", units="%", format=".2f",
                   header="lat% log"),
            Column("bw_no_log_pct", "float", units="%", format=".2f",
                   header="bw% no-log"),
            Column("bw_log_pct", "float", units="%", format=".2f",
                   header="bw% log"),
        ),
        title="Figure 5 -- ping-pong performance change vs native MPICH2 "
              "(negative = overhead)",
    ),
    builder=_rows_from_store,
)


@dataclass
class NetpipeResult:
    """Latency/bandwidth sweep for the three Figure 5 configurations."""

    sizes: List[int]
    latency_s: Dict[str, List[float]] = field(default_factory=dict)
    bandwidth_bytes_per_s: Dict[str, List[float]] = field(default_factory=dict)

    def latency_reduction_pct(self, config: str) -> List[float]:
        """Latency change vs native, in percent (negative = slower)."""
        native = self.latency_s["native"]
        other = self.latency_s[config]
        return [100.0 * (n - o) / n if n > 0 else 0.0 for n, o in zip(native, other)]

    def bandwidth_reduction_pct(self, config: str) -> List[float]:
        """Bandwidth change vs native, in percent (negative = lower)."""
        native = self.bandwidth_bytes_per_s["native"]
        other = self.bandwidth_bytes_per_s[config]
        return [100.0 * (o - n) / n if n > 0 else 0.0 for n, o in zip(native, other)]

    def rows(self) -> List[Row]:
        """The sweep as :data:`NETPIPE` table rows."""
        lat_no_log = self.latency_reduction_pct("hydee_no_logging")
        lat_log = self.latency_reduction_pct("hydee_logging")
        bw_no_log = self.bandwidth_reduction_pct("hydee_no_logging")
        bw_log = self.bandwidth_reduction_pct("hydee_logging")
        return [
            NETPIPE.row(
                bytes=size,
                lat_no_log_pct=lat_no_log[idx],
                lat_log_pct=lat_log[idx],
                bw_no_log_pct=bw_no_log[idx],
                bw_log_pct=bw_log[idx],
            )
            for idx, size in enumerate(self.sizes)
        ]

    def as_text(self) -> str:
        return NETPIPE.render_text(self.rows())


def _normalise_sizes(sizes: Optional[Sequence[int]]) -> List[int]:
    """Sorted, de-duplicated size sweep.

    :func:`netpipe_sizes` emits ±3-byte perturbation probes around each
    power of two above 16 B; normalising here keeps custom sweeps (which
    may overlap those probes) well-formed for the per-size result lookup.
    """
    if sizes is None:
        return list(netpipe_sizes())
    return sorted({int(s) for s in sizes})


def netpipe_specs(
    sizes: Optional[Sequence[int]] = None,
    network: Optional[NetworkModel] = None,
    repeats: int = 3,
    piggyback_bytes: int = 12,
) -> List[ScenarioSpec]:
    """Declare the three Figure 5 configurations as scenario specs."""
    sizes = _normalise_sizes(sizes)
    network_spec = to_network_spec(network)
    workload = WorkloadSpec(
        kind="netpipe", nprocs=2, iterations=1,
        params={"sizes": sizes, "repeats": repeats},
    )
    # Cluster layouts select what HydEE logs: both ranks together -> nothing,
    # ranks apart -> the whole ping-pong channel.
    series = {
        "native": ProtocolSpec(name="native"),
        "hydee_no_logging": ProtocolSpec(
            name="hydee",
            options={"piggyback_bytes": piggyback_bytes},
            clustering=ClusteringSpec(method="explicit", clusters=((0, 1),)),
        ),
        "hydee_logging": ProtocolSpec(
            name="hydee",
            options={"piggyback_bytes": piggyback_bytes},
            clustering=ClusteringSpec(method="explicit", clusters=((0,), (1,))),
        ),
    }
    return [
        ScenarioSpec(
            name=f"figure5:{name}",
            workload=workload,
            protocol=protocol,
            network=network_spec,
            tags={"experiment": "figure5", "series": name},
        )
        for name, protocol in series.items()
    ]


def _measurements(run: RunResult) -> Dict[str, Dict[str, float]]:
    """Rank 0's per-size measurements (record keys are JSON strings)."""
    return run.data["rank_results"]["0"]["measurements"]


def result_from_resultset(resultset: ResultSet) -> NetpipeResult:
    """Rebuild the three Figure 5 series from figure5-tagged runs.

    Refuses a result set mixing several netpipe sweeps (different size
    lists or duplicate series): silently combining series measured under
    different parameters would fabricate a Figure 5 that nobody ran.
    """
    from repro.errors import ConfigurationError

    runs = resultset.where(**{"tags.experiment": "figure5"})
    result: Optional[NetpipeResult] = None
    for run in runs:
        sizes = [int(s) for s in run.spec_field("workload.params.sizes", ())]
        if result is None:
            result = NetpipeResult(sizes=sizes)
        elif sizes != result.sizes:
            raise ConfigurationError(
                "figure5 runs with different size sweeps in one result set; "
                "filter the store (e.g. --where name=figure5:native style "
                "spec names) down to a single sweep first"
            )
        name = str(run.field("tags.series"))
        if name in result.latency_s:
            raise ConfigurationError(
                f"several figure5 runs for series {name!r} in one result set "
                "(mixed sweeps?); filter the store down to a single sweep"
            )
        measurements = _measurements(run)
        result.latency_s[name] = [measurements[str(s)]["latency_s"] for s in result.sizes]
        result.bandwidth_bytes_per_s[name] = [
            measurements[str(s)]["bandwidth_bytes_per_s"] for s in result.sizes
        ]
    if result is None:
        result = NetpipeResult(sizes=[])
    return result


def run_netpipe_experiment(
    sizes: Optional[Sequence[int]] = None,
    network: Optional[NetworkModel] = None,
    repeats: int = 3,
    piggyback_bytes: int = 12,
    workers: int = 1,
    store: Optional[ResultsStore] = None,
) -> NetpipeResult:
    """Run the simulated Figure 5 experiment and return the three series."""
    sizes = _normalise_sizes(sizes)
    specs = netpipe_specs(
        sizes=sizes, network=network, repeats=repeats, piggyback_bytes=piggyback_bytes
    )
    outcome = run_campaign(specs, workers=workers, store=store)
    return result_from_resultset(ResultSet.from_campaign(outcome))


def analytic_netpipe_experiment(
    sizes: Optional[Sequence[int]] = None,
    network: Optional[NetworkModel] = None,
    piggyback_bytes: int = 12,
) -> Dict[str, List[float]]:
    """Closed-form counterpart of :func:`run_netpipe_experiment`."""
    return analytic_pingpong_series(
        sizes=sizes, network=network, piggyback_bytes=piggyback_bytes
    )
