"""Figure 5 harness: NetPIPE ping-pong under native MPICH2 and HydEE.

Three configurations are measured over a sweep of message sizes:

* ``native``            -- no protocol (the MPICH2 reference);
* ``hydee_no_logging``  -- both ranks in the same cluster: only the
  piggybacked (date, phase) is paid;
* ``hydee_logging``     -- ranks in different clusters: piggyback plus
  sender-based payload logging.

The harness can run the actual simulated ping-pong (default) or fall back to
the closed-form model of :mod:`repro.analysis.perf_model`; both produce the
same series structure so the benchmarks and tests can compare them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.analysis.perf_model import analytic_pingpong_series
from repro.analysis.reporting import format_series
from repro.campaign.runner import run_campaign
from repro.campaign.store import ResultsStore
from repro.scenarios.build import to_network_spec
from repro.scenarios.spec import (
    ClusteringSpec,
    ProtocolSpec,
    ScenarioSpec,
    WorkloadSpec,
)
from repro.simulator.network import NetworkModel, netpipe_sizes


@dataclass
class NetpipeResult:
    """Latency/bandwidth sweep for the three Figure 5 configurations."""

    sizes: List[int]
    latency_s: Dict[str, List[float]] = field(default_factory=dict)
    bandwidth_bytes_per_s: Dict[str, List[float]] = field(default_factory=dict)

    def latency_reduction_pct(self, config: str) -> List[float]:
        """Latency change vs native, in percent (negative = slower)."""
        native = self.latency_s["native"]
        other = self.latency_s[config]
        return [100.0 * (n - o) / n if n > 0 else 0.0 for n, o in zip(native, other)]

    def bandwidth_reduction_pct(self, config: str) -> List[float]:
        """Bandwidth change vs native, in percent (negative = lower)."""
        native = self.bandwidth_bytes_per_s["native"]
        other = self.bandwidth_bytes_per_s[config]
        return [100.0 * (o - n) / n if n > 0 else 0.0 for n, o in zip(native, other)]

    def as_text(self) -> str:
        series = {
            "lat% no-log": [round(v, 2) for v in self.latency_reduction_pct("hydee_no_logging")],
            "lat% log": [round(v, 2) for v in self.latency_reduction_pct("hydee_logging")],
            "bw% no-log": [round(v, 2) for v in self.bandwidth_reduction_pct("hydee_no_logging")],
            "bw% log": [round(v, 2) for v in self.bandwidth_reduction_pct("hydee_logging")],
        }
        return format_series(
            "bytes",
            self.sizes,
            series,
            title="Figure 5 -- ping-pong performance change vs native MPICH2 (negative = overhead)",
        )


def _normalise_sizes(sizes: Optional[Sequence[int]]) -> List[int]:
    """Sorted, de-duplicated size sweep.

    :func:`netpipe_sizes` emits ±3-byte perturbation probes around each
    power of two above 16 B; normalising here keeps custom sweeps (which
    may overlap those probes) well-formed for the per-size result lookup.
    """
    if sizes is None:
        return list(netpipe_sizes())
    return sorted({int(s) for s in sizes})


def netpipe_specs(
    sizes: Optional[Sequence[int]] = None,
    network: Optional[NetworkModel] = None,
    repeats: int = 3,
    piggyback_bytes: int = 12,
) -> List[ScenarioSpec]:
    """Declare the three Figure 5 configurations as scenario specs."""
    sizes = _normalise_sizes(sizes)
    network_spec = to_network_spec(network)
    workload = WorkloadSpec(
        kind="netpipe", nprocs=2, iterations=1,
        params={"sizes": sizes, "repeats": repeats},
    )
    # Cluster layouts select what HydEE logs: both ranks together -> nothing,
    # ranks apart -> the whole ping-pong channel.
    series = {
        "native": ProtocolSpec(name="native"),
        "hydee_no_logging": ProtocolSpec(
            name="hydee",
            options={"piggyback_bytes": piggyback_bytes},
            clustering=ClusteringSpec(method="explicit", clusters=((0, 1),)),
        ),
        "hydee_logging": ProtocolSpec(
            name="hydee",
            options={"piggyback_bytes": piggyback_bytes},
            clustering=ClusteringSpec(method="explicit", clusters=((0,), (1,))),
        ),
    }
    return [
        ScenarioSpec(
            name=f"figure5:{name}",
            workload=workload,
            protocol=protocol,
            network=network_spec,
            tags={"experiment": "figure5", "series": name},
        )
        for name, protocol in series.items()
    ]


def run_netpipe_experiment(
    sizes: Optional[Sequence[int]] = None,
    network: Optional[NetworkModel] = None,
    repeats: int = 3,
    piggyback_bytes: int = 12,
    workers: int = 1,
    store: Optional[ResultsStore] = None,
) -> NetpipeResult:
    """Run the simulated Figure 5 experiment and return the three series."""
    sizes = _normalise_sizes(sizes)
    specs = netpipe_specs(
        sizes=sizes, network=network, repeats=repeats, piggyback_bytes=piggyback_bytes
    )
    outcome = run_campaign(specs, workers=workers, store=store)

    result = NetpipeResult(sizes=list(sizes))
    for spec, record in zip(outcome.specs, outcome.records):
        name = spec.tags["series"]
        # Campaign records are pure JSON: rank and size keys come back as
        # strings.
        measurements = record["result"]["rank_results"]["0"]["measurements"]
        result.latency_s[name] = [measurements[str(s)]["latency_s"] for s in sizes]
        result.bandwidth_bytes_per_s[name] = [
            measurements[str(s)]["bandwidth_bytes_per_s"] for s in sizes
        ]
    return result


def analytic_netpipe_experiment(
    sizes: Optional[Sequence[int]] = None,
    network: Optional[NetworkModel] = None,
    piggyback_bytes: int = 12,
) -> Dict[str, List[float]]:
    """Closed-form counterpart of :func:`run_netpipe_experiment`."""
    return analytic_pingpong_series(
        sizes=sizes, network=network, piggyback_bytes=piggyback_bytes
    )
