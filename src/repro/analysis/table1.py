"""Table I harness: application clustering on 256 processes.

For each of the six NAS class D kernels the harness

1. builds the communication graph of a full run (per-iteration analytic
   pattern scaled by the NPB iteration count),
2. partitions it into the number of clusters the paper's tool selected
   (Table I of the paper: BT 5, CG 16, FT 2, LU 8, MG 4, SP 6),
3. reports the number of clusters, the average fraction of processes rolled
   back by a single failure and the logged/total volume -- the three columns
   of Table I -- next to the paper's values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.analysis.reporting import format_table
from repro.clustering.comm_graph import CommunicationGraph
from repro.clustering.metrics import ClusteringMetrics
from repro.clustering.partitioner import ClusteringResult, partition
from repro.clustering.presets import TABLE1_CLUSTER_COUNTS, TABLE1_PAPER_VALUES
from repro.workloads.nas import NAS_BENCHMARKS


@dataclass
class Table1Row:
    """One benchmark's clustering configuration (one row of Table I)."""

    benchmark: str
    num_clusters: int
    rollback_pct: float
    logged_gb: float
    total_gb: float
    logged_pct: float
    method: str
    paper: Dict[str, float]
    clusters: List[List[int]]

    def as_dict(self) -> Dict[str, object]:
        return {
            "benchmark": self.benchmark.upper(),
            "clusters": self.num_clusters,
            "rollback_pct": round(self.rollback_pct, 2),
            "paper_rollback_pct": self.paper["rollback_pct"],
            "logged_pct": round(self.logged_pct, 2),
            "paper_logged_pct": self.paper["logged_pct"],
            "logged_gb": round(self.logged_gb, 1),
            "total_gb": round(self.total_gb, 1),
            "paper_logged_gb": self.paper["logged_gb"],
            "paper_total_gb": self.paper["total_gb"],
            "method": self.method,
        }


def table1_row(
    benchmark: str,
    nprocs: int = 256,
    num_clusters: Optional[int] = None,
    balance_tolerance: float = 1.1,
    method: str = "auto",
) -> Table1Row:
    """Compute one Table I row."""
    name = benchmark.lower()
    app = NAS_BENCHMARKS[name](nprocs=nprocs, iterations=1)
    graph = CommunicationGraph.from_matrix(app.full_run_matrix())
    k = num_clusters if num_clusters is not None else TABLE1_CLUSTER_COUNTS[name]
    result: ClusteringResult = partition(
        graph, k, method=method, balance_tolerance=balance_tolerance
    )
    metrics: ClusteringMetrics = result.metrics
    paper = TABLE1_PAPER_VALUES.get(name, {})
    return Table1Row(
        benchmark=name,
        num_clusters=metrics.num_clusters,
        rollback_pct=100.0 * metrics.rollback_fraction,
        logged_gb=metrics.logged_bytes / 1e9,
        total_gb=metrics.total_bytes / 1e9,
        logged_pct=100.0 * metrics.logged_fraction,
        method=result.method,
        paper=paper,
        clusters=result.clusters,
    )


def build_table1(
    benchmarks: Optional[Sequence[str]] = None,
    nprocs: int = 256,
    balance_tolerance: float = 1.1,
) -> List[Table1Row]:
    """Compute every row of Table I."""
    benchmarks = list(benchmarks) if benchmarks is not None else list(NAS_BENCHMARKS)
    return [
        table1_row(name, nprocs=nprocs, balance_tolerance=balance_tolerance)
        for name in benchmarks
    ]


def render_table1(rows: Sequence[Table1Row]) -> str:
    headers = [
        "bench",
        "clusters",
        "rollback %",
        "paper %",
        "logged %",
        "paper %",
        "logged GB",
        "total GB",
        "paper GB (log/total)",
    ]
    data = []
    for row in rows:
        d = row.as_dict()
        data.append(
            [
                d["benchmark"],
                d["clusters"],
                d["rollback_pct"],
                d["paper_rollback_pct"],
                d["logged_pct"],
                d["paper_logged_pct"],
                d["logged_gb"],
                d["total_gb"],
                f"{d['paper_logged_gb']:.0f}/{d['paper_total_gb']:.0f}",
            ]
        )
    return format_table(
        headers,
        data,
        title=f"Table I -- application clustering on {256} processes (measured vs paper)",
    )
