"""Table I harness: application clustering on 256 processes.

For each of the six NAS class D kernels the harness

1. builds the communication graph of a full run (per-iteration analytic
   pattern scaled by the NPB iteration count),
2. partitions it into the number of clusters the paper's tool selected
   (Table I of the paper: BT 5, CG 16, FT 2, LU 8, MG 4, SP 6),
3. reports the number of clusters, the average fraction of processes rolled
   back by a single failure and the logged/total volume -- the three columns
   of Table I -- next to the paper's values.

The computation is declared per benchmark as a :class:`ScenarioSpec` with
the ``table1-row`` analysis and executed through the campaign runner (the
cluster-count frontier sweep of ablation E6 is the ``cluster-sweep``
analysis in the same fashion), so whole-table builds parallelise and cache
like any other campaign.

Rows follow the registered :data:`TABLE1` / :data:`CLUSTER_SWEEP` schemas
(:mod:`repro.results.tables`): ``repro-campaign query STORE --table table1``
rebuilds the printed table from any cached store.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.campaign.runner import run_campaign
from repro.campaign.store import ResultsStore
from repro.clustering.comm_graph import CommunicationGraph
from repro.clustering.metrics import ClusteringMetrics
from repro.clustering.partitioner import ClusteringResult, partition, sweep_cluster_counts
from repro.clustering.presets import TABLE1_CLUSTER_COUNTS, TABLE1_PAPER_VALUES
from repro.campaign.jobs import jsonify
from repro.results.metrics import MetricSet
from repro.results.query import ResultSet
from repro.results.run import make_payload
from repro.results.tables import Column, Row, TableSchema, register_table
from repro.scenarios.build import build_application
from repro.scenarios.spec import ClusteringSpec, ProtocolSpec, ScenarioSpec, WorkloadSpec
from repro.workloads.nas import NAS_BENCHMARKS


def _rows_from_store(resultset: ResultSet) -> List[Row]:
    return [
        TABLE1.from_mapping(run.data["row"])
        for run in resultset.where(analysis="table1-row")
    ]


def _sweep_rows_from_store(resultset: ResultSet) -> List[Row]:
    return [
        CLUSTER_SWEEP.from_mapping(row)
        for run in resultset.where(analysis="cluster-sweep")
        for row in run.data["rows"]
    ]


#: One row of Table I (measured next to the paper's reference values).
TABLE1 = register_table(
    TableSchema(
        "table1",
        columns=(
            Column("benchmark", "str", header="bench", display=str.upper),
            Column("num_clusters", "int", header="clusters"),
            Column("rollback_pct", "float", units="%", format=".2f", header="rollback %"),
            Column("paper_rollback_pct", "float", units="%", optional=True, header="paper %"),
            Column("logged_pct", "float", units="%", format=".2f", header="logged %"),
            Column("paper_logged_pct", "float", units="%", optional=True, header="paper %"),
            Column("logged_gb", "float", units="GB", format=".1f", header="logged GB"),
            Column("total_gb", "float", units="GB", format=".1f", header="total GB"),
            Column("paper_logged_gb", "float", units="GB", optional=True, header="paper log GB"),
            Column("paper_total_gb", "float", units="GB", optional=True, header="paper total GB"),
            Column("method", "str"),
        ),
        title="Table I -- application clustering on 256 processes (measured vs paper)",
    ),
    builder=_rows_from_store,
)

#: The cluster-count frontier of ablation E6 (rollback vs logged volume).
CLUSTER_SWEEP = register_table(
    TableSchema(
        "cluster-sweep",
        columns=(
            Column("clusters", "int"),
            Column("rollback_pct", "float", units="%"),
            Column("logged_pct", "float", units="%"),
            Column("logged_gb", "float", units="GB"),
            Column("method", "str"),
        ),
        title="Cluster-count sweep (rollback vs logged volume)",
    ),
    builder=_sweep_rows_from_store,
)


# ------------------------------------------------------------ scenario layer
def table1_spec(
    benchmark: str,
    nprocs: int = 256,
    num_clusters: Optional[int] = None,
    balance_tolerance: float = 1.1,
) -> ScenarioSpec:
    """Declare one Table I row as an analytic campaign scenario."""
    name = benchmark.lower()
    clustering = ClusteringSpec(
        method="preset" if num_clusters is None else "partition",
        num_clusters=num_clusters,
        balance_tolerance=balance_tolerance,
        matrix="full",
    )
    return ScenarioSpec(
        name=f"table1:{name}:np{nprocs}",
        workload=WorkloadSpec(kind=name, nprocs=nprocs, iterations=1),
        protocol=ProtocolSpec(name="hydee", clustering=clustering),
        tags={"experiment": "table1", "analysis": "table1-row", "benchmark": name},
    )


def cluster_sweep_spec(
    benchmark: str,
    nprocs: int = 256,
    counts: Sequence[int] = (2, 4, 8, 16, 32),
) -> ScenarioSpec:
    """Declare a cluster-count frontier sweep (ablation E6) scenario."""
    name = benchmark.lower()
    return ScenarioSpec(
        name=f"cluster-sweep:{name}:np{nprocs}",
        workload=WorkloadSpec(kind=name, nprocs=nprocs, iterations=1),
        protocol=ProtocolSpec(name="hydee"),
        tags={
            "experiment": "ablation-clusters",
            "analysis": "cluster-sweep",
            "benchmark": name,
            "counts": [int(k) for k in counts],
        },
    )


# ------------------------------------------------------------------- compute
def _compute_row(
    benchmark: str,
    nprocs: int,
    num_clusters: Optional[int],
    balance_tolerance: float,
) -> Tuple[Row, List[List[int]]]:
    """One Table I row plus the cluster membership lists (provenance)."""
    name = benchmark.lower()
    app = build_application(WorkloadSpec(kind=name, nprocs=nprocs, iterations=1))
    graph = CommunicationGraph.from_matrix(app.full_run_matrix())
    k = num_clusters if num_clusters is not None else TABLE1_CLUSTER_COUNTS[name]
    result: ClusteringResult = partition(
        graph, min(k, nprocs), method="auto", balance_tolerance=balance_tolerance
    )
    metrics: ClusteringMetrics = result.metrics
    paper = TABLE1_PAPER_VALUES.get(name, {})
    row = TABLE1.row(
        benchmark=name,
        num_clusters=metrics.num_clusters,
        rollback_pct=100.0 * metrics.rollback_fraction,
        paper_rollback_pct=paper.get("rollback_pct"),
        logged_pct=100.0 * metrics.logged_fraction,
        paper_logged_pct=paper.get("logged_pct"),
        logged_gb=metrics.logged_bytes / 1e9,
        total_gb=metrics.total_bytes / 1e9,
        paper_logged_gb=paper.get("logged_gb"),
        paper_total_gb=paper.get("total_gb"),
        method=result.method,
    )
    return row, result.clusters


def table1_job(spec: ScenarioSpec) -> Tuple[Dict[str, Any], Row]:
    """Campaign job computing one Table I row from its scenario spec."""
    clustering = spec.protocol.clustering
    row, membership = _compute_row(
        spec.workload.kind,
        spec.workload.nprocs,
        clustering.num_clusters,
        clustering.balance_tolerance,
    )
    metrics = MetricSet()
    for key in ("num_clusters", "rollback_pct", "logged_pct", "logged_gb", "total_gb"):
        metrics.set(f"clustering.{key}", row[key])
    payload = make_payload(
        "completed", metrics, {"row": row.to_dict(), "membership": membership}
    )
    return jsonify(payload), row


def cluster_sweep_job(spec: ScenarioSpec) -> Tuple[Dict[str, Any], List[Row]]:
    """Campaign job sweeping the cluster count of one benchmark (E6)."""
    counts = [k for k in spec.tags["counts"] if k <= spec.workload.nprocs]
    app = build_application(spec.workload)
    graph = CommunicationGraph.from_matrix(app.full_run_matrix())
    rows = []
    for result in sweep_cluster_counts(graph, counts):
        metrics = result.metrics
        rows.append(
            CLUSTER_SWEEP.row(
                clusters=metrics.num_clusters,
                rollback_pct=round(100.0 * metrics.rollback_fraction, 2),
                logged_pct=round(100.0 * metrics.logged_fraction, 2),
                logged_gb=round(metrics.logged_bytes / 1e9, 1),
                method=result.method,
            )
        )
    payload = make_payload("completed", None, {"rows": [r.to_dict() for r in rows]})
    return jsonify(payload), rows


# ----------------------------------------------------------------- harnesses
def rows_from_campaign(outcome) -> List[Row]:
    """Rebuild the Table I rows from a campaign outcome (cached or fresh)."""
    return _rows_from_store(ResultSet.from_campaign(outcome))


def table1_row(
    benchmark: str,
    nprocs: int = 256,
    num_clusters: Optional[int] = None,
    balance_tolerance: float = 1.1,
    store: Optional[ResultsStore] = None,
) -> Row:
    """Compute one Table I row."""
    spec = table1_spec(
        benchmark,
        nprocs=nprocs,
        num_clusters=num_clusters,
        balance_tolerance=balance_tolerance,
    )
    outcome = run_campaign([spec], store=store)
    return rows_from_campaign(outcome)[0]


def build_table1(
    benchmarks: Optional[Sequence[str]] = None,
    nprocs: int = 256,
    balance_tolerance: float = 1.1,
    workers: int = 1,
    store: Optional[ResultsStore] = None,
) -> List[Row]:
    """Compute every row of Table I (one campaign over the benchmarks)."""
    benchmarks = list(benchmarks) if benchmarks is not None else list(NAS_BENCHMARKS)
    specs = [
        table1_spec(name, nprocs=nprocs, balance_tolerance=balance_tolerance)
        for name in benchmarks
    ]
    outcome = run_campaign(specs, workers=workers, store=store)
    return rows_from_campaign(outcome)


def render_table1(rows: Sequence[Row]) -> str:
    return TABLE1.render_text(rows)
