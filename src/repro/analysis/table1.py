"""Table I harness: application clustering on 256 processes.

For each of the six NAS class D kernels the harness

1. builds the communication graph of a full run (per-iteration analytic
   pattern scaled by the NPB iteration count),
2. partitions it into the number of clusters the paper's tool selected
   (Table I of the paper: BT 5, CG 16, FT 2, LU 8, MG 4, SP 6),
3. reports the number of clusters, the average fraction of processes rolled
   back by a single failure and the logged/total volume -- the three columns
   of Table I -- next to the paper's values.

The computation is declared per benchmark as a :class:`ScenarioSpec` with
the ``table1-row`` analysis and executed through the campaign runner (the
cluster-count frontier sweep of ablation E6 is the ``cluster-sweep``
analysis in the same fashion), so whole-table builds parallelise and cache
like any other campaign.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.reporting import format_table
from repro.clustering.comm_graph import CommunicationGraph
from repro.clustering.metrics import ClusteringMetrics
from repro.clustering.partitioner import ClusteringResult, partition, sweep_cluster_counts
from repro.clustering.presets import TABLE1_CLUSTER_COUNTS, TABLE1_PAPER_VALUES
from repro.campaign.jobs import jsonify
from repro.campaign.runner import run_campaign
from repro.campaign.store import ResultsStore
from repro.scenarios.build import build_application
from repro.scenarios.spec import ClusteringSpec, ProtocolSpec, ScenarioSpec, WorkloadSpec
from repro.workloads.nas import NAS_BENCHMARKS


@dataclass
class Table1Row:
    """One benchmark's clustering configuration (one row of Table I)."""

    benchmark: str
    num_clusters: int
    rollback_pct: float
    logged_gb: float
    total_gb: float
    logged_pct: float
    method: str
    paper: Dict[str, float]
    clusters: List[List[int]]

    def as_dict(self) -> Dict[str, object]:
        return {
            "benchmark": self.benchmark.upper(),
            "clusters": self.num_clusters,
            "rollback_pct": round(self.rollback_pct, 2),
            "paper_rollback_pct": self.paper["rollback_pct"],
            "logged_pct": round(self.logged_pct, 2),
            "paper_logged_pct": self.paper["logged_pct"],
            "logged_gb": round(self.logged_gb, 1),
            "total_gb": round(self.total_gb, 1),
            "paper_logged_gb": self.paper["logged_gb"],
            "paper_total_gb": self.paper["total_gb"],
            "method": self.method,
        }


# ------------------------------------------------------------ scenario layer
def table1_spec(
    benchmark: str,
    nprocs: int = 256,
    num_clusters: Optional[int] = None,
    balance_tolerance: float = 1.1,
) -> ScenarioSpec:
    """Declare one Table I row as an analytic campaign scenario."""
    name = benchmark.lower()
    clustering = ClusteringSpec(
        method="preset" if num_clusters is None else "partition",
        num_clusters=num_clusters,
        balance_tolerance=balance_tolerance,
        matrix="full",
    )
    return ScenarioSpec(
        name=f"table1:{name}:np{nprocs}",
        workload=WorkloadSpec(kind=name, nprocs=nprocs, iterations=1),
        protocol=ProtocolSpec(name="hydee", clustering=clustering),
        tags={"experiment": "table1", "analysis": "table1-row", "benchmark": name},
    )


def cluster_sweep_spec(
    benchmark: str,
    nprocs: int = 256,
    counts: Sequence[int] = (2, 4, 8, 16, 32),
) -> ScenarioSpec:
    """Declare a cluster-count frontier sweep (ablation E6) scenario."""
    name = benchmark.lower()
    return ScenarioSpec(
        name=f"cluster-sweep:{name}:np{nprocs}",
        workload=WorkloadSpec(kind=name, nprocs=nprocs, iterations=1),
        protocol=ProtocolSpec(name="hydee"),
        tags={
            "experiment": "ablation-clusters",
            "analysis": "cluster-sweep",
            "benchmark": name,
            "counts": [int(k) for k in counts],
        },
    )


def _compute_row(
    benchmark: str,
    nprocs: int,
    num_clusters: Optional[int],
    balance_tolerance: float,
) -> Table1Row:
    name = benchmark.lower()
    app = build_application(WorkloadSpec(kind=name, nprocs=nprocs, iterations=1))
    graph = CommunicationGraph.from_matrix(app.full_run_matrix())
    k = num_clusters if num_clusters is not None else TABLE1_CLUSTER_COUNTS[name]
    result: ClusteringResult = partition(
        graph, min(k, nprocs), method="auto", balance_tolerance=balance_tolerance
    )
    metrics: ClusteringMetrics = result.metrics
    paper = TABLE1_PAPER_VALUES.get(name, {})
    return Table1Row(
        benchmark=name,
        num_clusters=metrics.num_clusters,
        rollback_pct=100.0 * metrics.rollback_fraction,
        logged_gb=metrics.logged_bytes / 1e9,
        total_gb=metrics.total_bytes / 1e9,
        logged_pct=100.0 * metrics.logged_fraction,
        method=result.method,
        paper=paper,
        clusters=result.clusters,
    )


def table1_job(spec: ScenarioSpec) -> Tuple[Dict[str, Any], Table1Row]:
    """Campaign job computing one Table I row from its scenario spec."""
    clustering = spec.protocol.clustering
    row = _compute_row(
        spec.workload.kind,
        spec.workload.nprocs,
        clustering.num_clusters,
        clustering.balance_tolerance,
    )
    return jsonify(asdict(row)), row


def cluster_sweep_job(spec: ScenarioSpec) -> Tuple[Dict[str, Any], List[Dict[str, Any]]]:
    """Campaign job sweeping the cluster count of one benchmark (E6)."""
    counts = [k for k in spec.tags["counts"] if k <= spec.workload.nprocs]
    app = build_application(spec.workload)
    graph = CommunicationGraph.from_matrix(app.full_run_matrix())
    rows = []
    for result in sweep_cluster_counts(graph, counts):
        metrics = result.metrics
        rows.append(
            {
                "clusters": metrics.num_clusters,
                "rollback_pct": round(100.0 * metrics.rollback_fraction, 2),
                "logged_pct": round(100.0 * metrics.logged_fraction, 2),
                "logged_gb": round(metrics.logged_bytes / 1e9, 1),
                "method": result.method,
            }
        )
    return {"rows": jsonify(rows)}, rows


def row_from_record(record: Mapping[str, Any]) -> Table1Row:
    """Rebuild a :class:`Table1Row` from a (possibly cached) campaign record."""
    payload = dict(record["result"])
    payload["clusters"] = [list(c) for c in payload["clusters"]]
    return Table1Row(**payload)


# ----------------------------------------------------------------- harnesses
def table1_row(
    benchmark: str,
    nprocs: int = 256,
    num_clusters: Optional[int] = None,
    balance_tolerance: float = 1.1,
    store: Optional[ResultsStore] = None,
) -> Table1Row:
    """Compute one Table I row."""
    spec = table1_spec(
        benchmark,
        nprocs=nprocs,
        num_clusters=num_clusters,
        balance_tolerance=balance_tolerance,
    )
    outcome = run_campaign([spec], store=store)
    return row_from_record(outcome.records[0])


def build_table1(
    benchmarks: Optional[Sequence[str]] = None,
    nprocs: int = 256,
    balance_tolerance: float = 1.1,
    workers: int = 1,
    store: Optional[ResultsStore] = None,
) -> List[Table1Row]:
    """Compute every row of Table I (one campaign over the benchmarks)."""
    benchmarks = list(benchmarks) if benchmarks is not None else list(NAS_BENCHMARKS)
    specs = [
        table1_spec(name, nprocs=nprocs, balance_tolerance=balance_tolerance)
        for name in benchmarks
    ]
    outcome = run_campaign(specs, workers=workers, store=store)
    return [row_from_record(record) for record in outcome.records]


def render_table1(rows: Sequence[Table1Row]) -> str:
    headers = [
        "bench",
        "clusters",
        "rollback %",
        "paper %",
        "logged %",
        "paper %",
        "logged GB",
        "total GB",
        "paper GB (log/total)",
    ]
    data = []
    for row in rows:
        d = row.as_dict()
        data.append(
            [
                d["benchmark"],
                d["clusters"],
                d["rollback_pct"],
                d["paper_rollback_pct"],
                d["logged_pct"],
                d["paper_logged_pct"],
                d["logged_gb"],
                d["total_gb"],
                f"{d['paper_logged_gb']:.0f}/{d['paper_total_gb']:.0f}",
            ]
        )
    return format_table(
        headers,
        data,
        title=f"Table I -- application clustering on {256} processes (measured vs paper)",
    )
