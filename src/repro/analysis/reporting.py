"""Plain-text rendering of experiment tables and series.

The experiment harnesses return plain data structures (lists of dicts); this
module turns them into the ASCII tables printed by the ``repro.experiments``
entry points and the benchmark suites, mirroring the paper's tables/figures
as text.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Mapping, Optional, Sequence


def format_value(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.2f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    title: Optional[str] = None,
) -> str:
    """Render an ASCII table with aligned columns."""
    str_rows = [[format_value(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for idx, cell in enumerate(row):
            widths[idx] = max(widths[idx], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    separator = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(separator)
    for row in str_rows:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_dict_table(
    rows: Sequence[Mapping[str, Any]],
    columns: Sequence[str],
    headers: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
) -> str:
    """Render a list of dict rows, selecting and ordering ``columns``."""
    headers = list(headers) if headers is not None else list(columns)
    data = [[row.get(col, "") for col in columns] for row in rows]
    return format_table(headers, data, title=title)


def format_series(
    x_label: str,
    x_values: Sequence[Any],
    series: Mapping[str, Sequence[Any]],
    title: Optional[str] = None,
) -> str:
    """Render aligned columns for figure-style data (one column per series)."""
    headers = [x_label] + list(series.keys())
    rows = []
    for idx, x in enumerate(x_values):
        rows.append([x] + [series[name][idx] for name in series])
    return format_table(headers, rows, title=title)


def percent(value: float, reference: float) -> float:
    """Signed percentage change of ``value`` relative to ``reference``."""
    if reference == 0:
        return 0.0
    return 100.0 * (value - reference) / reference
