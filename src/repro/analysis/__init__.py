"""Measurement harnesses and performance models for the paper's evaluation."""

from repro.analysis.perf_model import (
    MessageCostBreakdown,
    analytic_pingpong_series,
    iteration_overhead_estimate,
    message_cost,
)
from repro.analysis.netpipe_analysis import (
    NetpipeResult,
    analytic_netpipe_experiment,
    run_netpipe_experiment,
)
from repro.analysis.table1 import Table1Row, build_table1, render_table1, table1_row
from repro.analysis.overhead import (
    OverheadRow,
    build_figure6,
    measure_overhead,
    render_figure6,
)
from repro.analysis.containment import (
    ContainmentRow,
    render_containment,
    run_containment_experiment,
)
from repro.analysis.congestion import (
    CongestionRow,
    congestion_specs,
    recovery_divergence,
    render_congestion,
    run_congestion_experiment,
)
from repro.analysis.reporting import format_dict_table, format_series, format_table, percent

__all__ = [
    "MessageCostBreakdown",
    "message_cost",
    "analytic_pingpong_series",
    "iteration_overhead_estimate",
    "NetpipeResult",
    "run_netpipe_experiment",
    "analytic_netpipe_experiment",
    "Table1Row",
    "table1_row",
    "build_table1",
    "render_table1",
    "OverheadRow",
    "measure_overhead",
    "build_figure6",
    "render_figure6",
    "ContainmentRow",
    "run_containment_experiment",
    "render_containment",
    "CongestionRow",
    "congestion_specs",
    "run_congestion_experiment",
    "render_congestion",
    "recovery_divergence",
    "format_table",
    "format_dict_table",
    "format_series",
    "percent",
]
