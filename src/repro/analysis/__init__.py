"""Measurement harnesses and performance models for the paper's evaluation.

Importing this package also registers every analysis table schema
(:mod:`repro.results.tables`), which is what makes ``repro-campaign query
STORE --table NAME`` work over cached stores.
"""

from repro.analysis.perf_model import (
    MessageCostBreakdown,
    analytic_pingpong_series,
    iteration_overhead_estimate,
    message_cost,
)
from repro.analysis.netpipe_analysis import (
    NETPIPE,
    NetpipeResult,
    analytic_netpipe_experiment,
    run_netpipe_experiment,
)
from repro.analysis.table1 import (
    CLUSTER_SWEEP,
    TABLE1,
    build_table1,
    render_table1,
    table1_row,
)
from repro.analysis.overhead import (
    FIGURE6,
    build_figure6,
    by_config,
    measure_overhead,
    render_figure6,
)
from repro.analysis.containment import (
    CONTAINMENT,
    render_containment,
    run_containment_experiment,
)
from repro.analysis.congestion import (
    CONGESTION,
    congestion_specs,
    recovery_divergence,
    render_congestion,
    run_congestion_experiment,
)
from repro.analysis.efficiency import (
    EFFICIENCY,
    containment_holds,
    render_efficiency,
    run_efficiency_experiment,
    wasted_work_by_protocol,
)
from repro.analysis.reporting import format_dict_table, format_series, format_table, percent

__all__ = [
    "MessageCostBreakdown",
    "message_cost",
    "analytic_pingpong_series",
    "iteration_overhead_estimate",
    "NETPIPE",
    "NetpipeResult",
    "run_netpipe_experiment",
    "analytic_netpipe_experiment",
    "TABLE1",
    "CLUSTER_SWEEP",
    "table1_row",
    "build_table1",
    "render_table1",
    "FIGURE6",
    "by_config",
    "measure_overhead",
    "build_figure6",
    "render_figure6",
    "CONTAINMENT",
    "run_containment_experiment",
    "render_containment",
    "CONGESTION",
    "congestion_specs",
    "run_congestion_experiment",
    "render_congestion",
    "recovery_divergence",
    "EFFICIENCY",
    "run_efficiency_experiment",
    "render_efficiency",
    "wasted_work_by_protocol",
    "containment_holds",
    "format_table",
    "format_dict_table",
    "format_series",
    "percent",
]
