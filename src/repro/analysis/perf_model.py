"""Analytic overhead model for HydEE's per-message costs.

Section V of the paper attributes HydEE's failure-free overhead to exactly
two mechanisms, both modelled here on top of
:class:`repro.simulator.network.NetworkModel`:

* **piggybacking** the (date, phase) pair: inlined below 1 KiB (which can
  push a small message onto the next latency plateau -- the two peaks of
  Figure 5), shipped as a separate message above 1 KiB (one extra
  small-message latency, negligible next to the transfer time);
* **sender-based payload logging**: a memcpy overlapped with the NIC
  transfer, of which only a small non-overlapped fraction is visible.

These closed-form predictions are used by the Figure 5 harness both as a
fast path and as a cross-check of the simulated ping-pong.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.simulator.network import (
    MyrinetMXModel,
    NetworkModel,
    PiggybackPolicy,
    netpipe_sizes,
    pingpong_half_round_trip,
)


@dataclass
class MessageCostBreakdown:
    """Cost of sending one application message under a protocol configuration."""

    app_bytes: int
    wire_bytes: int
    base_latency_s: float
    total_latency_s: float
    piggyback_latency_s: float
    logging_latency_s: float

    @property
    def overhead_s(self) -> float:
        return self.total_latency_s - self.base_latency_s

    @property
    def overhead_fraction(self) -> float:
        if self.base_latency_s == 0:
            return 0.0
        return self.overhead_s / self.base_latency_s


def message_cost(
    network: NetworkModel,
    app_bytes: int,
    piggyback_bytes: int = 12,
    policy: PiggybackPolicy = PiggybackPolicy.INLINE_SMALL_SEPARATE_LARGE,
    logging: bool = False,
) -> MessageCostBreakdown:
    """One-way cost of a message under HydEE's mechanisms."""
    base = pingpong_half_round_trip(network, app_bytes)
    extra_bytes, extra_latency = network.piggyback_cost(app_bytes, piggyback_bytes, policy)
    wire = app_bytes + extra_bytes
    logging_cost = network.memcpy_time(app_bytes) if logging else 0.0
    total = (
        network.send_overhead_s
        + extra_latency
        + logging_cost
        + network.transfer_time(wire)
        + network.recv_overhead_s
    )
    return MessageCostBreakdown(
        app_bytes=app_bytes,
        wire_bytes=wire,
        base_latency_s=base,
        total_latency_s=total,
        piggyback_latency_s=extra_latency
        + (network.transfer_time(wire) - network.transfer_time(app_bytes)),
        logging_latency_s=logging_cost,
    )


def analytic_pingpong_series(
    sizes: Optional[Sequence[int]] = None,
    network: Optional[NetworkModel] = None,
    piggyback_bytes: int = 12,
    policy: PiggybackPolicy = PiggybackPolicy.INLINE_SMALL_SEPARATE_LARGE,
) -> Dict[str, List[float]]:
    """Closed-form Figure 5 series.

    Returns a dict with the message ``sizes`` and, for the "no logging"
    (intra-cluster) and "logging" (inter-cluster) configurations, the latency
    and bandwidth change relative to the native library, in percent (negative
    values = slower / less bandwidth, matching the paper's axes).
    """
    network = network or MyrinetMXModel()
    sizes = list(sizes) if sizes is not None else list(netpipe_sizes())
    out: Dict[str, List[float]] = {
        "sizes": [float(s) for s in sizes],
        "latency_reduction_no_logging_pct": [],
        "latency_reduction_logging_pct": [],
        "bandwidth_reduction_no_logging_pct": [],
        "bandwidth_reduction_logging_pct": [],
    }
    for size in sizes:
        native = pingpong_half_round_trip(network, size)
        no_log = message_cost(network, size, piggyback_bytes, policy, logging=False)
        log = message_cost(network, size, piggyback_bytes, policy, logging=True)
        for key, cost in (
            ("no_logging", no_log.total_latency_s),
            ("logging", log.total_latency_s),
        ):
            latency_red = 100.0 * (native - cost) / native
            native_bw = size / native
            bw = size / cost
            bw_red = 100.0 * (bw - native_bw) / native_bw
            out[f"latency_reduction_{key}_pct"].append(latency_red)
            out[f"bandwidth_reduction_{key}_pct"].append(bw_red)
    return out


def iteration_overhead_estimate(
    network: NetworkModel,
    messages_per_rank: int,
    message_bytes: int,
    logged_fraction: float,
    compute_seconds: float,
    piggyback_bytes: int = 12,
    policy: PiggybackPolicy = PiggybackPolicy.INLINE_SMALL_SEPARATE_LARGE,
) -> float:
    """Rough normalized-execution-time estimate for one NAS-like iteration.

    Used by sanity tests of the Figure 6 harness: the full simulation should
    land near this closed-form estimate.
    """
    base_comm = messages_per_rank * pingpong_half_round_trip(network, message_bytes)
    logged = message_cost(network, message_bytes, piggyback_bytes, policy, logging=True)
    unlogged = message_cost(network, message_bytes, piggyback_bytes, policy, logging=False)
    overhead = messages_per_rank * (
        logged_fraction * logged.overhead_s + (1.0 - logged_fraction) * unlogged.overhead_s
    )
    base_total = compute_seconds + base_comm
    return (base_total + overhead) / base_total


def piggyback_policy_rows(
    network: NetworkModel,
    sizes: Sequence[int],
    piggyback_bytes: int = 12,
) -> List[Dict[str, float]]:
    """Per-policy one-way overhead decomposition (ablation E5).

    For each message size, the visible overhead of every piggyback policy in
    percent of the native one-way time, plus the extra cost of sender-based
    logging under the paper's hybrid rule.
    """
    rows: List[Dict[str, float]] = []
    hybrid = PiggybackPolicy.INLINE_SMALL_SEPARATE_LARGE
    for size in sizes:
        row: Dict[str, float] = {"bytes": float(size)}
        for policy in (
            PiggybackPolicy.NONE,
            PiggybackPolicy.INLINE,
            PiggybackPolicy.SEPARATE,
            hybrid,
        ):
            cost = message_cost(network, size, piggyback_bytes, policy, logging=False)
            row[f"{policy.value}_pct"] = 100.0 * cost.overhead_fraction
        logged = message_cost(network, size, piggyback_bytes, hybrid, logging=True)
        row["logging_extra_pct"] = (
            100.0 * logged.overhead_fraction - row[f"{hybrid.value}_pct"]
        )
        rows.append(row)
    return rows


def piggyback_policy_job(spec):
    """Campaign job for the piggyback-policy ablation (analytic, E5).

    The scenario's netpipe workload supplies the size sweep, its protocol
    options the piggybacked byte count, and its network spec the model.
    Imported lazily by the campaign job registry.
    """
    from repro.campaign.jobs import jsonify
    from repro.results.run import make_payload
    from repro.scenarios.build import build_network

    sizes = list(spec.workload.params.get("sizes") or netpipe_sizes(1 << 20))
    piggyback_bytes = int(spec.protocol.options.get("piggyback_bytes", 12))
    rows = piggyback_policy_rows(
        build_network(spec), sizes, piggyback_bytes=piggyback_bytes
    )
    return jsonify(make_payload("completed", None, {"rows": rows})), rows
