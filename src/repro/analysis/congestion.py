"""Congested-recovery experiment: recovery time vs inter-cluster bandwidth.

The paper's containment argument is about *where* recovery traffic flows:
under HydEE only the failed cluster's ranks replay, and the replayed
messages are served from sender-based logs across inter-cluster links,
while coordinated checkpointing re-executes *every* rank and pushes the
whole communication volume through the fabric again.  On a flat network the
two are indistinguishable time-wise; on a hierarchical topology with an
oversubscribed inter-cluster fabric they diverge -- which is exactly what
this harness quantifies.

For each inter-cluster oversubscription factor and each protocol the
harness runs a failure-free scenario and an identical scenario with one
injected failure; *recovery seconds* is the makespan difference between the
two (the price of the failure, congestion included).  Protocol clusters are
aligned with the physical topology (``ClusteringSpec(method="topology")``)
so HydEE's logged traffic is exactly the traffic crossing the
oversubscribed links.

Scenarios run through the campaign runner under the registered
``congestion-recovery`` analysis job, which records a slim metric tree
(``sim.*`` makespans/rollbacks, ``links.tiers.inter-cluster``,
``network.*``) -- so sweeps cache, fan out over workers, and stay
byte-identical between serial and parallel runs.  The paired rows follow
the registered :data:`CONGESTION` schema and can be rebuilt from any store
with ``repro-campaign query STORE --table congestion``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.campaign.runner import run_campaign
from repro.campaign.store import ResultsStore
from repro.errors import ConfigurationError
from repro.results.metrics import MetricSet
from repro.results.query import ResultSet
from repro.results.run import RunResult, make_payload
from repro.results.tables import Column, Row, TableSchema, register_table
from repro.scenarios.build import build
from repro.scenarios.spec import (
    ClusteringSpec,
    FailureSpec,
    NetworkSpec,
    ProtocolSpec,
    ScenarioSpec,
    TopologySpec,
    WorkloadSpec,
)

#: tier key reported by the contention model for the oversubscribed fabric.
INTER_CLUSTER_TIER = "inter-cluster"


def _rows_from_store(resultset: ResultSet) -> List[Row]:
    return rows_from_resultset(
        resultset.where(**{"tags.experiment": "congestion-recovery"})
    )


#: Recovery cost of one protocol at one oversubscription factor.
CONGESTION = register_table(
    TableSchema(
        "congestion",
        columns=(
            Column("protocol", "str"),
            Column("oversubscription", "float", header="oversub"),
            Column("failure_free_makespan_s", "float", units="s", scale=1e3,
                   format=".3f", header="free_ms"),
            Column("failed_makespan_s", "float", units="s", scale=1e3,
                   format=".3f", header="failed_ms"),
            Column("recovery_seconds", "float", units="s", scale=1e3,
                   format=".3f", header="recovery_ms"),
            Column("ranks_rolled_back", "int", header="rolled_back"),
            Column("replayed_messages", "int", header="replayed"),
            Column("inter_cluster_wait_s", "float", units="s", scale=1e3,
                   format=".3f", header="inter_wait_ms"),
            Column("inter_cluster_bytes", "int", units="B", scale=1e-6,
                   format=".2f", header="inter_MB"),
        ),
        title="Congested recovery: one failure, inter-cluster oversubscription sweep",
    ),
    builder=_rows_from_store,
)


# ----------------------------------------------------------------------- job
def congestion_job(spec: ScenarioSpec) -> Tuple[Dict[str, Any], Any]:
    """Campaign job: simulate and keep only the congestion-relevant metrics."""
    from repro.campaign.jobs import jsonify

    result = build(spec).run()
    full = result.metrics
    metrics = MetricSet()
    metrics.set("sim.makespan", full.get("sim.makespan"))
    metrics.set("sim.recovery_time", full.get("sim.recovery_time"))
    metrics.set("sim.ranks_rolled_back", full.get("sim.ranks_rolled_back"))
    metrics.set("protocol.replayed_messages", full.get("protocol.replayed_messages", 0))
    metrics.set("network.contention_wait_s", full.get("network.contention_wait_s", 0.0))
    topology = full.get("network.topology")
    if topology:
        metrics.set("network.topology", topology)
    inter = full.get(f"links.tiers.{INTER_CLUSTER_TIER}")
    if inter:
        metrics.set(f"links.tiers.{INTER_CLUSTER_TIER}", inter)
    return jsonify(make_payload(result.status, metrics, {})), result


# ---------------------------------------------------------------------- specs
def congestion_specs(
    nprocs: int = 16,
    iterations: int = 6,
    failed_rank: int = 5,
    fail_at_iteration: int = 4,
    checkpoint_interval: int = 2,
    oversubscriptions: Sequence[float] = (1.0, 2.0, 4.0, 8.0),
    protocols: Sequence[str] = ("hydee", "coordinated"),
    workload_kind: str = "stencil2d",
    topology_preset: str = "cluster-per-node",
    ranks_per_node: int = 4,
) -> List[ScenarioSpec]:
    """Declare the (oversubscription x protocol x {free, failure}) grid."""
    workload = WorkloadSpec(kind=workload_kind, nprocs=nprocs, iterations=iterations)
    failure = FailureSpec(ranks=(failed_rank,), at_iteration=fail_at_iteration)
    checkpoint_options = {
        "checkpoint_interval": checkpoint_interval,
        "checkpoint_size_bytes": 64 * 1024,
    }

    def protocol_spec(name: str) -> ProtocolSpec:
        if name in ("coordinated", "native", "none"):
            options = checkpoint_options if name == "coordinated" else {}
            return ProtocolSpec(name=name, options=options)
        # Clustered protocols align their clusters with the physical
        # topology: logged inter-cluster traffic == oversubscribed traffic.
        return ProtocolSpec(
            name=name,
            options=checkpoint_options,
            clustering=ClusteringSpec(method="topology"),
        )

    specs: List[ScenarioSpec] = []
    for oversub in oversubscriptions:
        network = NetworkSpec(
            topology=TopologySpec(
                preset=topology_preset,
                params={
                    "ranks_per_node": ranks_per_node,
                    "oversubscription": float(oversub),
                },
            )
        )
        for name in protocols:
            for role, failures in (("failure-free", ()), ("failure", (failure,))):
                specs.append(
                    ScenarioSpec(
                        name=f"congestion:{name}:o{oversub:g}:{role}",
                        workload=workload,
                        protocol=protocol_spec(name),
                        network=network,
                        failures=failures,
                        tags={
                            "experiment": "congestion-recovery",
                            "analysis": "congestion-recovery",
                            "protocol": name,
                            "oversubscription": float(oversub),
                            "role": role,
                        },
                    )
                )
    return specs


# ----------------------------------------------------------------------- rows
def rows_from_resultset(resultset: ResultSet) -> List[Row]:
    """Pair the failure-free / failure runs back into :data:`CONGESTION` rows.

    Pairing keys include the workload shape, not just (protocol,
    oversubscription): a store holding several sweeps (e.g. two rank
    counts) must never subtract a failure-free makespan of one sweep from
    the failed makespan of another.
    """
    rows: List[Row] = []
    groups = resultset.group_by(
        "tags.protocol", "tags.oversubscription",
        "workload.kind", "workload.nprocs", "workload.iterations",
    )
    for key, pair in groups.items():
        protocol, oversub = key[0], key[1]
        by_role: Dict[str, RunResult] = {}
        for run in pair:
            role = str(run.field("tags.role"))
            if role in by_role:
                raise ConfigurationError(
                    f"congestion campaign for {protocol} @ {oversub} has several "
                    f"{role!r} runs for the same workload shape; query a store "
                    "holding one sweep (filter with --where) or re-run with "
                    "distinct workload parameters"
                )
            by_role[role] = run
        if set(by_role) != {"failure-free", "failure"}:
            raise ConfigurationError(
                f"congestion campaign for {protocol} @ {oversub} is missing "
                f"records (got roles: {sorted(by_role)})"
            )
        for role, run in sorted(by_role.items()):
            if not run.completed:
                # A truncated run (timeout/event-limit/deadlock with
                # raise_on_incomplete disabled) would understate recovery
                # time and silently flip the containment conclusion.
                raise ConfigurationError(
                    f"congestion run {protocol} @ oversubscription {oversub} "
                    f"({role}) did not complete: status {run.status!r}"
                )
        free, failed = by_role["failure-free"], by_role["failure"]
        rows.append(
            CONGESTION.row(
                protocol=str(protocol),
                oversubscription=float(oversub),
                failure_free_makespan_s=free.metric("sim.makespan"),
                failed_makespan_s=failed.metric("sim.makespan"),
                recovery_seconds=failed.metric("sim.makespan") - free.metric("sim.makespan"),
                ranks_rolled_back=failed.metric("sim.ranks_rolled_back"),
                replayed_messages=failed.metric("protocol.replayed_messages"),
                inter_cluster_wait_s=failed.metric(
                    f"links.tiers.{INTER_CLUSTER_TIER}.wait_s", 0.0
                ),
                inter_cluster_bytes=failed.metric(
                    f"links.tiers.{INTER_CLUSTER_TIER}.bytes", 0
                ),
            )
        )
    rows.sort(key=lambda row: (row.protocol, row.oversubscription))
    return rows


def rows_from_campaign(outcome) -> List[Row]:
    """Pair the failure-free / failure records of a campaign into rows."""
    return rows_from_resultset(ResultSet.from_campaign(outcome))


def run_congestion_experiment(
    nprocs: int = 16,
    iterations: int = 6,
    failed_rank: int = 5,
    fail_at_iteration: int = 4,
    checkpoint_interval: int = 2,
    oversubscriptions: Sequence[float] = (1.0, 2.0, 4.0, 8.0),
    protocols: Sequence[str] = ("hydee", "coordinated"),
    workload_kind: str = "stencil2d",
    topology_preset: str = "cluster-per-node",
    ranks_per_node: int = 4,
    workers: int = 1,
    store: Optional[ResultsStore] = None,
) -> List[Row]:
    """Run the congested-recovery grid and return the paired rows."""
    specs = congestion_specs(
        nprocs=nprocs,
        iterations=iterations,
        failed_rank=failed_rank,
        fail_at_iteration=fail_at_iteration,
        checkpoint_interval=checkpoint_interval,
        oversubscriptions=oversubscriptions,
        protocols=protocols,
        workload_kind=workload_kind,
        topology_preset=topology_preset,
        ranks_per_node=ranks_per_node,
    )
    outcome = run_campaign(specs, workers=workers, store=store)
    return rows_from_campaign(outcome)


# ------------------------------------------------------------------ reporting
def recovery_divergence(rows: Sequence[Row]) -> Dict[str, float]:
    """Per protocol: recovery time at max oversubscription / at minimum.

    The paper's containment claim predicts this growth factor to be much
    larger for coordinated checkpointing than for HydEE.
    """
    by_protocol: Dict[str, List[Row]] = {}
    for row in rows:
        by_protocol.setdefault(row.protocol, []).append(row)
    divergence: Dict[str, float] = {}
    for protocol, group in by_protocol.items():
        group = sorted(group, key=lambda r: r.oversubscription)
        baseline = group[0].recovery_seconds
        worst = group[-1].recovery_seconds
        divergence[protocol] = worst / baseline if baseline > 0 else float("inf")
    return divergence


def render_congestion(rows: Sequence[Row]) -> str:
    return CONGESTION.render_text(rows)
