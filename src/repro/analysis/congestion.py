"""Congested-recovery experiment: recovery time vs inter-cluster bandwidth.

The paper's containment argument is about *where* recovery traffic flows:
under HydEE only the failed cluster's ranks replay, and the replayed
messages are served from sender-based logs across inter-cluster links,
while coordinated checkpointing re-executes *every* rank and pushes the
whole communication volume through the fabric again.  On a flat network the
two are indistinguishable time-wise; on a hierarchical topology with an
oversubscribed inter-cluster fabric they diverge -- which is exactly what
this harness quantifies.

For each inter-cluster oversubscription factor and each protocol the
harness runs a failure-free scenario and an identical scenario with one
injected failure; *recovery seconds* is the makespan difference between the
two (the price of the failure, congestion included).  Protocol clusters are
aligned with the physical topology (``ClusteringSpec(method="topology")``)
so HydEE's logged traffic is exactly the traffic crossing the
oversubscribed links.

Scenarios run through the campaign runner under the registered
``congestion-recovery`` analysis job, which records a slim payload
(makespans, rollback counts, per-tier link traffic) -- so sweeps cache,
fan out over workers, and stay byte-identical between serial and parallel
runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.analysis.reporting import format_dict_table
from repro.campaign.runner import run_campaign
from repro.campaign.store import ResultsStore
from repro.errors import ConfigurationError
from repro.scenarios.build import build
from repro.scenarios.spec import (
    ClusteringSpec,
    FailureSpec,
    NetworkSpec,
    ProtocolSpec,
    ScenarioSpec,
    TopologySpec,
    WorkloadSpec,
)

#: tier key reported by the contention model for the oversubscribed fabric.
INTER_CLUSTER_TIER = "inter-cluster"


# ----------------------------------------------------------------------- job
def congestion_job(spec: ScenarioSpec) -> Tuple[Dict[str, Any], Any]:
    """Campaign job: simulate and keep only the congestion-relevant metrics."""
    from repro.campaign.jobs import jsonify

    result = build(spec).run()
    extra = result.stats.extra
    tier_stats = extra.get("tier_stats", {})
    payload = {
        "status": result.status,
        "makespan": result.makespan,
        "recovery_time": result.stats.recovery_time,
        "ranks_rolled_back": result.stats.ranks_rolled_back,
        "replayed_messages": extra.get("pstats_replayed_messages", 0),
        "contention_wait_s": extra.get("contention_wait_s", 0.0),
        "inter_cluster": tier_stats.get(INTER_CLUSTER_TIER, {}),
        "topology": extra.get("topology", {}),
    }
    return jsonify(payload), result


# ---------------------------------------------------------------------- specs
def congestion_specs(
    nprocs: int = 16,
    iterations: int = 6,
    failed_rank: int = 5,
    fail_at_iteration: int = 4,
    checkpoint_interval: int = 2,
    oversubscriptions: Sequence[float] = (1.0, 2.0, 4.0, 8.0),
    protocols: Sequence[str] = ("hydee", "coordinated"),
    workload_kind: str = "stencil2d",
    topology_preset: str = "cluster-per-node",
    ranks_per_node: int = 4,
) -> List[ScenarioSpec]:
    """Declare the (oversubscription x protocol x {free, failure}) grid."""
    workload = WorkloadSpec(kind=workload_kind, nprocs=nprocs, iterations=iterations)
    failure = FailureSpec(ranks=(failed_rank,), at_iteration=fail_at_iteration)
    checkpoint_options = {
        "checkpoint_interval": checkpoint_interval,
        "checkpoint_size_bytes": 64 * 1024,
    }

    def protocol_spec(name: str) -> ProtocolSpec:
        if name in ("coordinated", "native", "none"):
            options = checkpoint_options if name == "coordinated" else {}
            return ProtocolSpec(name=name, options=options)
        # Clustered protocols align their clusters with the physical
        # topology: logged inter-cluster traffic == oversubscribed traffic.
        return ProtocolSpec(
            name=name,
            options=checkpoint_options,
            clustering=ClusteringSpec(method="topology"),
        )

    specs: List[ScenarioSpec] = []
    for oversub in oversubscriptions:
        network = NetworkSpec(
            topology=TopologySpec(
                preset=topology_preset,
                params={
                    "ranks_per_node": ranks_per_node,
                    "oversubscription": float(oversub),
                },
            )
        )
        for name in protocols:
            for role, failures in (("failure-free", ()), ("failure", (failure,))):
                specs.append(
                    ScenarioSpec(
                        name=f"congestion:{name}:o{oversub:g}:{role}",
                        workload=workload,
                        protocol=protocol_spec(name),
                        network=network,
                        failures=failures,
                        tags={
                            "experiment": "congestion-recovery",
                            "analysis": "congestion-recovery",
                            "protocol": name,
                            "oversubscription": float(oversub),
                            "role": role,
                        },
                    )
                )
    return specs


# ----------------------------------------------------------------------- rows
@dataclass
class CongestionRow:
    """Recovery cost of one protocol at one oversubscription factor."""

    protocol: str
    oversubscription: float
    failure_free_makespan_s: float
    failed_makespan_s: float
    recovery_seconds: float
    ranks_rolled_back: int
    replayed_messages: int
    inter_cluster_wait_s: float
    inter_cluster_bytes: int

    def as_dict(self) -> Dict[str, Any]:
        return {
            "protocol": self.protocol,
            "oversub": self.oversubscription,
            "free_ms": round(self.failure_free_makespan_s * 1e3, 3),
            "failed_ms": round(self.failed_makespan_s * 1e3, 3),
            "recovery_ms": round(self.recovery_seconds * 1e3, 3),
            "rolled_back": self.ranks_rolled_back,
            "replayed": self.replayed_messages,
            "inter_wait_ms": round(self.inter_cluster_wait_s * 1e3, 3),
            "inter_MB": round(self.inter_cluster_bytes / 1e6, 2),
        }


def rows_from_campaign(outcome) -> List[CongestionRow]:
    """Pair the failure-free / failure records back into rows."""
    by_key: Dict[Tuple[str, float], Dict[str, Dict[str, Any]]] = {}
    for spec, record in zip(outcome.specs, outcome.records):
        key = (spec.tags["protocol"], float(spec.tags["oversubscription"]))
        by_key.setdefault(key, {})[spec.tags["role"]] = record["result"]

    rows: List[CongestionRow] = []
    for (protocol, oversub), results in by_key.items():
        if set(results) != {"failure-free", "failure"}:
            raise ConfigurationError(
                f"congestion campaign for {protocol} @ {oversub} is missing "
                f"records (got roles: {sorted(results)})"
            )
        free, failed = results["failure-free"], results["failure"]
        for role, result in (("failure-free", free), ("failure", failed)):
            if result.get("status") != "completed":
                # A truncated run (timeout/event-limit/deadlock with
                # raise_on_incomplete disabled) would understate recovery
                # time and silently flip the containment conclusion.
                raise ConfigurationError(
                    f"congestion run {protocol} @ oversubscription {oversub} "
                    f"({role}) did not complete: status "
                    f"{result.get('status')!r}"
                )
        inter = failed.get("inter_cluster", {}) or {}
        rows.append(
            CongestionRow(
                protocol=protocol,
                oversubscription=oversub,
                failure_free_makespan_s=free["makespan"],
                failed_makespan_s=failed["makespan"],
                recovery_seconds=failed["makespan"] - free["makespan"],
                ranks_rolled_back=failed["ranks_rolled_back"],
                replayed_messages=failed["replayed_messages"],
                inter_cluster_wait_s=inter.get("wait_s", 0.0),
                inter_cluster_bytes=inter.get("bytes", 0),
            )
        )
    rows.sort(key=lambda row: (row.protocol, row.oversubscription))
    return rows


def run_congestion_experiment(
    nprocs: int = 16,
    iterations: int = 6,
    failed_rank: int = 5,
    fail_at_iteration: int = 4,
    checkpoint_interval: int = 2,
    oversubscriptions: Sequence[float] = (1.0, 2.0, 4.0, 8.0),
    protocols: Sequence[str] = ("hydee", "coordinated"),
    workload_kind: str = "stencil2d",
    topology_preset: str = "cluster-per-node",
    ranks_per_node: int = 4,
    workers: int = 1,
    store: Optional[ResultsStore] = None,
) -> List[CongestionRow]:
    """Run the congested-recovery grid and return the paired rows."""
    specs = congestion_specs(
        nprocs=nprocs,
        iterations=iterations,
        failed_rank=failed_rank,
        fail_at_iteration=fail_at_iteration,
        checkpoint_interval=checkpoint_interval,
        oversubscriptions=oversubscriptions,
        protocols=protocols,
        workload_kind=workload_kind,
        topology_preset=topology_preset,
        ranks_per_node=ranks_per_node,
    )
    outcome = run_campaign(specs, workers=workers, store=store)
    return rows_from_campaign(outcome)


# ------------------------------------------------------------------ reporting
def recovery_divergence(rows: Sequence[CongestionRow]) -> Dict[str, float]:
    """Per protocol: recovery time at max oversubscription / at minimum.

    The paper's containment claim predicts this growth factor to be much
    larger for coordinated checkpointing than for HydEE.
    """
    by_protocol: Dict[str, List[CongestionRow]] = {}
    for row in rows:
        by_protocol.setdefault(row.protocol, []).append(row)
    divergence: Dict[str, float] = {}
    for protocol, group in by_protocol.items():
        group = sorted(group, key=lambda r: r.oversubscription)
        baseline = group[0].recovery_seconds
        worst = group[-1].recovery_seconds
        divergence[protocol] = worst / baseline if baseline > 0 else float("inf")
    return divergence


def render_congestion(rows: Sequence[CongestionRow]) -> str:
    return format_dict_table(
        [row.as_dict() for row in rows],
        columns=[
            "protocol",
            "oversub",
            "free_ms",
            "failed_ms",
            "recovery_ms",
            "rolled_back",
            "replayed",
            "inter_wait_ms",
            "inter_MB",
        ],
        title="Congested recovery: one failure, inter-cluster oversubscription sweep",
    )
