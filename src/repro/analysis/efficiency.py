"""Efficiency-vs-MTBF experiment: Monte Carlo fault campaigns, per protocol.

The paper's containment argument is ultimately an *efficiency* claim: when
failures keep striking, a protocol that rolls back only the failed
process's cluster (HydEE) wastes less already-done work than one that rolls
back every process (coordinated checkpointing), while full message logging
bounds the rollback to the failed processes alone.  One hand-written
failure does not measure that -- the claim is about the expectation over
many failure scenarios.

This harness sweeps the per-rank MTBF of a seeded exponential
:class:`~repro.faults.spec.FaultModelSpec` and, for each (protocol, MTBF)
point, fans ``replicas`` Monte Carlo replicas through the campaign runner
(:mod:`repro.faults.montecarlo`).  Reported per point:

* *wasted work* -- mean re-executed compute seconds: the replicas' mean
  ``sim.total_compute_time`` minus the protocol's own failure-free
  baseline (containment in its purest form);
* *efficiency* -- failure-free makespan / mean failed makespan;
* mean recovery time, failures injected, ranks rolled back, and the
  completed-replica count (replicas whose drawn trace trips a protocol
  corner case are reported, not silently dropped).

The MTBF axis is expressed in *multiples of the reference makespan* (a
protocol-free run of the same workload), so the sweep transfers across
workload sizes; the same absolute ``mtbf_s``/``horizon_s`` values go into
every protocol's fault model, which makes replica ``i`` draw the *same
failure trace* for every protocol -- a paired comparison.

Rows follow the registered :data:`EFFICIENCY` schema and can be rebuilt
from any store with ``repro-campaign query STORE --table efficiency``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.campaign.runner import run_campaign
from repro.campaign.store import ResultsStore
from repro.errors import ConfigurationError
from repro.faults.montecarlo import aggregate_metrics, run_montecarlo
from repro.faults.spec import FaultModelSpec
from repro.results.query import ResultSet
from repro.results.run import RunResult
from repro.results.tables import Column, Row, TableSchema, register_table
from repro.scenarios.spec import ClusteringSpec, ProtocolSpec, ScenarioSpec, WorkloadSpec

EXPERIMENT_TAG = "efficiency-mtbf"

#: protocols with a cluster structure (get the block clustering).
_CLUSTERED_PROTOCOLS = ("hydee", "hydee-log-all", "hybrid-event-logging")


def _rows_from_store(resultset: ResultSet) -> List[Row]:
    return rows_from_resultset(resultset)


#: Monte Carlo efficiency of one protocol at one MTBF point.
EFFICIENCY = register_table(
    TableSchema(
        "efficiency",
        columns=(
            Column("protocol", "str"),
            Column("nprocs", "int"),
            Column("mtbf_s", "float", units="s", scale=1e3, format=".3f",
                   header="mtbf_ms"),
            Column("replicas", "int"),
            Column("completed_replicas", "int", header="ok"),
            Column("free_makespan_s", "float", units="s", scale=1e3,
                   format=".3f", header="free_ms"),
            Column("failed_makespan_s", "float", units="s", scale=1e3,
                   format=".3f", header="failed_ms"),
            Column("failed_makespan_ci95_s", "float", units="s", scale=1e3,
                   format=".3f", header="ci95_ms"),
            Column("efficiency", "float", format=".3f"),
            Column("wasted_work_s", "float", units="s", scale=1e6,
                   format=".2f", header="wasted_us"),
            Column("recovery_s", "float", units="s", scale=1e3,
                   format=".3f", header="recovery_ms"),
            Column("failures_mean", "float", format=".2f", header="failures"),
            Column("ranks_rolled_back_mean", "float", format=".2f",
                   header="rolled_back"),
        ),
        title="Efficiency vs MTBF: Monte Carlo fault campaigns "
              "(wasted work and recovery, mean over replicas)",
    ),
    builder=_rows_from_store,
)


# ---------------------------------------------------------------------- specs
def _protocol_spec(name: str, checkpoint_interval: int, num_clusters: int) -> ProtocolSpec:
    if name in ("none", "native"):
        return ProtocolSpec(name=name)
    options = {
        "checkpoint_interval": checkpoint_interval,
        "checkpoint_size_bytes": 64 * 1024,
    }
    if name in _CLUSTERED_PROTOCOLS:
        return ProtocolSpec(
            name=name,
            options=options,
            clustering=ClusteringSpec(method="block", num_clusters=num_clusters),
        )
    return ProtocolSpec(name=name, options=options)


def reference_spec(
    nprocs: int = 16,
    iterations: int = 6,
    workload_kind: str = "stencil2d",
) -> ScenarioSpec:
    """The protocol-free run whose makespan calibrates the MTBF axis."""
    return ScenarioSpec(
        name=f"efficiency:reference:np{nprocs}",
        workload=WorkloadSpec(kind=workload_kind, nprocs=nprocs, iterations=iterations),
        protocol=ProtocolSpec(name="none"),
        tags={"experiment": EXPERIMENT_TAG, "role": "reference",
              "analysis": "montecarlo-replica"},
    )


def baseline_spec(
    protocol: str,
    nprocs: int = 16,
    iterations: int = 6,
    workload_kind: str = "stencil2d",
    checkpoint_interval: int = 1,
    num_clusters: int = 4,
) -> ScenarioSpec:
    """One protocol's failure-free run (its own wasted-work zero point)."""
    return ScenarioSpec(
        name=f"efficiency:{protocol}:np{nprocs}:baseline",
        workload=WorkloadSpec(kind=workload_kind, nprocs=nprocs, iterations=iterations),
        protocol=_protocol_spec(protocol, checkpoint_interval, num_clusters),
        tags={"experiment": EXPERIMENT_TAG, "role": "baseline",
              "protocol": protocol, "analysis": "montecarlo-replica"},
    )


def montecarlo_base_spec(
    protocol: str,
    mtbf_s: float,
    horizon_s: float,
    nprocs: int = 16,
    iterations: int = 6,
    workload_kind: str = "stencil2d",
    checkpoint_interval: int = 1,
    num_clusters: int = 4,
    seed: int = 0,
) -> ScenarioSpec:
    """The base scenario one Monte Carlo point expands into replicas."""
    return ScenarioSpec(
        name=f"efficiency:{protocol}:np{nprocs}:mtbf{mtbf_s:g}",
        workload=WorkloadSpec(kind=workload_kind, nprocs=nprocs, iterations=iterations),
        protocol=_protocol_spec(protocol, checkpoint_interval, num_clusters),
        fault_model=FaultModelSpec(
            distribution="exponential",
            params={"mtbf_s": mtbf_s},
            scope="rank",
            horizon_s=horizon_s,
            seed=seed,
        ),
        # A drawn trace can end a replica in a deadlock instead of a clean
        # finish; record the status, do not tear the campaign down.
        config={"raise_on_incomplete": False},
        tags={"experiment": EXPERIMENT_TAG, "role": "replica",
              "protocol": protocol, "mtbf_s": mtbf_s},
    )


# ----------------------------------------------------------------------- rows
def rows_from_resultset(resultset: ResultSet) -> List[Row]:
    """Aggregate the replica/baseline records of a store into table rows."""
    resultset = resultset.where(**{"tags.experiment": EXPERIMENT_TAG})
    baselines: Dict[Tuple[str, int], RunResult] = {}
    for run in resultset.where(**{"tags.role": "baseline"}):
        key = (str(run.field("tags.protocol")), int(run.field("nprocs")))
        if key in baselines:
            raise ConfigurationError(
                f"efficiency campaign has several baselines for {key}; query "
                "a store holding one sweep (filter with --where)"
            )
        if not run.completed:
            raise ConfigurationError(
                f"efficiency baseline for {key} did not complete: "
                f"status {run.status!r}"
            )
        baselines[key] = run

    rows: List[Row] = []
    groups = resultset.where(**{"tags.role": "replica"}).group_by(
        "tags.protocol", "workload.nprocs", "tags.mtbf_s"
    )
    for (protocol, nprocs, mtbf_s), replicas in groups.items():
        baseline = baselines.get((str(protocol), int(nprocs)))
        if baseline is None:
            raise ConfigurationError(
                f"efficiency campaign for {protocol} @ np={nprocs} has replica "
                "records but no failure-free baseline record"
            )
        campaigns = {run.field("tags.mc_base") for run in replicas}
        if len(campaigns) > 1:
            # Two sweeps (e.g. different --seed) share (protocol, mtbf)
            # coordinates; pooling their replicas would report statistics no
            # single campaign produced.
            raise ConfigurationError(
                f"efficiency point {protocol} @ mtbf={mtbf_s:g}s mixes replicas "
                f"of {len(campaigns)} different Monte Carlo campaigns; query a "
                "store holding one sweep (filter with --where)"
            )
        agg = aggregate_metrics(list(replicas))
        completed = agg.get("faults.completed_replicas")
        if not completed:
            raise ConfigurationError(
                f"efficiency point {protocol} @ mtbf={mtbf_s:g}s has no "
                "completed replicas; nothing to aggregate"
            )
        free_makespan = baseline.metric("sim.makespan")
        free_compute = baseline.metric("sim.total_compute_time")
        mean_makespan = agg.get("faults.sim.makespan.mean")
        rows.append(
            EFFICIENCY.row(
                protocol=str(protocol),
                nprocs=int(nprocs),
                mtbf_s=float(mtbf_s),
                replicas=agg.get("faults.replicas"),
                completed_replicas=completed,
                free_makespan_s=free_makespan,
                failed_makespan_s=mean_makespan,
                failed_makespan_ci95_s=agg.get("faults.sim.makespan.ci95"),
                efficiency=free_makespan / mean_makespan,
                wasted_work_s=agg.get("faults.sim.total_compute_time.mean")
                - free_compute,
                recovery_s=agg.get("faults.sim.recovery_time.mean"),
                failures_mean=agg.get("faults.sim.failures_injected.mean"),
                ranks_rolled_back_mean=agg.get("faults.sim.ranks_rolled_back.mean"),
            )
        )
    rows.sort(key=lambda row: (row.protocol, row.nprocs, row.mtbf_s))
    return rows


# ----------------------------------------------------------------- experiment
def run_efficiency_experiment(
    nprocs: int = 16,
    iterations: int = 6,
    workload_kind: str = "stencil2d",
    protocols: Sequence[str] = ("hydee", "coordinated", "message-logging"),
    mtbf_factors: Sequence[float] = (4.0, 8.0, 16.0),
    horizon_factor: float = 2.0,
    replicas: int = 20,
    checkpoint_interval: int = 1,
    num_clusters: int = 4,
    seed: int = 0,
    workers: int = 1,
    store: Optional[ResultsStore] = None,
) -> List[Row]:
    """Run the full (protocol x MTBF x replica) grid and return the rows.

    ``mtbf_factors`` are multiples of the reference makespan (a
    protocol-free run of the workload); the failure horizon is
    ``horizon_factor`` times that makespan.  Everything runs through the
    campaign runner: replicas fan out over ``workers`` and cache in
    ``store`` individually, so re-running an enlarged sweep only executes
    the new points.
    """
    if not mtbf_factors:
        raise ConfigurationError("efficiency experiment needs at least one MTBF factor")
    if store is None:
        store = ResultsStore()  # in-memory: rows are aggregated from records
    reference = reference_spec(nprocs, iterations, workload_kind)
    ref_outcome = run_campaign([reference], workers=1, store=store)
    ref_run = RunResult.from_record(ref_outcome.records[0])
    ref_makespan = ref_run.metric("sim.makespan")
    if not ref_run.completed or not ref_makespan:
        raise ConfigurationError(
            f"efficiency reference run did not complete (status "
            f"{ref_run.status!r}); cannot calibrate the MTBF axis"
        )
    horizon_s = horizon_factor * ref_makespan

    baselines = [
        baseline_spec(protocol, nprocs, iterations, workload_kind,
                      checkpoint_interval, num_clusters)
        for protocol in protocols
    ]
    run_campaign(baselines, workers=workers, store=store)

    for protocol in protocols:
        for factor in mtbf_factors:
            base = montecarlo_base_spec(
                protocol, float(factor) * ref_makespan, horizon_s,
                nprocs, iterations, workload_kind,
                checkpoint_interval, num_clusters, seed,
            )
            run_montecarlo(base, replicas=replicas, workers=workers, store=store)
    return rows_from_resultset(ResultSet.from_store(store))


# ------------------------------------------------------------------ reporting
def wasted_work_by_protocol(rows: Sequence[Row]) -> Dict[float, Dict[str, float]]:
    """``{mtbf_s: {protocol: wasted_work_s}}`` for ordering checks."""
    out: Dict[float, Dict[str, float]] = {}
    for row in rows:
        out.setdefault(row.mtbf_s, {})[row.protocol] = row.wasted_work_s
    return out


def containment_holds(rows: Sequence[Row]) -> bool:
    """The paper's qualitative ordering: HydEE wastes less than coordinated
    at every MTBF point (where both protocols are present)."""
    for point in wasted_work_by_protocol(rows).values():
        if "hydee" in point and "coordinated" in point:
            if not point["hydee"] < point["coordinated"]:
                return False
    return True


def render_efficiency(rows: Sequence[Row]) -> str:
    return EFFICIENCY.render_text(rows)
