"""Figure 6 harness: NAS failure-free overhead.

For each NAS kernel the harness runs the same workload under three
configurations and reports the execution time normalized to native MPICH2:

* ``native``           -- no fault-tolerance protocol,
* ``message_logging``  -- HydEE's mechanisms with *every* message payload
  logged (the "Message Logging" bars of Figure 6),
* ``hydee``            -- HydEE with the process clustering computed by the
  clustering tool (partial logging).

The paper reports a worst-case overhead of ~1.25 % for HydEE and slightly
more when everything is logged; the shape to reproduce is "both are small,
HydEE is consistently at or below full logging".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.analysis.reporting import format_table
from repro.clustering.comm_graph import CommunicationGraph
from repro.clustering.partitioner import partition
from repro.clustering.presets import TABLE1_CLUSTER_COUNTS
from repro.core.config import HydEEConfig
from repro.core.protocol import HydEEProtocol
from repro.simulator.network import MyrinetMXModel, NetworkModel
from repro.simulator.simulation import Simulation, SimulationConfig
from repro.workloads.nas import NAS_BENCHMARKS


@dataclass
class OverheadRow:
    """Normalized execution times of one benchmark (one group of Figure 6 bars)."""

    benchmark: str
    nprocs: int
    iterations: int
    makespans_s: Dict[str, float] = field(default_factory=dict)
    logged_fraction: Dict[str, float] = field(default_factory=dict)

    def normalized(self, config: str) -> float:
        native = self.makespans_s.get("native", 0.0)
        if native <= 0:
            return 0.0
        return self.makespans_s[config] / native

    def as_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "benchmark": self.benchmark.upper(),
            "nprocs": self.nprocs,
            "iterations": self.iterations,
        }
        for name in self.makespans_s:
            out[f"{name}_normalized"] = round(self.normalized(name), 5)
            out[f"{name}_makespan_s"] = self.makespans_s[name]
        for name, fraction in self.logged_fraction.items():
            out[f"{name}_logged_pct"] = round(100.0 * fraction, 2)
        return out


def _cluster_for(benchmark: str, nprocs: int, iterations: int) -> List[List[int]]:
    app = NAS_BENCHMARKS[benchmark](nprocs=nprocs, iterations=iterations)
    graph = CommunicationGraph.from_matrix(app.communication_matrix())
    preset = TABLE1_CLUSTER_COUNTS[benchmark]
    k = min(preset, nprocs)
    return partition(graph, k, method="auto", balance_tolerance=1.1).clusters


def measure_overhead(
    benchmark: str,
    nprocs: int = 64,
    iterations: int = 2,
    network: Optional[NetworkModel] = None,
    clusters: Optional[Sequence[Sequence[int]]] = None,
    include_hybrid_event_logging: bool = False,
    message_scale: float = 1.0,
) -> OverheadRow:
    """Measure the Figure 6 configurations for one benchmark."""
    name = benchmark.lower()
    network = network or MyrinetMXModel()
    clusters = (
        [list(c) for c in clusters]
        if clusters is not None
        else _cluster_for(name, nprocs, iterations)
    )

    def _run(protocol) -> Simulation:
        app = NAS_BENCHMARKS[name](
            nprocs=nprocs, iterations=iterations, message_scale=message_scale
        )
        sim = Simulation(
            app,
            nprocs=nprocs,
            protocol=protocol,
            config=SimulationConfig(network=network, record_trace_events=False),
        )
        sim.run()
        return sim

    row = OverheadRow(benchmark=name, nprocs=nprocs, iterations=iterations)

    native = _run(None)
    row.makespans_s["native"] = native.stats.makespan
    row.logged_fraction["native"] = 0.0

    log_all = _run(HydEEProtocol(HydEEConfig(log_all_messages=True)))
    row.makespans_s["message_logging"] = log_all.stats.makespan
    row.logged_fraction["message_logging"] = log_all.stats.logged_fraction_bytes

    hydee = _run(HydEEProtocol(HydEEConfig(clusters=clusters)))
    row.makespans_s["hydee"] = hydee.stats.makespan
    row.logged_fraction["hydee"] = hydee.stats.logged_fraction_bytes

    if include_hybrid_event_logging:
        from repro.ftprotocols.hybrid_event_logging import HybridEventLoggingProtocol

        hybrid = _run(HybridEventLoggingProtocol(HydEEConfig(clusters=clusters)))
        row.makespans_s["hybrid_event_logging"] = hybrid.stats.makespan
        row.logged_fraction["hybrid_event_logging"] = hybrid.stats.logged_fraction_bytes

    return row


def build_figure6(
    benchmarks: Optional[Sequence[str]] = None,
    nprocs: int = 64,
    iterations: int = 2,
    network: Optional[NetworkModel] = None,
    include_hybrid_event_logging: bool = False,
) -> List[OverheadRow]:
    """Measure every Figure 6 group of bars."""
    benchmarks = list(benchmarks) if benchmarks is not None else list(NAS_BENCHMARKS)
    return [
        measure_overhead(
            name,
            nprocs=nprocs,
            iterations=iterations,
            network=network,
            include_hybrid_event_logging=include_hybrid_event_logging,
        )
        for name in benchmarks
    ]


def render_figure6(rows: Sequence[OverheadRow]) -> str:
    configs = [c for c in rows[0].makespans_s] if rows else []
    headers = ["bench", "nprocs"] + [f"{c} (norm.)" for c in configs] + ["hydee logged %"]
    data = []
    for row in rows:
        data.append(
            [row.benchmark.upper(), row.nprocs]
            + [round(row.normalized(c), 4) for c in configs]
            + [round(100.0 * row.logged_fraction.get("hydee", 0.0), 1)]
        )
    return format_table(
        headers,
        data,
        title="Figure 6 -- NAS failure-free execution time normalized to native MPICH2",
    )
