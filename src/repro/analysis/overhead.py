"""Figure 6 harness: NAS failure-free overhead.

For each NAS kernel the harness runs the same workload under three
configurations and reports the execution time normalized to native MPICH2:

* ``native``           -- no fault-tolerance protocol,
* ``message_logging``  -- HydEE's mechanisms with *every* message payload
  logged (the "Message Logging" bars of Figure 6),
* ``hydee``            -- HydEE with the process clustering computed by the
  clustering tool (partial logging).

The paper reports a worst-case overhead of ~1.25 % for HydEE and slightly
more when everything is logged; the shape to reproduce is "both are small,
HydEE is consistently at or below full logging".

Every run is declared as a :class:`~repro.scenarios.spec.ScenarioSpec` and
executed through the campaign runner, so a whole Figure 6 sweep can fan out
over worker processes and reuse cached records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.analysis.reporting import format_table
from repro.campaign.runner import CampaignResult, run_campaign
from repro.campaign.store import ResultsStore
from repro.scenarios.build import to_network_spec
from repro.scenarios.spec import (
    ClusteringSpec,
    ProtocolSpec,
    ScenarioSpec,
    WorkloadSpec,
)
from repro.simulator.network import NetworkModel
from repro.workloads.nas import NAS_BENCHMARKS


@dataclass
class OverheadRow:
    """Normalized execution times of one benchmark (one group of Figure 6 bars)."""

    benchmark: str
    nprocs: int
    iterations: int
    makespans_s: Dict[str, float] = field(default_factory=dict)
    logged_fraction: Dict[str, float] = field(default_factory=dict)

    def normalized(self, config: str) -> float:
        native = self.makespans_s.get("native", 0.0)
        if native <= 0:
            return 0.0
        return self.makespans_s[config] / native

    def as_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "benchmark": self.benchmark.upper(),
            "nprocs": self.nprocs,
            "iterations": self.iterations,
        }
        for name in self.makespans_s:
            out[f"{name}_normalized"] = round(self.normalized(name), 5)
            out[f"{name}_makespan_s"] = self.makespans_s[name]
        for name, fraction in self.logged_fraction.items():
            out[f"{name}_logged_pct"] = round(100.0 * fraction, 2)
        return out


def overhead_specs(
    benchmark: str,
    nprocs: int = 64,
    iterations: int = 2,
    network: Optional[NetworkModel] = None,
    clusters: Optional[Sequence[Sequence[int]]] = None,
    include_hybrid_event_logging: bool = False,
    message_scale: float = 1.0,
) -> List[ScenarioSpec]:
    """Declare the Figure 6 configurations for one benchmark as specs."""
    name = benchmark.lower()
    network_spec = to_network_spec(network)
    params = {"message_scale": message_scale} if message_scale != 1.0 else {}
    workload = WorkloadSpec(kind=name, nprocs=nprocs, iterations=iterations, params=params)
    if clusters is not None:
        clustering = ClusteringSpec(
            method="explicit", clusters=tuple(tuple(c) for c in clusters)
        )
    else:
        # The paper's Table I cluster count, partitioned from the kernel's
        # analytic per-iteration communication matrix.
        clustering = ClusteringSpec(method="preset")

    configs = {
        "native": ProtocolSpec(name="native"),
        "message_logging": ProtocolSpec(name="hydee-log-all"),
        "hydee": ProtocolSpec(name="hydee", clustering=clustering),
    }
    if include_hybrid_event_logging:
        configs["hybrid_event_logging"] = ProtocolSpec(
            name="hybrid-event-logging", clustering=clustering
        )
    return [
        ScenarioSpec(
            name=f"figure6:{name}:{config}",
            workload=workload,
            protocol=protocol,
            network=network_spec,
            tags={"experiment": "figure6", "benchmark": name, "config": config},
        )
        for config, protocol in configs.items()
    ]


def rows_from_campaign(outcome: CampaignResult) -> List[OverheadRow]:
    """Group Figure 6 campaign records back into per-benchmark rows."""
    rows: Dict[str, OverheadRow] = {}
    for spec, record in zip(outcome.specs, outcome.records):
        benchmark = spec.tags["benchmark"]
        config = spec.tags["config"]
        row = rows.get(benchmark)
        if row is None:
            row = rows[benchmark] = OverheadRow(
                benchmark=benchmark,
                nprocs=spec.workload.nprocs,
                iterations=spec.workload.iterations,
            )
        result = record["result"]
        row.makespans_s[config] = result["makespan"]
        row.logged_fraction[config] = result["stats"]["logged_fraction_bytes"]
    return list(rows.values())


def measure_overhead(
    benchmark: str,
    nprocs: int = 64,
    iterations: int = 2,
    network: Optional[NetworkModel] = None,
    clusters: Optional[Sequence[Sequence[int]]] = None,
    include_hybrid_event_logging: bool = False,
    message_scale: float = 1.0,
    workers: int = 1,
    store: Optional[ResultsStore] = None,
) -> OverheadRow:
    """Measure the Figure 6 configurations for one benchmark."""
    specs = overhead_specs(
        benchmark,
        nprocs=nprocs,
        iterations=iterations,
        network=network,
        clusters=clusters,
        include_hybrid_event_logging=include_hybrid_event_logging,
        message_scale=message_scale,
    )
    outcome = run_campaign(specs, workers=workers, store=store)
    return rows_from_campaign(outcome)[0]


def build_figure6(
    benchmarks: Optional[Sequence[str]] = None,
    nprocs: int = 64,
    iterations: int = 2,
    network: Optional[NetworkModel] = None,
    include_hybrid_event_logging: bool = False,
    workers: int = 1,
    store: Optional[ResultsStore] = None,
) -> List[OverheadRow]:
    """Measure every Figure 6 group of bars (one campaign over the grid)."""
    benchmarks = list(benchmarks) if benchmarks is not None else list(NAS_BENCHMARKS)
    specs: List[ScenarioSpec] = []
    for name in benchmarks:
        specs.extend(
            overhead_specs(
                name,
                nprocs=nprocs,
                iterations=iterations,
                network=network,
                include_hybrid_event_logging=include_hybrid_event_logging,
            )
        )
    outcome = run_campaign(specs, workers=workers, store=store)
    rows = rows_from_campaign(outcome)
    order = {name: idx for idx, name in enumerate(benchmarks)}
    rows.sort(key=lambda row: order[row.benchmark])
    return rows


def render_figure6(rows: Sequence[OverheadRow]) -> str:
    configs = [c for c in rows[0].makespans_s] if rows else []
    headers = ["bench", "nprocs"] + [f"{c} (norm.)" for c in configs] + ["hydee logged %"]
    data = []
    for row in rows:
        data.append(
            [row.benchmark.upper(), row.nprocs]
            + [round(row.normalized(c), 4) for c in configs]
            + [round(100.0 * row.logged_fraction.get("hydee", 0.0), 1)]
        )
    return format_table(
        headers,
        data,
        title="Figure 6 -- NAS failure-free execution time normalized to native MPICH2",
    )
