"""Figure 6 harness: NAS failure-free overhead.

For each NAS kernel the harness runs the same workload under three
configurations and reports the execution time normalized to native MPICH2:

* ``native``           -- no fault-tolerance protocol,
* ``message_logging``  -- HydEE's mechanisms with *every* message payload
  logged (the "Message Logging" bars of Figure 6),
* ``hydee``            -- HydEE with the process clustering computed by the
  clustering tool (partial logging).

The paper reports a worst-case overhead of ~1.25 % for HydEE and slightly
more when everything is logged; the shape to reproduce is "both are small,
HydEE is consistently at or below full logging".

Every run is declared as a :class:`~repro.scenarios.spec.ScenarioSpec` and
executed through the campaign runner.  The result is a flat table (one
:data:`FIGURE6` row per benchmark x configuration) whose ``normalized``
column is derived through :meth:`ResultSet.overhead_vs` against the native
baseline -- the same query that ``repro-campaign query --table figure6``
runs over a cached store.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.campaign.runner import CampaignResult, run_campaign
from repro.campaign.store import ResultsStore
from repro.results.query import ResultSet
from repro.results.tables import Column, Row, TableSchema, pivot_rows, register_table
from repro.scenarios.build import to_network_spec
from repro.scenarios.spec import (
    ClusteringSpec,
    ProtocolSpec,
    ScenarioSpec,
    WorkloadSpec,
)
from repro.simulator.network import NetworkModel
from repro.workloads.nas import NAS_BENCHMARKS


def _rows_from_store(resultset: ResultSet) -> List[Row]:
    runs = resultset.where(**{"tags.experiment": "figure6"})
    return [
        FIGURE6.row(
            benchmark=run.field("tags.benchmark"),
            nprocs=run.field("workload.nprocs"),
            iterations=run.field("workload.iterations"),
            config=run.field("tags.config"),
            makespan_s=run.metric("sim.makespan"),
            normalized=ratio,
            logged_fraction=run.metric("sim.logged_fraction_bytes"),
        )
        for run, ratio in runs.overhead_vs(
            metric="sim.makespan",
            # The baseline index carries the workload shape so a store
            # holding figure6 sweeps at several sizes normalises each run
            # against the native run of *its own* sweep.
            index=("tags.benchmark", "workload.nprocs", "workload.iterations"),
            **{"tags.config": "native"},
        )
    ]


#: One Figure 6 bar: a benchmark under one protocol configuration.
FIGURE6 = register_table(
    TableSchema(
        "figure6",
        columns=(
            Column("benchmark", "str", header="bench", display=str.upper),
            Column("nprocs", "int"),
            Column("iterations", "int"),
            Column("config", "str"),
            Column("makespan_s", "float", units="s", scale=1e3, format=".3f",
                   header="makespan_ms"),
            Column("normalized", "float", format=".4f"),
            Column("logged_fraction", "float", units="ratio", scale=100.0,
                   format=".1f", header="logged %"),
        ),
        title="Figure 6 -- NAS failure-free execution time normalized to native MPICH2",
    ),
    builder=_rows_from_store,
)


def overhead_specs(
    benchmark: str,
    nprocs: int = 64,
    iterations: int = 2,
    network: Optional[NetworkModel] = None,
    clusters: Optional[Sequence[Sequence[int]]] = None,
    include_hybrid_event_logging: bool = False,
    message_scale: float = 1.0,
) -> List[ScenarioSpec]:
    """Declare the Figure 6 configurations for one benchmark as specs."""
    name = benchmark.lower()
    network_spec = to_network_spec(network)
    params = {"message_scale": message_scale} if message_scale != 1.0 else {}
    workload = WorkloadSpec(kind=name, nprocs=nprocs, iterations=iterations, params=params)
    if clusters is not None:
        clustering = ClusteringSpec(
            method="explicit", clusters=tuple(tuple(c) for c in clusters)
        )
    else:
        # The paper's Table I cluster count, partitioned from the kernel's
        # analytic per-iteration communication matrix.
        clustering = ClusteringSpec(method="preset")

    configs = {
        "native": ProtocolSpec(name="native"),
        "message_logging": ProtocolSpec(name="hydee-log-all"),
        "hydee": ProtocolSpec(name="hydee", clustering=clustering),
    }
    if include_hybrid_event_logging:
        configs["hybrid_event_logging"] = ProtocolSpec(
            name="hybrid-event-logging", clustering=clustering
        )
    return [
        ScenarioSpec(
            name=f"figure6:{name}:{config}",
            workload=workload,
            protocol=protocol,
            network=network_spec,
            tags={"experiment": "figure6", "benchmark": name, "config": config},
        )
        for config, protocol in configs.items()
    ]


def rows_from_campaign(outcome: CampaignResult) -> List[Row]:
    """Derive the Figure 6 rows from a campaign outcome."""
    return _rows_from_store(ResultSet.from_campaign(outcome))


def measure_overhead(
    benchmark: str,
    nprocs: int = 64,
    iterations: int = 2,
    network: Optional[NetworkModel] = None,
    clusters: Optional[Sequence[Sequence[int]]] = None,
    include_hybrid_event_logging: bool = False,
    message_scale: float = 1.0,
    workers: int = 1,
    store: Optional[ResultsStore] = None,
) -> List[Row]:
    """Measure the Figure 6 configurations for one benchmark (one row each)."""
    specs = overhead_specs(
        benchmark,
        nprocs=nprocs,
        iterations=iterations,
        network=network,
        clusters=clusters,
        include_hybrid_event_logging=include_hybrid_event_logging,
        message_scale=message_scale,
    )
    outcome = run_campaign(specs, workers=workers, store=store)
    return rows_from_campaign(outcome)


def build_figure6(
    benchmarks: Optional[Sequence[str]] = None,
    nprocs: int = 64,
    iterations: int = 2,
    network: Optional[NetworkModel] = None,
    include_hybrid_event_logging: bool = False,
    workers: int = 1,
    store: Optional[ResultsStore] = None,
) -> List[Row]:
    """Measure every Figure 6 bar (one campaign over the whole grid)."""
    benchmarks = list(benchmarks) if benchmarks is not None else list(NAS_BENCHMARKS)
    specs: List[ScenarioSpec] = []
    for name in benchmarks:
        specs.extend(
            overhead_specs(
                name,
                nprocs=nprocs,
                iterations=iterations,
                network=network,
                include_hybrid_event_logging=include_hybrid_event_logging,
            )
        )
    outcome = run_campaign(specs, workers=workers, store=store)
    return rows_from_campaign(outcome)


def by_config(rows: Sequence[Row], benchmark: Optional[str] = None) -> Dict[str, Row]:
    """Index rows by configuration (optionally restricted to one benchmark)."""
    return {
        row.config: row
        for row in rows
        if benchmark is None or row.benchmark == benchmark
    }


def render_figure6(rows: Sequence[Row]) -> str:
    """Per-benchmark view: one line per benchmark, one column per config."""
    from repro.analysis.reporting import format_dict_table

    configs: List[str] = []
    for row in rows:
        if row.config not in configs:
            configs.append(row.config)
    normalized = {
        (r["benchmark"], r["config"]): r for r in rows
    }
    pivoted = pivot_rows(rows, index="benchmark", columns="config", values="normalized")
    display = []
    for entry in pivoted:
        bench = entry["benchmark"]
        out = {"bench": str(bench).upper()}
        any_row = next(r for r in rows if r.benchmark == bench)
        out["nprocs"] = any_row.nprocs
        for config in configs:
            out[f"{config} (norm.)"] = round(entry.get(config, 0.0), 4)
        hydee = normalized.get((bench, "hydee"))
        out["hydee logged %"] = (
            round(100.0 * hydee.logged_fraction, 1) if hydee is not None else "-"
        )
        display.append(out)
    columns = ["bench", "nprocs"] + [f"{c} (norm.)" for c in configs] + ["hydee logged %"]
    return format_dict_table(display, columns=columns, title=FIGURE6.title)
