"""Experiment E8: efficiency vs MTBF under Monte Carlo fault campaigns.

For each protocol (HydEE, coordinated checkpointing, full message logging)
and each per-rank MTBF (expressed as a multiple of the workload's
protocol-free makespan), draws N seeded failure-trace replicas
(:mod:`repro.faults`) and reports mean wasted work (re-executed compute vs
the protocol's own failure-free baseline), efficiency, recovery time and
rollback counts.  The paper's containment claim predicts the wasted-work
ordering ``message-logging < hydee < coordinated``: rolling back one
cluster beats rolling back the world, at every failure rate.

Run it as ``repro-experiment efficiency-mtbf --workers N`` (or
``python -m repro.experiments.efficiency_mtbf``).
"""

from __future__ import annotations

import argparse
from typing import List, Optional, Sequence

from repro.analysis.efficiency import (
    containment_holds,
    render_efficiency,
    run_efficiency_experiment,
    wasted_work_by_protocol,
)
from repro.campaign.store import ResultsStore
from repro.results.tables import Row


def run(
    nprocs: int = 16,
    iterations: int = 6,
    workload_kind: str = "stencil2d",
    protocols: Sequence[str] = ("hydee", "coordinated", "message-logging"),
    mtbf_factors: Sequence[float] = (4.0, 8.0, 16.0),
    horizon_factor: float = 2.0,
    replicas: int = 20,
    checkpoint_interval: int = 1,
    seed: int = 0,
    workers: int = 1,
    store: Optional[ResultsStore] = None,
) -> List[Row]:
    return run_efficiency_experiment(
        nprocs=nprocs,
        iterations=iterations,
        workload_kind=workload_kind,
        protocols=protocols,
        mtbf_factors=mtbf_factors,
        horizon_factor=horizon_factor,
        replicas=replicas,
        checkpoint_interval=checkpoint_interval,
        seed=seed,
        workers=workers,
        store=store,
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nprocs", type=int, default=16)
    parser.add_argument("--iterations", type=int, default=6)
    parser.add_argument("--workload", default="stencil2d")
    parser.add_argument("--protocols", nargs="+",
                        default=["hydee", "coordinated", "message-logging"])
    parser.add_argument("--mtbf-factors", type=float, nargs="+",
                        default=[4.0, 8.0, 16.0],
                        help="per-rank MTBF as multiples of the reference makespan")
    parser.add_argument("--horizon-factor", type=float, default=2.0,
                        help="failure horizon as a multiple of the reference makespan")
    parser.add_argument("--replicas", type=int, default=20,
                        help="Monte Carlo replicas per (protocol, MTBF) point")
    parser.add_argument("--checkpoint-interval", type=int, default=1)
    parser.add_argument("--seed", type=int, default=0,
                        help="base seed of every fault model")
    parser.add_argument("--workers", type=int, default=1,
                        help="campaign worker processes")
    parser.add_argument("--store", default=None,
                        help="JSON campaign results store (cache)")
    args = parser.parse_args(argv)

    store = ResultsStore(args.store) if args.store else None
    rows = run(
        nprocs=args.nprocs,
        iterations=args.iterations,
        workload_kind=args.workload,
        protocols=args.protocols,
        mtbf_factors=args.mtbf_factors,
        horizon_factor=args.horizon_factor,
        replicas=args.replicas,
        checkpoint_interval=args.checkpoint_interval,
        seed=args.seed,
        workers=args.workers,
        store=store,
    )
    print(render_efficiency(rows))
    print()
    for mtbf, by_protocol in sorted(wasted_work_by_protocol(rows).items()):
        ordered = sorted(by_protocol.items(), key=lambda item: item[1])
        print(f"mtbf {mtbf * 1e3:.3f} ms: wasted work "
              + " < ".join(f"{name} ({value * 1e6:.1f} us)"
                           for name, value in ordered))
    print()
    verdict = "holds" if containment_holds(rows) else "DOES NOT HOLD"
    print(f"containment ordering (hydee < coordinated wasted work): {verdict}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
