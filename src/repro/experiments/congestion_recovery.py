"""Experiment E7: recovery time under inter-cluster congestion.

Runs HydEE and coordinated checkpointing over a hierarchical topology
(:class:`~repro.scenarios.spec.TopologySpec`) while sweeping the
oversubscription of the inter-cluster fabric, and reports the recovery cost
of one failure (makespan vs the failure-free run at the same
oversubscription).  The containment claim of Sections III-IV predicts the
two protocols diverge as the fabric gets thinner: coordinated
checkpointing re-pushes the whole application's traffic through the
congested links, HydEE replays only the failed cluster.

Run it as ``repro-experiment congestion-recovery --workers N`` (or
``python -m repro.experiments.congestion_recovery``).
"""

from __future__ import annotations

import argparse
from typing import List, Optional, Sequence

from repro.analysis.congestion import (
    recovery_divergence,
    render_congestion,
    run_congestion_experiment,
)
from repro.results.tables import Row
from repro.campaign.store import ResultsStore


def run(
    nprocs: int = 16,
    iterations: int = 6,
    failed_rank: int = 5,
    fail_at_iteration: int = 4,
    checkpoint_interval: int = 2,
    oversubscriptions: Sequence[float] = (1.0, 2.0, 4.0, 8.0),
    protocols: Sequence[str] = ("hydee", "coordinated"),
    topology_preset: str = "cluster-per-node",
    ranks_per_node: int = 4,
    workers: int = 1,
    store: Optional[ResultsStore] = None,
) -> List[Row]:
    return run_congestion_experiment(
        nprocs=nprocs,
        iterations=iterations,
        failed_rank=failed_rank,
        fail_at_iteration=fail_at_iteration,
        checkpoint_interval=checkpoint_interval,
        oversubscriptions=oversubscriptions,
        protocols=protocols,
        topology_preset=topology_preset,
        ranks_per_node=ranks_per_node,
        workers=workers,
        store=store,
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nprocs", type=int, default=16)
    parser.add_argument("--iterations", type=int, default=6)
    parser.add_argument("--fail-rank", type=int, default=5)
    parser.add_argument("--fail-at-iteration", type=int, default=4)
    parser.add_argument("--checkpoint-interval", type=int, default=2)
    parser.add_argument("--oversubscription", type=float, nargs="+",
                        default=[1.0, 2.0, 4.0, 8.0],
                        help="inter-cluster oversubscription factors to sweep")
    parser.add_argument("--protocols", nargs="+",
                        default=["hydee", "coordinated"])
    parser.add_argument("--topology", default="cluster-per-node",
                        help="topology preset (cluster-per-node, fat-tree-2level)")
    parser.add_argument("--ranks-per-node", type=int, default=4)
    parser.add_argument("--workers", type=int, default=1,
                        help="campaign worker processes")
    parser.add_argument("--store", default=None,
                        help="JSON campaign results store (cache)")
    args = parser.parse_args(argv)

    store = ResultsStore(args.store) if args.store else None
    rows = run(
        nprocs=args.nprocs,
        iterations=args.iterations,
        failed_rank=args.fail_rank,
        fail_at_iteration=args.fail_at_iteration,
        checkpoint_interval=args.checkpoint_interval,
        oversubscriptions=args.oversubscription,
        protocols=args.protocols,
        topology_preset=args.topology,
        ranks_per_node=args.ranks_per_node,
        workers=args.workers,
        store=store,
    )
    print(render_congestion(rows))
    print()
    for protocol, factor in sorted(recovery_divergence(rows).items()):
        print(f"recovery growth ({protocol}): x{factor:.2f} "
              f"from oversubscription {min(args.oversubscription):g} "
              f"to {max(args.oversubscription):g}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
