"""Experiment E1: Table I -- application clustering on 256 processes."""

from __future__ import annotations

import argparse
from typing import List, Optional, Sequence

from repro.analysis.table1 import Table1Row, build_table1, render_table1


def run(
    benchmarks: Optional[Sequence[str]] = None,
    nprocs: int = 256,
    balance_tolerance: float = 1.1,
) -> List[Table1Row]:
    """Compute the Table I rows (analytic communication graphs + partitioner)."""
    return build_table1(benchmarks=benchmarks, nprocs=nprocs,
                        balance_tolerance=balance_tolerance)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nprocs", type=int, default=256,
                        help="number of processes (paper: 256)")
    parser.add_argument("--benchmarks", nargs="*", default=None,
                        help="subset of NAS benchmarks (default: all six)")
    parser.add_argument("--balance-tolerance", type=float, default=1.1)
    args = parser.parse_args(argv)
    rows = run(benchmarks=args.benchmarks, nprocs=args.nprocs,
               balance_tolerance=args.balance_tolerance)
    print(render_table1(rows))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
