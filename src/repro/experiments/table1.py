"""Experiment E1: Table I -- application clustering on 256 processes.

Each benchmark's row is an analytic ``table1-row`` campaign scenario
(:func:`repro.analysis.table1.table1_spec`); ``--workers`` computes rows in
parallel and ``--store`` caches them.
"""

from __future__ import annotations

import argparse
from typing import List, Optional, Sequence

from repro.analysis.table1 import build_table1, render_table1
from repro.results.tables import Row
from repro.campaign.store import ResultsStore


def run(
    benchmarks: Optional[Sequence[str]] = None,
    nprocs: int = 256,
    balance_tolerance: float = 1.1,
    workers: int = 1,
    store: Optional[ResultsStore] = None,
) -> List[Row]:
    """Compute the Table I rows (analytic communication graphs + partitioner)."""
    return build_table1(benchmarks=benchmarks, nprocs=nprocs,
                        balance_tolerance=balance_tolerance,
                        workers=workers, store=store)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nprocs", type=int, default=256,
                        help="number of processes (paper: 256)")
    parser.add_argument("--benchmarks", nargs="*", default=None,
                        help="subset of NAS benchmarks (default: all six)")
    parser.add_argument("--balance-tolerance", type=float, default=1.1)
    parser.add_argument("--workers", type=int, default=1,
                        help="campaign worker processes")
    parser.add_argument("--store", default=None,
                        help="JSON campaign results store (cache)")
    args = parser.parse_args(argv)
    store = ResultsStore(args.store) if args.store else None
    rows = run(benchmarks=args.benchmarks, nprocs=args.nprocs,
               balance_tolerance=args.balance_tolerance,
               workers=args.workers, store=store)
    print(render_table1(rows))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
