"""Experiment E3: Figure 6 -- NAS failure-free overhead (normalized time).

Every (benchmark x configuration) cell is declared as a scenario spec by
:func:`repro.analysis.overhead.overhead_specs` and the whole grid runs as
one campaign; ``--workers`` fans the grid out over processes.
"""

from __future__ import annotations

import argparse
from typing import List, Optional, Sequence

from repro.analysis.overhead import build_figure6, render_figure6
from repro.results.tables import Row
from repro.campaign.store import ResultsStore
from repro.clustering.presets import FIGURE6_PAPER_OVERHEAD


def run(
    benchmarks: Optional[Sequence[str]] = None,
    nprocs: int = 64,
    iterations: int = 2,
    include_hybrid_event_logging: bool = False,
    workers: int = 1,
    store: Optional[ResultsStore] = None,
) -> List[Row]:
    """Measure the normalized execution time of the Figure 6 configurations.

    The paper uses 256 processes; the default here is 64 so the experiment
    completes in seconds (pass ``--full`` / ``nprocs=256`` for the paper
    scale -- the FT all-to-all then dominates the runtime).
    """
    return build_figure6(
        benchmarks=benchmarks,
        nprocs=nprocs,
        iterations=iterations,
        include_hybrid_event_logging=include_hybrid_event_logging,
        workers=workers,
        store=store,
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nprocs", type=int, default=64)
    parser.add_argument("--iterations", type=int, default=2)
    parser.add_argument("--full", action="store_true",
                        help="use the paper's 256 processes")
    parser.add_argument("--benchmarks", nargs="*", default=None)
    parser.add_argument("--hybrid", action="store_true",
                        help="also measure the hybrid protocol with event logging")
    parser.add_argument("--workers", type=int, default=1,
                        help="campaign worker processes")
    parser.add_argument("--store", default=None,
                        help="JSON campaign results store (cache)")
    args = parser.parse_args(argv)
    nprocs = 256 if args.full else args.nprocs
    store = ResultsStore(args.store) if args.store else None
    rows = run(
        benchmarks=args.benchmarks,
        nprocs=nprocs,
        iterations=args.iterations,
        include_hybrid_event_logging=args.hybrid,
        workers=args.workers,
        store=store,
    )
    print(render_figure6(rows))
    print()
    print("Paper reference points (normalized time read off Figure 6):")
    for name, values in FIGURE6_PAPER_OVERHEAD.items():
        print(
            f"  {name.upper():3s}: message logging ~{values['message_logging']:.3f}, "
            f"HydEE ~{values['hydee']:.3f}"
        )
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
