"""Ablation E5: piggyback policy and logging cost decomposition.

Section V-A describes the prototype's hybrid piggybacking rule (inline below
1 KiB, separate message above).  This ablation measures the ping-pong latency
overhead of each policy in isolation, and with/without sender-based logging,
to show where the two Figure 5 peaks come from and why the logging memcpy is
invisible.

The study is declared as a single ``piggyback-policy`` campaign scenario
(the netpipe workload supplies the size sweep, the protocol options the
piggybacked byte count) and executed through the campaign runner.
"""

from __future__ import annotations

import argparse
from typing import Dict, List, Optional, Sequence

from repro.analysis.reporting import format_table
from repro.campaign.runner import run_campaign
from repro.campaign.store import ResultsStore
from repro.scenarios.build import to_network_spec
from repro.scenarios.spec import ProtocolSpec, ScenarioSpec, WorkloadSpec
from repro.simulator.network import NetworkModel, netpipe_sizes


def piggyback_spec(
    sizes: Optional[Sequence[int]] = None,
    network: Optional[NetworkModel] = None,
    piggyback_bytes: int = 12,
) -> ScenarioSpec:
    """Declare the piggyback-policy decomposition as a campaign scenario."""
    sizes = list(sizes) if sizes is not None else [s for s in netpipe_sizes(1 << 20)]
    return ScenarioSpec(
        name="ablation:piggyback",
        workload=WorkloadSpec(
            kind="netpipe", nprocs=2, iterations=1, params={"sizes": sizes}
        ),
        protocol=ProtocolSpec(
            name="hydee", options={"piggyback_bytes": piggyback_bytes}
        ),
        network=to_network_spec(network),
        tags={"experiment": "ablation-piggyback", "analysis": "piggyback-policy"},
    )


def run(
    sizes: Optional[Sequence[int]] = None,
    network: Optional[NetworkModel] = None,
    piggyback_bytes: int = 12,
    store: Optional[ResultsStore] = None,
) -> List[Dict[str, float]]:
    """Overhead (in % of the native one-way time) per policy and per size."""
    spec = piggyback_spec(sizes=sizes, network=network, piggyback_bytes=piggyback_bytes)
    outcome = run_campaign([spec], store=store)
    return outcome.results().one().data["rows"]


def render(rows: Sequence[Dict[str, float]]) -> str:
    columns = list(rows[0].keys()) if rows else []
    data = [[round(row[c], 3) for c in columns] for row in rows]
    return format_table(
        columns, data,
        title="Piggyback policy ablation -- one-way overhead vs native (percent)",
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--piggyback-bytes", type=int, default=12)
    args = parser.parse_args(argv)
    print(render(run(piggyback_bytes=args.piggyback_bytes)))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
