"""Ablation E5: piggyback policy and logging cost decomposition.

Section V-A describes the prototype's hybrid piggybacking rule (inline below
1 KiB, separate message above).  This ablation measures the ping-pong latency
overhead of each policy in isolation, and with/without sender-based logging,
to show where the two Figure 5 peaks come from and why the logging memcpy is
invisible.
"""

from __future__ import annotations

import argparse
from typing import Dict, List, Optional, Sequence

from repro.analysis.perf_model import message_cost
from repro.analysis.reporting import format_table
from repro.simulator.network import MyrinetMXModel, NetworkModel, PiggybackPolicy, netpipe_sizes


def run(
    sizes: Optional[Sequence[int]] = None,
    network: Optional[NetworkModel] = None,
    piggyback_bytes: int = 12,
) -> List[Dict[str, float]]:
    """Overhead (in % of the native one-way time) per policy and per size."""
    network = network or MyrinetMXModel()
    sizes = list(sizes) if sizes is not None else [s for s in netpipe_sizes(1 << 20)]
    rows: List[Dict[str, float]] = []
    for size in sizes:
        row: Dict[str, float] = {"bytes": float(size)}
        for policy in (
            PiggybackPolicy.NONE,
            PiggybackPolicy.INLINE,
            PiggybackPolicy.SEPARATE,
            PiggybackPolicy.INLINE_SMALL_SEPARATE_LARGE,
        ):
            cost = message_cost(network, size, piggyback_bytes, policy, logging=False)
            row[f"{policy.value}_pct"] = 100.0 * cost.overhead_fraction
        logged = message_cost(
            network, size, piggyback_bytes,
            PiggybackPolicy.INLINE_SMALL_SEPARATE_LARGE, logging=True,
        )
        row["logging_extra_pct"] = 100.0 * logged.overhead_fraction - row[
            f"{PiggybackPolicy.INLINE_SMALL_SEPARATE_LARGE.value}_pct"
        ]
        rows.append(row)
    return rows


def render(rows: Sequence[Dict[str, float]]) -> str:
    columns = list(rows[0].keys()) if rows else []
    data = [[round(row[c], 3) for c in columns] for row in rows]
    return format_table(
        columns, data,
        title="Piggyback policy ablation -- one-way overhead vs native (percent)",
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--piggyback-bytes", type=int, default=12)
    args = parser.parse_args(argv)
    print(render(run(piggyback_bytes=args.piggyback_bytes)))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
