"""Ablation E6: cluster-count sweep (rollback vs logged-volume frontier).

The trade-off the clustering tool optimises (Section V-B, [28]): more
clusters mean a smaller rollback after a failure but more inter-cluster
traffic to log.  This ablation sweeps the number of clusters for each NAS
benchmark and prints the frontier.
"""

from __future__ import annotations

import argparse
from typing import Dict, List, Optional, Sequence

from repro.analysis.reporting import format_table
from repro.clustering.comm_graph import CommunicationGraph
from repro.clustering.partitioner import sweep_cluster_counts
from repro.workloads.nas import NAS_BENCHMARKS


def run(
    benchmark: str = "bt",
    nprocs: int = 256,
    counts: Optional[Sequence[int]] = None,
) -> List[Dict[str, float]]:
    counts = list(counts) if counts is not None else [2, 4, 8, 16, 32]
    counts = [k for k in counts if k <= nprocs]
    app = NAS_BENCHMARKS[benchmark.lower()](nprocs=nprocs, iterations=1)
    graph = CommunicationGraph.from_matrix(app.full_run_matrix())
    results = sweep_cluster_counts(graph, counts)
    rows = []
    for result in results:
        metrics = result.metrics
        rows.append(
            {
                "clusters": metrics.num_clusters,
                "rollback_pct": round(100.0 * metrics.rollback_fraction, 2),
                "logged_pct": round(100.0 * metrics.logged_fraction, 2),
                "logged_gb": round(metrics.logged_bytes / 1e9, 1),
                "method": result.method,
            }
        )
    return rows


def render(benchmark: str, rows: Sequence[Dict[str, float]]) -> str:
    columns = ["clusters", "rollback_pct", "logged_pct", "logged_gb", "method"]
    data = [[row[c] for c in columns] for row in rows]
    return format_table(
        columns, data,
        title=f"Cluster-count sweep for {benchmark.upper()} (rollback vs logged volume)",
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--benchmark", default="bt", choices=sorted(NAS_BENCHMARKS))
    parser.add_argument("--nprocs", type=int, default=256)
    parser.add_argument("--counts", type=int, nargs="*", default=None)
    args = parser.parse_args(argv)
    rows = run(benchmark=args.benchmark, nprocs=args.nprocs, counts=args.counts)
    print(render(args.benchmark, rows))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
