"""Ablation E6: cluster-count sweep (rollback vs logged-volume frontier).

The trade-off the clustering tool optimises (Section V-B, [28]): more
clusters mean a smaller rollback after a failure but more inter-cluster
traffic to log.  This ablation sweeps the number of clusters for each NAS
benchmark and prints the frontier.

The sweep is declared as a ``cluster-sweep`` campaign scenario
(:func:`repro.analysis.table1.cluster_sweep_spec`) and executed through the
campaign runner.
"""

from __future__ import annotations

import argparse
from typing import List, Optional, Sequence

from repro.analysis.table1 import CLUSTER_SWEEP, cluster_sweep_spec
from repro.campaign.runner import run_campaign
from repro.campaign.store import ResultsStore
from repro.results.tables import Row
from repro.workloads.nas import NAS_BENCHMARKS


def run(
    benchmark: str = "bt",
    nprocs: int = 256,
    counts: Optional[Sequence[int]] = None,
    store: Optional[ResultsStore] = None,
) -> List[Row]:
    counts = list(counts) if counts is not None else [2, 4, 8, 16, 32]
    spec = cluster_sweep_spec(benchmark, nprocs=nprocs, counts=counts)
    outcome = run_campaign([spec], store=store)
    return CLUSTER_SWEEP.rows(outcome.results().one().data["rows"])


def render(benchmark: str, rows: Sequence[Row]) -> str:
    return CLUSTER_SWEEP.render_text(
        rows,
        title=f"Cluster-count sweep for {benchmark.upper()} (rollback vs logged volume)",
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--benchmark", default="bt", choices=sorted(NAS_BENCHMARKS))
    parser.add_argument("--nprocs", type=int, default=256)
    parser.add_argument("--counts", type=int, nargs="*", default=None)
    args = parser.parse_args(argv)
    rows = run(benchmark=args.benchmark, nprocs=args.nprocs, counts=args.counts)
    print(render(args.benchmark, rows))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
