"""Runnable experiment entry points, one per paper table/figure plus ablations.

Each module exposes a ``run(...)`` function returning plain data and a
``main()`` that prints the corresponding table; run them as::

    python -m repro.experiments.table1
    python -m repro.experiments.figure5
    python -m repro.experiments.figure6 --nprocs 64 --iterations 2
    python -m repro.experiments.recovery_containment
    python -m repro.experiments.ablation_piggyback
    python -m repro.experiments.ablation_clusters

Full-scale (256-rank) runs are selected with ``--full`` where relevant; the
defaults are sized to finish in seconds on a laptop.

Every module declares its runs as :class:`repro.scenarios.ScenarioSpec`
objects and executes them through the campaign runner
(:mod:`repro.campaign`), so ``--workers N`` parallelises any experiment and
``--store PATH`` caches completed records.  The ``repro-experiment``
console script (:mod:`repro.experiments.cli`) dispatches to any of them by
name.
"""

from repro.experiments import (  # noqa: F401  (re-exported for convenience)
    ablation_clusters,
    ablation_piggyback,
    congestion_recovery,
    efficiency_mtbf,
    figure5,
    figure6,
    recovery_containment,
    table1,
)

__all__ = [
    "table1",
    "figure5",
    "figure6",
    "recovery_containment",
    "congestion_recovery",
    "efficiency_mtbf",
    "ablation_piggyback",
    "ablation_clusters",
]
