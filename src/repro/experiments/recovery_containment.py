"""Experiment E4: failure containment and recovery correctness.

Injects the same failure under HydEE, global coordinated checkpointing and
full message logging, and reports who rolls back, what is replayed, and
whether the recovered execution matches the failure-free reference (the
functional claims of Sections III-IV).

The reference run and the per-protocol failure runs are declared as
scenario specs (:func:`repro.analysis.containment.containment_specs`) and
executed as one campaign with live artifacts (the experiment compares
send-sequence traces and per-rank results across runs).
"""

from __future__ import annotations

import argparse
from typing import List, Optional, Sequence

from repro.analysis.containment import (
    render_containment,
    run_containment_experiment,
)
from repro.results.tables import Row


def run(
    nprocs: int = 16,
    iterations: int = 8,
    failed_ranks: Sequence[int] = (5,),
    fail_at_iteration: int = 5,
    num_clusters: int = 4,
    checkpoint_interval: int = 2,
    workers: int = 1,
) -> List[Row]:
    return run_containment_experiment(
        nprocs=nprocs,
        iterations=iterations,
        failed_ranks=failed_ranks,
        fail_at_iteration=fail_at_iteration,
        num_clusters=num_clusters,
        checkpoint_interval=checkpoint_interval,
        workers=workers,
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nprocs", type=int, default=16)
    parser.add_argument("--iterations", type=int, default=8)
    parser.add_argument("--fail-ranks", type=int, nargs="+", default=[5])
    parser.add_argument("--fail-at-iteration", type=int, default=5)
    parser.add_argument("--clusters", type=int, default=4)
    parser.add_argument("--checkpoint-interval", type=int, default=2)
    parser.add_argument("--workers", type=int, default=1,
                        help="campaign worker processes")
    args = parser.parse_args(argv)
    rows = run(
        nprocs=args.nprocs,
        iterations=args.iterations,
        failed_ranks=args.fail_ranks,
        fail_at_iteration=args.fail_at_iteration,
        num_clusters=args.clusters,
        checkpoint_interval=args.checkpoint_interval,
        workers=args.workers,
    )
    print(render_containment(rows))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
