"""Experiment E2: Figure 5 -- NetPIPE ping-pong latency/bandwidth degradation.

The three configurations (native, HydEE without logging, HydEE with
logging) are declared as scenario specs by
:func:`repro.analysis.netpipe_analysis.netpipe_specs` and executed through
the campaign runner; ``--workers`` fans them out over processes and
``--store`` caches completed records.
"""

from __future__ import annotations

import argparse
from typing import Optional, Sequence

from repro.analysis.netpipe_analysis import (
    NetpipeResult,
    analytic_netpipe_experiment,
    run_netpipe_experiment,
)
from repro.analysis.reporting import format_series
from repro.campaign.store import ResultsStore
from repro.simulator.network import netpipe_sizes


def run(
    max_bytes: int = 8 * 1024 * 1024,
    repeats: int = 3,
    sizes: Optional[Sequence[int]] = None,
    workers: int = 1,
    store: Optional[ResultsStore] = None,
) -> NetpipeResult:
    """Run the simulated ping-pong sweep (native / HydEE no-log / HydEE log)."""
    sizes = list(sizes) if sizes is not None else list(netpipe_sizes(max_bytes))
    return run_netpipe_experiment(
        sizes=sizes, repeats=repeats, workers=workers, store=store
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--max-bytes", type=int, default=8 * 1024 * 1024,
                        help="largest ping-pong message (paper: 8 MiB)")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--workers", type=int, default=1,
                        help="campaign worker processes")
    parser.add_argument("--store", default=None,
                        help="JSON campaign results store (cache)")
    parser.add_argument("--analytic", action="store_true",
                        help="also print the closed-form model prediction")
    args = parser.parse_args(argv)

    store = ResultsStore(args.store) if args.store else None
    result = run(max_bytes=args.max_bytes, repeats=args.repeats,
                 workers=args.workers, store=store)
    print(result.as_text())

    if args.analytic:
        model = analytic_netpipe_experiment(sizes=result.sizes)
        print()
        print(
            format_series(
                "bytes",
                result.sizes,
                {
                    "model lat% no-log": [
                        round(v, 2) for v in model["latency_reduction_no_logging_pct"]
                    ],
                    "model lat% log": [
                        round(v, 2) for v in model["latency_reduction_logging_pct"]
                    ],
                },
                title="Closed-form model prediction (cross-check)",
            )
        )
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
