"""``repro-experiment`` console entry point: run any paper experiment by name.

Usage::

    repro-experiment table1 --nprocs 256
    repro-experiment figure6 --workers 4
    repro-experiment list
"""

from __future__ import annotations

import sys
from typing import Callable, Dict, List, Optional, Sequence

from repro.experiments import (
    ablation_clusters,
    ablation_piggyback,
    congestion_recovery,
    efficiency_mtbf,
    figure5,
    figure6,
    recovery_containment,
    table1,
)

#: experiment name -> module main(argv) (the uniform runner registry).
EXPERIMENTS: Dict[str, Callable[[Optional[Sequence[str]]], int]] = {
    "table1": table1.main,
    "figure5": figure5.main,
    "figure6": figure6.main,
    "recovery-containment": recovery_containment.main,
    "congestion-recovery": congestion_recovery.main,
    "efficiency-mtbf": efficiency_mtbf.main,
    "ablation-piggyback": ablation_piggyback.main,
    "ablation-clusters": ablation_clusters.main,
}


def available_experiments() -> List[str]:
    return sorted(EXPERIMENTS)


def main(argv: Optional[Sequence[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("-h", "--help", "list"):
        print("usage: repro-experiment <name> [experiment options]")
        print("available experiments:")
        for name in available_experiments():
            print(f"  {name}")
        return 0 if argv else 2
    name, rest = argv[0], argv[1:]
    runner = EXPERIMENTS.get(name)
    if runner is None:
        print(f"unknown experiment {name!r}; available: "
              f"{', '.join(available_experiments())}", file=sys.stderr)
        return 2
    return runner(rest)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
