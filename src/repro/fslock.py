"""Shared file-locking and atomic-write discipline for on-disk caches.

Several campaign processes may share one JSON file (results stores,
calibration caches).  ``os.replace`` alone makes each *file* write atomic,
but a load-compute-save cycle is still a read-modify-write race: the last
writer's file silently drops whatever the other writers added in between.
Every shared cache therefore follows the same two-part discipline:

* writers serialise on an exclusive ``flock`` of a ``<path>.lock`` sidecar
  (:func:`exclusive_lock`), merging the records currently on disk into the
  write while the lock is held;
* the file itself is replaced atomically (:func:`atomic_write_json`), so
  readers never observe a half-written file.

On platforms without ``fcntl`` the merge still runs, unserialised.
"""

from __future__ import annotations

import json
import os
import tempfile
from contextlib import contextmanager
from typing import Any, Iterator

try:  # POSIX; on platforms without fcntl the merge still runs, unserialised.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]


@contextmanager
def exclusive_lock(path: str) -> Iterator[None]:
    """Hold an exclusive advisory lock on ``<path>.lock`` for the block.

    The parent directory is created if missing.  A no-op (but still a valid
    context manager) where ``fcntl`` is unavailable.
    """
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    if fcntl is None:  # pragma: no cover - non-POSIX fallback
        yield
        return
    lock_fd = os.open(path + ".lock", os.O_CREAT | os.O_RDWR, 0o644)
    try:
        fcntl.flock(lock_fd, fcntl.LOCK_EX)
        try:
            yield
        finally:
            fcntl.flock(lock_fd, fcntl.LOCK_UN)
    finally:
        os.close(lock_fd)


def atomic_write_json(path: str, payload: Any) -> None:
    """Replace ``path`` with ``payload`` serialised as sorted-key JSON.

    The payload is written to a temporary file in the same directory and
    moved into place with ``os.replace``, so concurrent readers see either
    the old or the new file, never a partial one.  Sorted keys keep files
    with identical content byte-identical regardless of insertion order.
    """
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, sort_keys=True, indent=1)
            fh.write("\n")
        os.replace(tmp_path, path)
    except BaseException:
        if os.path.exists(tmp_path):
            os.unlink(tmp_path)
        raise
