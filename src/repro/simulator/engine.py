"""Deterministic discrete-event simulation engine.

The engine is a classic time-ordered event queue.  All behaviour of the
substrate (message transfers, compute delays, protocol control traffic,
failures) is expressed as callbacks scheduled at absolute simulation times.
Ties are broken by a monotonically increasing sequence number so that two
runs with identical inputs execute events in exactly the same order, which is
what makes the replay/recovery comparisons in the test-suite meaningful.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional, Tuple

from repro.errors import SimulationError


class _ScheduledEvent:
    """One heap entry; slotted (not a dataclass) -- this is the hottest
    allocation in the simulator, one instance per scheduled event."""

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "executed")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., None],
        args: Tuple[Any, ...] = (),
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.executed = False

    def __lt__(self, other: "_ScheduledEvent") -> bool:
        # Heap order: time, then insertion sequence (deterministic ties).
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq


class EventHandle:
    """Handle returned by :meth:`SimulationEngine.schedule`; allows cancellation."""

    __slots__ = ("_event", "_engine")

    def __init__(self, event: _ScheduledEvent, engine: "SimulationEngine") -> None:
        self._event = event
        self._engine = engine

    def cancel(self) -> None:
        if not self._event.cancelled and not self._event.executed:
            self._event.cancelled = True
            self._engine._note_cancelled()

    @property
    def time(self) -> float:
        return self._event.time

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled


class SimulationEngine:
    """Time-ordered event queue with deterministic tie-breaking."""

    #: lazy heap compaction threshold: rebuild once at least this many
    #: cancelled entries linger *and* they outnumber the live ones.
    COMPACT_MIN_CANCELLED = 64

    def __init__(self) -> None:
        self._queue: List[_ScheduledEvent] = []
        self._seq = itertools.count()
        self._now: float = 0.0
        self._events_processed: int = 0
        self._running = False
        #: scheduled events that are neither cancelled nor executed yet.
        self._live: int = 0
        #: cancelled events still sitting in the heap.
        self._cancelled: int = 0

    # ------------------------------------------------------------------ time
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        return self._events_processed

    @property
    def pending_events(self) -> int:
        return self._live

    def _note_cancelled(self) -> None:
        self._live -= 1
        self._cancelled += 1
        if self._cancelled >= self.COMPACT_MIN_CANCELLED and self._cancelled > self._live:
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify (amortised O(n))."""
        self._queue = [e for e in self._queue if not e.cancelled]
        heapq.heapify(self._queue)
        self._cancelled = 0

    # ------------------------------------------------------------ scheduling
    def schedule(self, delay: float, callback: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule an event in the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute simulation ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule an event at t={time} before current time t={self._now}"
            )
        event = _ScheduledEvent(time=time, seq=next(self._seq), callback=callback, args=args)
        heapq.heappush(self._queue, event)
        self._live += 1
        return EventHandle(event, self)

    # --------------------------------------------------------------- running
    def step(self) -> bool:
        """Execute the next pending event.  Returns False when the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                self._cancelled -= 1
                continue
            self._live -= 1
            event.executed = True
            self._now = event.time
            self._events_processed += 1
            event.callback(*event.args)
            return True
        return False

    def run(
        self,
        until_time: Optional[float] = None,
        max_events: Optional[int] = None,
        stop_predicate: Optional[Callable[[], bool]] = None,
    ) -> str:
        """Run events until exhaustion or a bound is reached.

        Returns one of ``"empty"``, ``"until_time"``, ``"max_events"`` or
        ``"stopped"`` describing why the loop ended.
        """
        self._running = True
        processed = 0
        try:
            while True:
                if stop_predicate is not None and stop_predicate():
                    return "stopped"
                if max_events is not None and processed >= max_events:
                    return "max_events"
                if not self._queue:
                    return "empty"
                next_time = self._peek_time()
                if until_time is not None and next_time is not None and next_time > until_time:
                    self._now = until_time
                    return "until_time"
                if not self.step():
                    return "empty"
                processed += 1
        finally:
            self._running = False

    def _peek_time(self) -> Optional[float]:
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
            self._cancelled -= 1
        return self._queue[0].time if self._queue else None


class Condition:
    """A one-shot or multi-shot synchronisation point.

    Protocol code fires conditions to release ranks that are blocked on
    :class:`repro.simulator.ops.WaitConditionOp` (e.g. HydEE's
    ``NotifySendMsg`` gate, Algorithm 2 line 8 / Algorithm 3 line 18) and to
    wake internal continuations (deferred sends).
    """

    __slots__ = ("name", "_fired", "_value", "_waiters")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._fired = False
        self._value: Any = None
        self._waiters: List[Callable[[Any], None]] = []

    @property
    def fired(self) -> bool:
        return self._fired

    @property
    def value(self) -> Any:
        return self._value

    def add_waiter(self, callback: Callable[[Any], None]) -> None:
        """Register ``callback(value)``; invoked immediately if already fired."""
        if self._fired:
            callback(self._value)
        else:
            self._waiters.append(callback)

    def fire(self, value: Any = None) -> None:
        """Fire the condition, waking every waiter exactly once."""
        if self._fired:
            return
        self._fired = True
        self._value = value
        waiters, self._waiters = self._waiters, []
        for callback in waiters:
            callback(value)

    def reset(self) -> None:
        """Re-arm the condition (waiters registered before reset are gone)."""
        self._fired = False
        self._value = None

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        state = "fired" if self._fired else f"pending({len(self._waiters)} waiters)"
        return f"Condition({self.name!r}, {state})"
