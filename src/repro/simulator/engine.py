"""Deterministic discrete-event simulation engine (build selector).

The engine implementation lives in :mod:`repro.simulator._engine_core`;
this facade re-exports it, preferring the optional mypyc-compiled build
when one is installed:

* ``repro.simulator._engine_core_compiled`` is a verbatim copy of the core
  module compiled to a C extension (``REPRO_MYPYC=1 python setup.py
  build_ext --inplace``, see ``setup.py``).  Because the source is
  identical, both builds schedule and drain events in exactly the same
  order -- the determinism pins hold bit-for-bit on either -- and the
  compiled build only removes interpreter overhead from the hottest loop
  of the simulator.
* ``REPRO_COMPILED=0`` in the environment is the escape hatch: it forces
  the pure-Python core even when the compiled extension is present
  (debugging with pdb/tracebacks inside the event loop, bisecting a
  suspected build issue).

``COMPILED_CORE`` tells which build this process runs.  A leftover
``_engine_core_compiled.py`` *source* file (e.g. from an aborted build) is
ignored: only a real compiled extension counts, so a stale copy can never
silently shadow the maintained implementation.
"""

from __future__ import annotations

import importlib
import os
from types import ModuleType
from typing import Optional

# Static types come from the pure-Python core: the compiled build is a
# verbatim copy, so these annotations are exact for either implementation.
from repro.simulator._engine_core import Condition, EventHandle, SimulationEngine

COMPILED_CORE: bool = False


def _load_compiled() -> Optional[ModuleType]:
    """The compiled core module, or None when absent/disabled/stale."""
    if os.environ.get("REPRO_COMPILED", "1") == "0":
        return None
    try:
        module = importlib.import_module("repro.simulator._engine_core_compiled")
    except ImportError:
        return None
    if not str(getattr(module, "__file__", "")).endswith((".so", ".pyd")):
        return None  # a stray source copy, not a compiled extension
    return module


_compiled = _load_compiled()
if _compiled is not None:
    COMPILED_CORE = True
    # Rebind the exported names to the compiled classes.  mypy keeps the
    # pure-Python types above (identical source), hence the ignores.
    Condition = _compiled.Condition  # type: ignore[misc]
    EventHandle = _compiled.EventHandle  # type: ignore[misc]
    SimulationEngine = _compiled.SimulationEngine  # type: ignore[misc]

__all__ = ["COMPILED_CORE", "Condition", "EventHandle", "SimulationEngine"]
