"""Deterministic discrete-event simulation engine (build selector).

The engine implementation lives in :mod:`repro.simulator._engine_core`;
this facade re-exports it, preferring the optional mypyc-compiled build
when one is installed:

* ``repro.simulator._engine_core_compiled`` is a verbatim copy of the core
  module compiled to a C extension (``REPRO_MYPYC=1 python setup.py
  build_ext --inplace``, see ``setup.py``).  Because the source is
  identical, both builds schedule and drain events in exactly the same
  order -- the determinism pins hold bit-for-bit on either -- and the
  compiled build only removes interpreter overhead from the hottest loop
  of the simulator.
* ``REPRO_COMPILED=0`` in the environment is the escape hatch: it forces
  the pure-Python core even when the compiled extension is present
  (debugging with pdb/tracebacks inside the event loop, bisecting a
  suspected build issue).

``COMPILED_CORE`` tells which build this process runs.  A leftover
``_engine_core_compiled.py`` *source* file (e.g. from an aborted build) is
ignored: only a real compiled extension counts, so a stale copy can never
silently shadow the maintained implementation.
"""

from __future__ import annotations

import os

COMPILED_CORE = False

_core = None
if os.environ.get("REPRO_COMPILED", "1") != "0":
    try:
        from repro.simulator import _engine_core_compiled as _core  # type: ignore
    except ImportError:
        _core = None
    else:
        if not str(getattr(_core, "__file__", "")).endswith((".so", ".pyd")):
            _core = None  # a stray source copy, not a compiled extension
if _core is None:
    from repro.simulator import _engine_core as _core
else:
    COMPILED_CORE = True

Condition = _core.Condition
EventHandle = _core.EventHandle
SimulationEngine = _core.SimulationEngine

__all__ = ["COMPILED_CORE", "Condition", "EventHandle", "SimulationEngine"]
