"""Top-level simulation orchestration.

:class:`Simulation` wires together the engine, the transport, the rank
processes, the (optional) fault-tolerance protocol, the failure injector, the
trace recorder and the stable storage, and exposes the handful of operations
that protocols need in order to implement rollback-recovery:

* :meth:`Simulation.initiate_send` / :meth:`initiate_isend` -- the single code
  path every application message goes through (protocol hooks are applied
  here),
* :meth:`Simulation.replay_message` -- inject a message replayed from a
  sender-based log (bypasses the application, Section III-B of the paper),
* :meth:`Simulation.kill_ranks`, :meth:`restart_rank`, :meth:`drop_in_flight`
  -- failure and rollback mechanics,
* :meth:`Simulation.run` -- run to completion with deadlock detection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING, Any, Callable, Dict, Iterable, List, Optional, Set, Tuple
)

from repro.errors import DeadlockError, SimulationError
from repro.results.metrics import MetricSet
from repro.simulator.channel import Transport
from repro.simulator.communicator import Communicator
from repro.simulator.engine import Condition, SimulationEngine
from repro.simulator.failures import FailureInjector
from repro.simulator.messages import Message, MessageKind
from repro.simulator.network import MyrinetMXModel, NetworkModel
from repro.simulator.process import RankProcess, RankState
from repro.simulator.protocol_api import ControlPlane, ProtocolHooks, SendAction
from repro.simulator.requests import SendRequest
from repro.simulator.stable_storage import StableStorage, snapshot_strategy_for
from repro.simulator.statistics import SimulationStatistics
from repro.simulator.trace import TraceRecorder

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simulator.hybrid import IterationGate


@dataclass
class SimulationConfig:
    """Tunable parameters of a simulation run."""

    #: Network performance model (defaults to the paper's Myrinet 10G model).
    network: Optional[NetworkModel] = None
    #: Record individual communication events (disable for large sweeps).
    record_trace_events: bool = True
    #: Absolute simulation-time bound (None = unbounded).
    max_time: Optional[float] = None
    #: Maximum number of engine events (None = unbounded); safety valve.
    max_events: Optional[int] = None
    #: Delay charged when a rank restarts from a checkpoint.
    restart_delay_s: float = 1.0e-3
    #: Latency of protocol control messages.
    control_latency_s: float = 2.0e-6
    #: Stable-storage write bandwidth for checkpoints (None = free writes).
    checkpoint_write_bandwidth: Optional[float] = 1.0e9
    #: Raise when the run ends without every rank finishing.
    raise_on_incomplete: bool = True
    #: Execution mode: ``"exact"`` (full DES) or ``"hybrid"`` (analytically
    #: fast-forward failure-free epochs, DES guard windows around failures --
    #: see :mod:`repro.simulator.hybrid`).
    execution: str = "exact"
    #: DES warm-up iterations used to calibrate the hybrid rate model
    #: (0 = auto: ``max(3, checkpoint_interval + 2)``).
    hybrid_warmup_iterations: int = 0
    #: Iterations of exact DES kept on each side of a failure injection.
    hybrid_guard_iterations: int = 2
    #: Calibration guard: fall back to exact execution when the warm-up's
    #: pooled iteration durations spread (max-min)/median beyond this.
    hybrid_max_dt_spread: float = 0.25
    #: Cache key of this run's failure-free timing identity
    #: (:meth:`ScenarioSpec.calibration_key`); when set and a matching entry
    #: exists in the active :class:`repro.simulator.calibration.
    #: CalibrationCache`, the hybrid director skips the DES warm-up.
    calibration_key: Optional[str] = None


@dataclass
class SimulationResult:
    """Outcome of :meth:`Simulation.run`."""

    status: str
    makespan: float
    stats: SimulationStatistics
    trace: TraceRecorder
    rank_results: Dict[int, Any] = field(default_factory=dict)
    rank_states: Dict[int, str] = field(default_factory=dict)
    #: namespaced metric tree (``sim.*``, ``protocol.*``, ``network.*``,
    #: ``links.*``) -- the typed face of the run, see :mod:`repro.results`.
    metrics: MetricSet = field(default_factory=MetricSet)

    @property
    def completed(self) -> bool:
        return self.status == "completed"

    def metric(self, path: str, default: Any = None) -> Any:
        """Dotted-path metric lookup (e.g. ``protocol.replayed_messages``)."""
        return self.metrics.get(path, default)


class Simulation:
    """A single simulated execution of an application under a protocol."""

    def __init__(
        self,
        application: Any,
        nprocs: int,
        protocol: Optional[ProtocolHooks] = None,
        failures: Optional[FailureInjector] = None,
        config: Optional[SimulationConfig] = None,
    ) -> None:
        if nprocs < 1:
            raise SimulationError("a simulation needs at least one rank")
        self.config = config or SimulationConfig()
        if self.config.execution not in ("exact", "hybrid"):
            raise SimulationError(
                f"unknown execution mode {self.config.execution!r} "
                "(expected 'exact' or 'hybrid')"
            )
        self.application = application
        self.nprocs = nprocs
        self.engine = SimulationEngine()
        self.network: NetworkModel = self.config.network or MyrinetMXModel()
        self.trace = TraceRecorder(record_events=self.config.record_trace_events)
        self.stats = SimulationStatistics()
        self.storage = StableStorage(
            write_bandwidth_bytes_per_s=self.config.checkpoint_write_bandwidth,
            snapshot_strategy=snapshot_strategy_for(application),
        )
        self.control = ControlPlane(self.engine, latency_s=self.config.control_latency_s)
        self.transport = Transport(self.engine, self.network, self._on_message_arrival)
        self.protocol: ProtocolHooks = protocol or ProtocolHooks()
        self.failure_injector = failures

        self.ranks: Dict[int, RankProcess] = {}
        for rank in range(nprocs):
            proc = RankProcess(self, rank, application)
            proc.comm = Communicator(self, proc)
            proc.pending_overhead = 0.0
            self.ranks[rank] = proc

        self._done_count = 0
        #: hybrid-execution hooks (None in exact mode; see
        #: :mod:`repro.simulator.hybrid`).  ``iteration_gate`` parks rank
        #: coroutines at an iteration limit, ``_iteration_listener`` feeds the
        #: rate-model calibration, ``hybrid_stats`` surfaces ``sim.hybrid.*``.
        self.iteration_gate: Optional["IterationGate"] = None
        self._iteration_listener: Optional[Callable[[int, int], None]] = None
        self.hybrid_stats: Optional[Dict[str, Any]] = None
        #: serialisable warm-up calibration of a successful hybrid run
        #: (model + park times); harvested by the campaign pre-warm into the
        #: shared calibration cache.
        self.hybrid_calibration: Optional[Dict[str, Any]] = None
        self.stats.protocol = getattr(self.protocol, "name", "none")
        self.protocol.attach(self)
        if self.failure_injector is not None:
            self.failure_injector.attach(self)

    # ----------------------------------------------------------------- access
    def rank(self, rank: int) -> RankProcess:
        return self.ranks[rank]

    def alive_ranks(self) -> List[int]:
        return [r for r, p in self.ranks.items() if p.state is not RankState.FAILED]

    # ------------------------------------------------------------- send paths
    def _build_message(
        self,
        proc: RankProcess,
        dest: int,
        payload: Any,
        tag: int,
        size_bytes: int,
        collective: bool,
    ) -> Message:
        kind = MessageKind.COLLECTIVE if collective else MessageKind.APP
        return Message(
            source=proc.rank,
            dest=dest,
            tag=tag,
            size_bytes=size_bytes,
            payload=payload,
            kind=kind,
        )

    def initiate_send(
        self,
        proc: RankProcess,
        dest: int,
        payload: Any,
        tag: int,
        size_bytes: int,
        collective: bool = False,
    ) -> Tuple[str, Any]:
        """Blocking-send entry point.

        Returns ``("sent", cpu_time)``, ``("suppressed", cpu_time)`` or
        ``("deferred", condition)``.
        """
        message = self._build_message(proc, dest, payload, tag, size_bytes, collective)
        return self._attempt_send(proc, message)

    def _attempt_send(self, proc: RankProcess, message: Message) -> Tuple[str, Any]:
        decision = self.protocol.on_app_send(proc.rank, message)
        if decision.action is SendAction.DEFER:
            if decision.condition is None:
                raise SimulationError("protocol returned DEFER without a condition")
            return "deferred", decision.condition
        if decision.action is SendAction.SUPPRESS:
            proc.sends_initiated += 1
            self.trace.record_send(message, self.engine.now, suppressed=True)
            return "suppressed", self.network.send_overhead_s
        # SEND
        proc.sends_initiated += 1
        cpu = self.network.send_overhead_s + decision.extra_cpu_time
        self.transport.transmit(message, extra_delay=decision.extra_cpu_time)
        self.trace.record_send(message, self.engine.now)
        rstats = self.stats.rank(proc.rank)
        rstats.sends += 1
        rstats.bytes_sent += message.size_bytes
        self.stats.app_messages += 1
        self.stats.app_bytes += message.size_bytes
        return "sent", cpu

    def initiate_isend(
        self,
        proc: RankProcess,
        dest: int,
        payload: Any,
        tag: int,
        size_bytes: int,
        collective: bool = False,
    ) -> SendRequest:
        """Non-blocking-send entry point; always returns a request."""
        message = self._build_message(proc, dest, payload, tag, size_bytes, collective)
        request = SendRequest(proc.rank, message)
        self._isend_attempt(proc, message, request, proc.incarnation)
        return request

    def _isend_attempt(
        self, proc: RankProcess, message: Message, request: SendRequest, incarnation: int
    ) -> None:
        if incarnation != proc.incarnation or proc.state is RankState.FAILED:
            request.cancel()
            return
        outcome, info = self._attempt_send(proc, message)
        if outcome == "deferred":
            condition: Condition = info
            condition.add_waiter(
                lambda _value: self._isend_attempt(proc, message, request, incarnation)
            )
            return
        cpu = info
        # Charge the sender-side CPU cost (piggyback handling, log memcpy) to
        # the rank by delaying its next resume: an MPI_Isend call does not
        # return before the library has done that work.
        proc.pending_overhead += cpu
        self.engine.schedule(cpu, self._complete_send_request, request)

    def _complete_send_request(self, request: SendRequest) -> None:
        if not request.cancelled and not request.complete:
            request._complete(None, self.engine.now)

    def replay_message(self, message: Message, extra_cpu_time: float = 0.0) -> None:
        """Inject a message replayed from a sender-based log (recovery path).

        The replayed clone bypasses the protocol send hook: its piggybacked
        date and phase are the ones stored in the log (Algorithm 1 line 8 /
        Algorithm 3 lines 22-24).
        """
        clone = message.clone_for_replay()
        self.transport.transmit(clone, extra_delay=extra_cpu_time)
        self.trace.record_send(clone, self.engine.now)
        self.stats.extra["replayed_messages"] = self.stats.extra.get("replayed_messages", 0) + 1

    # -------------------------------------------------------------- delivery
    def _on_message_arrival(self, message: Message) -> None:
        proc = self.ranks.get(message.dest)
        if proc is None or proc.state is RankState.FAILED:
            return
        verdict = self.protocol.on_message_arrival(proc.rank, message)
        if verdict is True:
            proc.deliver_message(message)
        elif verdict is False:
            self.stats.extra["suppressed_duplicates"] = (
                self.stats.extra.get("suppressed_duplicates", 0) + 1
            )
        else:
            # Ordered batch: the protocol held messages back to restore
            # per-channel FIFO order and releases them now (may be empty when
            # the arriving message itself is being held).
            for released in verdict:
                proc.deliver_message(released)

    def on_app_delivery(self, proc: RankProcess, message: Message) -> None:
        """Called by the rank process when a message is matched to the app."""
        overhead = self.protocol.on_app_deliver(proc.rank, message)
        if isinstance(overhead, (int, float)) and overhead > 0:
            proc.pending_overhead += float(overhead)
        self.trace.record_delivery(message, self.engine.now)
        rstats = self.stats.rank(proc.rank)
        rstats.receives += 1
        rstats.bytes_received += message.size_bytes

    # ------------------------------------------------------------- lifecycle
    def notify_iteration_completed(self, rank: int, iteration: int) -> None:
        listener = self._iteration_listener
        if listener is not None:
            # Calibration listener first: it must observe the boundary time
            # before an iteration-triggered failure can perturb the rank.
            listener(rank, iteration)
        if self.failure_injector is not None:
            self.failure_injector.on_iteration_completed(rank, iteration)

    def on_rank_done(self, proc: RankProcess) -> None:
        self._done_count += 1
        self.protocol.on_rank_done(proc.rank)

    def protocol_checkpoint_request(self, proc: RankProcess, label: str) -> float:
        cost = self.protocol.on_checkpoint_request(proc.rank, label)
        return float(cost or 0.0)

    # --------------------------------------------------------------- failures
    def kill_ranks(self, ranks: Iterable[int]) -> None:
        """Fail-stop the given ranks and drop messages involving them."""
        failed = set(ranks)
        for rank in sorted(failed):
            proc = self.ranks[rank]
            if proc.done:
                # A rank can fail *after* finishing (e.g. a failure armed by
                # its last iteration): it no longer counts as done, or the
                # O(1) completion predicate would fire early.
                self._done_count -= 1
            proc.fail()
        self.transport.drop_messages(involving=failed)
        self.stats.failures_injected += len(failed)

    def drop_in_flight(self, involving: Set[int]) -> List[Message]:
        return self.transport.drop_messages(involving=involving)

    def purge_undelivered_from(self, sources: Set[int], at_ranks: Optional[Iterable[int]] = None) -> int:
        """Purge unexpected-queue messages sent by ``sources`` at alive ranks."""
        targets = self.ranks.values() if at_ranks is None else [self.ranks[r] for r in at_ranks]
        purged = 0
        for proc in targets:
            if proc.state is not RankState.FAILED:
                purged += proc.purge_messages_from(sources)
        return purged

    def restart_rank(
        self,
        rank: int,
        iteration: int,
        app_state: Any,
        sends_at_checkpoint: int = 0,
        restart_delay: Optional[float] = None,
    ) -> None:
        """Restart ``rank`` from an application iteration boundary."""
        delay = self.config.restart_delay_s if restart_delay is None else restart_delay
        proc = self.ranks[rank]
        was_done = proc.done
        proc.restart_from_checkpoint(iteration, app_state, restart_delay=delay)
        if was_done:
            # The rank had finished but is dragged back by a rollback; it will
            # finish again at the end of recovery.
            self._done_count -= 1
        self.trace.mark_restart(rank, sends_at_checkpoint)
        self.stats.ranks_rolled_back += 1
        self.protocol.on_rank_restarted(rank)

    # ------------------------------------------------------------------- run
    def all_done(self) -> bool:
        return all(p.done for p in self.ranks.values())

    def _should_stop(self) -> bool:
        """Completion predicate for the engine loop.

        An iteration-triggered failure armed by a rank's last iteration is
        still in the queue when every rank reports done; the run must not be
        declared complete before it strikes and recovery has played out.

        This predicate runs before *every* engine event, so it must be O(1):
        ``_done_count`` tracks :meth:`all_done` incrementally (incremented in
        :meth:`on_rank_done`, decremented when a done rank is dragged back by
        a rollback in :meth:`restart_rank`).
        """
        if self._done_count != self.nprocs:
            return False
        injector = self.failure_injector
        return injector is None or injector.armed_fires == 0

    def run(self) -> SimulationResult:
        if self.config.execution == "hybrid":
            # Imported lazily: hybrid pulls in the protocol base classes,
            # which themselves import simulator modules at load time.
            from repro.simulator.hybrid import HybridDirector

            return HybridDirector(self).run()
        self.protocol.on_simulation_start()
        self._start_ranks()
        reason = self.engine.run(
            until_time=self.config.max_time,
            max_events=self.config.max_events,
            stop_predicate=self._should_stop,
        )
        return self._finish(reason)

    def _start_ranks(self) -> None:
        """Inject every rank's t=0 kick-off event in one deterministic batch."""
        self.engine.schedule_many(proc.start() for proc in self.ranks.values())

    def _finish(self, reason: str) -> SimulationResult:
        """Map the engine's stop reason to a result (shared exact/hybrid)."""
        self.protocol.on_simulation_end()

        if self.all_done():
            status = "completed"
        elif reason == "empty":
            status = "deadlock"
        elif reason == "until_time":
            status = "timeout"
        elif reason == "max_events":
            status = "event-limit"
        else:
            status = "completed" if self.all_done() else "incomplete"

        if status == "deadlock" and self.config.raise_on_incomplete:
            raise DeadlockError(self._deadlock_report())
        if status in ("timeout", "event-limit") and self.config.raise_on_incomplete:
            raise SimulationError(
                f"simulation stopped ({status}) before completion: "
                f"{sum(1 for p in self.ranks.values() if not p.done)} ranks unfinished"
            )

        self._finalize_stats()
        return SimulationResult(
            status=status,
            makespan=self.stats.makespan,
            stats=self.stats,
            trace=self.trace,
            rank_results={r: p.result for r, p in self.ranks.items()},
            rank_states={r: p.state.value for r, p in self.ranks.items()},
            metrics=self._build_metrics(),
        )

    # ------------------------------------------------------------- internals
    def _finalize_stats(self) -> None:
        finish_times = [p.finish_time for p in self.ranks.values() if p.finish_time is not None]
        self.stats.makespan = max(finish_times) if finish_times else self.engine.now
        self.stats.events_processed = self.engine.events_processed
        self.stats.control_messages = self.control.messages_sent
        self.stats.control_bytes = self.control.bytes_sent
        self.stats.checkpoints_taken = self.storage.writes
        self.stats.checkpoint_bytes = self.storage.bytes_written

    def _build_metrics(self) -> MetricSet:
        """Assemble the run's namespaced metric tree.

        Duplicate metric names (e.g. a protocol layer re-publishing a
        counter) raise :class:`~repro.errors.ConfigurationError` here, at
        the single point where the namespaces meet.
        """
        metrics = self.stats.sim_metrics()
        injector = self.failure_injector
        if injector is not None:
            # Injector health: campaigns filter on these to catch scenarios
            # whose failure schedule silently degenerated (all events
            # disarmed, armed strikes left hanging, nobody actually killed).
            metrics.set("sim.injector.armed_fires", injector.armed_fires)
            metrics.set("sim.injector.deferred_fires", injector.deferred_fires)
            metrics.set("sim.injector.disarmed_events", injector.disarmed_events)
            metrics.set("sim.injector.failed_ranks", len(injector.failed_ranks))
            metrics.set("sim.injector.retargeted_events", injector.retargeted_events)
        if self.hybrid_stats is not None:
            # Hybrid execution quality: campaigns filter on these to spot
            # replicas that silently fell back to exact mode or calibrated
            # on noisy warm-ups.
            for key in sorted(self.hybrid_stats):
                metrics.set(f"sim.hybrid.{key}", self.hybrid_stats[key])
            reason = self.stats.extra.get("hybrid_fallback_reason")
            if reason:
                metrics.set("sim.hybrid.fallback_reason", reason)
        metrics.merge(self.protocol.metrics())
        topology = self.transport.topology
        if topology is not None and topology.has_shared_links:
            # Only contended topologies publish link metrics: a flat (or
            # absent) topology must keep records byte-identical to
            # pre-topology runs.
            metrics.set("network.topology", topology.describe())
            metrics.set("network.contention_wait_s", self.transport.contention_wait_s)
            metrics.set("links.per_link", self.transport.link_stats(makespan=self.stats.makespan))
            metrics.set("links.tiers", self.transport.tier_stats())
        return metrics

    def _deadlock_report(self) -> str:
        lines = ["simulation deadlock: event queue empty but ranks are not done"]
        lines.append(f"  recovery in progress: {self.protocol.recovery_in_progress()}")
        for rank, proc in sorted(self.ranks.items()):
            if not proc.done:
                lines.append(
                    f"  rank {rank}: state={proc.state.value} iteration={proc.completed_iterations} "
                    f"blocked on {proc.blocked_description()}"
                )
        return "\n".join(lines)
