"""Deterministic discrete-event simulation engine (implementation).

Import :mod:`repro.simulator.engine`, not this module: the facade selects
between this pure-Python implementation and its optional mypyc-compiled
build (``repro.simulator._engine_core_compiled``, produced by
``REPRO_MYPYC=1 python setup.py build_ext``).  Both builds run the *same*
source -- the compiled module is a verbatim copy of this file -- so the
event order, and with it every determinism pin, is identical; only the
interpreter overhead of the inner loop changes.  Keep this module
self-contained and mypyc-friendly: no dynamic class surgery, no
module-level mutable state, standard-library imports only (plus
:class:`repro.errors.SimulationError`).

The engine is a classic time-ordered event queue.  All behaviour of the
substrate (message transfers, compute delays, protocol control traffic,
failures) is expressed as callbacks scheduled at absolute simulation times.
Ties are broken by a monotonically increasing sequence number so that two
runs with identical inputs execute events in exactly the same order, which is
what makes the replay/recovery comparisons in the test-suite meaningful.

Hot-path design notes
---------------------
Scheduling and draining events is the single hottest path of the simulator
(one entry per message, per compute delay, per control message), so the
implementation deliberately avoids Python-level overhead:

* queue entries are plain **lists** ``[time, seq, callback, args, state]``
  rather than objects: ordering uses C-level list lexicographic comparison
  (time first, then the unique ``seq``), so no Python ``__lt__`` is ever
  invoked and no ``__init__`` runs per event;
* the queue is two-tier: a **drain** list (sorted ascending, consumed by
  index -- popping the next event is O(1)) plus a small overflow **heap**
  receiving events scheduled while the engine runs.  The earliest entry of
  the two tiers executes next, which reproduces exactly the single-heap
  (time, seq) order; when the drain is exhausted the heap is sorted and
  becomes the next drain.  This turns the dominant cost -- one O(log n)
  sift-down per executed event -- into an amortised O(log k) where k is the
  number of events scheduled since the last generation;
* ``run`` specialises its inner loop on which bounds are active and hoists
  state into locals, re-synchronising around callbacks (a callback may
  schedule, cancel, or trigger a lazy compaction);
* :meth:`SimulationEngine.schedule_many` batches the bookkeeping for callers
  that inject many events at once (rank start-up, grouped replays,
  benchmark floods).

Scheduled times must be finite: ``NaN`` compares false against everything,
so a single ``NaN`` time would silently corrupt the queue ordering (and with
it determinism); ``inf`` would park an event that can never run.  Both are
rejected with :class:`~repro.errors.SimulationError` at scheduling time.

The ``state`` slot of an entry is ``_PENDING`` (may run), ``_EXECUTED``
(popped and run) or ``_CANCELLED`` (skipped when reached; lazily compacted).

Schedule policies
-----------------
The ``(time, seq)`` order makes every run reproducible, but the ``seq``
tie-break is an *arbitrary* choice among events the model itself leaves
unconstrained: events scheduled at exactly the same simulation time have no
causal order, and a correct (send-deterministic) protocol must produce the
same outcome whichever way the tie is broken.  :meth:`SimulationEngine.
set_schedule_policy` installs a *chooser* that picks which member of each
equal-time group executes next (see :mod:`repro.schedexplore`), turning the
engine into an interleaving explorer.  The policy path is a separate loop --
the production hot path below is untouched when no policy is installed --
and the default chooser order (always index 0) reproduces the ``(time,
seq)`` order bit for bit.
"""

from __future__ import annotations

import math
from heapq import heapify, heappop, heappush
from typing import Any, Callable, Final, Iterable, List, Optional, Tuple

from repro.errors import SimulationError

_INF: Final = math.inf

#: queue-entry indexes / states (plain ints: list slots, not attributes).
#: ``Final`` lets mypyc fold them into the indexing opcodes.
_TIME: Final = 0
_SEQ: Final = 1
_CALLBACK: Final = 2
_ARGS: Final = 3
_STATE: Final = 4
_PENDING: Final = 0
_EXECUTED: Final = 1
_CANCELLED: Final = 2


class EventHandle:
    """Handle returned by :meth:`SimulationEngine.schedule`; allows cancellation."""

    __slots__ = ("_event", "_engine")

    def __init__(self, event: List[Any], engine: "SimulationEngine") -> None:
        self._event = event
        self._engine = engine

    def cancel(self) -> None:
        event = self._event
        if event[_STATE] == _PENDING:
            event[_STATE] = _CANCELLED
            self._engine._note_cancelled()

    @property
    def time(self) -> float:
        value: float = self._event[_TIME]
        return value

    @property
    def cancelled(self) -> bool:
        state: int = self._event[_STATE]
        return state == _CANCELLED


class SimulationEngine:
    """Time-ordered event queue with deterministic tie-breaking."""

    #: lazy compaction threshold: rebuild once at least this many cancelled
    #: entries linger *and* they outnumber the live ones.
    COMPACT_MIN_CANCELLED = 64

    def __init__(self) -> None:
        #: sorted generation being consumed front-to-back.
        self._drain: List[List[Any]] = []
        self._drain_idx: int = 0
        #: min-heap of entries scheduled since the drain was built.
        self._heap: List[List[Any]] = []
        self._seq = 0
        self._now: float = 0.0
        self._events_processed: int = 0
        self._running = False
        #: scheduled events that are neither cancelled nor executed yet.
        self._live: int = 0
        #: cancelled events still sitting in the queue tiers.
        self._cancelled: int = 0
        #: equal-time tie-break chooser (None = deterministic ``seq`` order);
        #: receives ``(time, group)`` and returns the index of the entry to
        #: execute next.  Installed by :meth:`set_schedule_policy`.
        self._policy: Optional[Callable[[float, List[List[Any]]], int]] = None
        #: observer invoked (policy path only) once every event at a given
        #: time has executed, right before the clock moves on -- the hook
        #: point state fingerprinting uses (:mod:`repro.schedexplore`).
        self._on_time_drained: Optional[Callable[[float], None]] = None

    # ------------------------------------------------------------------ time
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        return self._events_processed

    @property
    def pending_events(self) -> int:
        return self._live

    def _entry_count(self) -> int:
        """Entries physically present in the queue tiers (live + cancelled)."""
        return (len(self._drain) - self._drain_idx) + len(self._heap)

    def _note_cancelled(self) -> None:
        self._live -= 1
        self._cancelled += 1
        if self._cancelled >= self.COMPACT_MIN_CANCELLED and self._cancelled > self._live:
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries from both tiers (amortised O(n)).

        Only reached from :meth:`EventHandle.cancel`, i.e. either outside
        :meth:`run` or inside an executing callback -- both points where
        ``_drain_idx`` is synchronised, so slicing the consumed prefix off
        the drain is safe (the run loops re-read the tier attributes after
        every callback).
        """
        self._drain = [e for e in self._drain[self._drain_idx:] if not e[_STATE]]
        self._drain_idx = 0
        self._heap = [e for e in self._heap if not e[_STATE]]
        heapify(self._heap)
        self._cancelled = 0

    # ------------------------------------------------------------ scheduling
    def schedule(self, delay: float, callback: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now.

        ``delay`` must be finite and non-negative; ``NaN``/``inf`` would
        corrupt the queue order (or never run) and are rejected.
        """
        if not 0.0 <= delay < _INF:
            raise SimulationError(
                f"cannot schedule an event with a negative or non-finite delay (delay={delay})"
            )
        self._seq += 1
        event = [self._now + delay, self._seq, callback, args, _PENDING]
        heappush(self._heap, event)
        self._live += 1
        return EventHandle(event, self)

    def schedule_at(self, time: float, callback: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute simulation ``time``.

        ``time`` must be finite (no ``NaN``/``inf``) and not in the past.
        """
        # A single comparison chain rejects past times, NaN and +/-inf: NaN
        # compares false against everything, inf fails the right-hand bound.
        if not self._now <= time < _INF:
            if time != time or time in (_INF, -_INF):
                raise SimulationError(
                    f"cannot schedule an event at a non-finite time (t={time})"
                )
            raise SimulationError(
                f"cannot schedule an event at t={time} before current time t={self._now}"
            )
        self._seq += 1
        event = [time, self._seq, callback, args, _PENDING]
        heappush(self._heap, event)
        self._live += 1
        return EventHandle(event, self)

    def schedule_many(
        self, events: Iterable[Tuple[float, Callable[..., None], Tuple[Any, ...]]]
    ) -> None:
        """Schedule a batch of ``(delay, callback, args)`` entries at once.

        Equivalent to calling :meth:`schedule` per entry (same validation,
        same deterministic insertion order) but with the per-event
        bookkeeping hoisted out of the loop and no :class:`EventHandle`
        allocations -- batch-scheduled events cannot be cancelled
        individually.
        """
        now = self._now
        heap = self._heap
        push = heappush
        seq = self._seq
        scheduled = 0
        try:
            for delay, callback, args in events:
                if not 0.0 <= delay < _INF:
                    raise SimulationError(
                        "cannot schedule an event with a negative or non-finite delay "
                        f"(delay={delay})"
                    )
                seq += 1
                push(heap, [now + delay, seq, callback, args, _PENDING])
                scheduled += 1
        finally:
            self._seq = seq
            self._live += scheduled

    def advance_to(self, time: float) -> None:
        """Jump the clock forward to ``time`` without executing anything.

        This is the epoch-skip primitive of the hybrid execution mode
        (:mod:`repro.simulator.hybrid`): an analytically fast-forwarded
        failure-free epoch ends with one clock jump instead of thousands of
        per-message events.  The jump refuses to skip over any pending live
        event -- those must be drained (or be scheduled later than ``time``)
        first, otherwise they would execute in the past.
        """
        if not self._now <= time < _INF:
            raise SimulationError(
                f"cannot advance the clock to t={time} (now t={self._now})"
            )
        head = self._peek_time()
        if head is not None and head < time:
            raise SimulationError(
                f"cannot advance the clock to t={time} past a pending event "
                f"at t={head}"
            )
        self._now = time

    # ------------------------------------------------------- schedule policy
    def set_schedule_policy(
        self,
        chooser: Optional[Callable[[float, List[List[Any]]], int]],
        on_time_drained: Optional[Callable[[float], None]] = None,
    ) -> None:
        """Install (or clear, with ``None``) an equal-time tie-break policy.

        ``chooser(time, group)`` is called whenever more than one live event
        is admissible at the same simulation time; ``group`` is the list of
        raw queue entries (``[time, seq, callback, args, state]``) in
        canonical ``seq`` order and the chooser returns the index of the
        entry to execute next.  Events scheduled *during* the group at the
        same time join the group (they are admissible at that time too), so
        a policy explores exactly the orders the model leaves unconstrained;
        events at different times never reorder.

        ``on_time_drained(time)`` is invoked after the last event at each
        executed timestamp, before the clock moves on -- a quiescent point
        at which observers may *read* simulation state.  The hook must not
        schedule or cancel events.

        Policies only apply to :meth:`run`; :meth:`step` keeps the
        deterministic ``(time, seq)`` order.  Installing a policy mid-run is
        rejected: a half-explored group would corrupt the dispatch order.
        """
        if self._running:
            raise SimulationError("cannot change the schedule policy while running")
        self._policy = chooser
        self._on_time_drained = on_time_drained

    def _pop_time_group(self, time: float) -> List[List[Any]]:
        """Pop every live entry scheduled exactly at ``time``, in seq order.

        Every drain entry precedes every heap entry in ``seq`` (the drain is
        an older generation), and each tier yields ascending ``seq`` for a
        fixed time, so the concatenation is the canonical FIFO order.
        """
        group: List[List[Any]] = []
        drain = self._drain
        idx = self._drain_idx
        while idx < len(drain):
            entry = drain[idx]
            if entry[_TIME] != time:
                break
            idx += 1
            if entry[_STATE]:
                self._cancelled -= 1
            else:
                group.append(entry)
        self._drain_idx = idx
        heap = self._heap
        while heap and heap[0][_TIME] == time:
            entry = heappop(heap)
            if entry[_STATE]:
                self._cancelled -= 1
            else:
                group.append(entry)
        return group

    def _absorb_into_group(self, time: float, group: List[List[Any]]) -> None:
        """Move newly scheduled live entries at ``time`` into ``group``."""
        heap = self._heap
        while heap and heap[0][_TIME] == time:
            entry = heappop(heap)
            if entry[_STATE]:
                self._cancelled -= 1
            else:
                group.append(entry)

    def _prune_group(self, group: List[List[Any]]) -> List[List[Any]]:
        """Drop group members cancelled by a callback since they were popped.

        Popped entries live outside the queue tiers, so a compaction
        triggered meanwhile may already have reset the cancelled counter --
        hence the clamp at zero.
        """
        live: List[List[Any]] = []
        for entry in group:
            if entry[_STATE]:
                if self._cancelled > 0:
                    self._cancelled -= 1
            else:
                live.append(entry)
        return live

    def _requeue_group(self, group: List[List[Any]]) -> None:
        """Return unexecuted group members to the heap (bounded stop paths).

        Entries keep their original ``seq``, so re-popping them later
        reproduces the canonical order exactly.
        """
        for entry in group:
            if not entry[_STATE]:
                heappush(self._heap, entry)

    def _run_policy(
        self,
        until_time: Optional[float],
        max_events: Optional[int],
        stop_predicate: Optional[Callable[[], bool]],
    ) -> str:
        """The :meth:`run` loop under an installed schedule policy.

        Identical contract to the default loops (stop predicate before every
        event, same bound semantics); the only degree of freedom is which
        member of each equal-time group executes next.  With the FIFO
        chooser (always index 0) the event order is bit-identical to the
        policy-free loops.
        """
        chooser = self._policy
        if chooser is None:  # pragma: no cover - guarded by run()
            raise SimulationError("policy loop entered without a policy")
        on_drained = self._on_time_drained
        processed = 0
        executed_any = False
        while True:
            if stop_predicate is not None and stop_predicate():
                return "stopped"
            if max_events is not None and processed >= max_events:
                return "max_events"
            next_time = self._peek_time()
            if next_time is None:
                if executed_any and on_drained is not None:
                    on_drained(self._now)
                return "empty"
            if until_time is not None and next_time > until_time:
                if executed_any and on_drained is not None:
                    on_drained(self._now)
                self._now = until_time
                return "until_time"
            if executed_any and next_time > self._now and on_drained is not None:
                on_drained(self._now)
            group = self._pop_time_group(next_time)
            while group:
                if stop_predicate is not None and stop_predicate():
                    self._requeue_group(group)
                    return "stopped"
                if max_events is not None and processed >= max_events:
                    self._requeue_group(group)
                    return "max_events"
                group = self._prune_group(group)
                if not group:
                    break
                choice = 0 if len(group) == 1 else chooser(next_time, group)
                if not 0 <= choice < len(group):
                    raise SimulationError(
                        f"schedule policy chose index {choice} out of a "
                        f"group of {len(group)} events"
                    )
                entry = group.pop(choice)
                entry[_STATE] = _EXECUTED
                self._live -= 1
                self._now = entry[_TIME]
                self._events_processed += 1
                executed_any = True
                processed += 1
                entry[_CALLBACK](*entry[_ARGS])
                # Events the callback scheduled at this same time are
                # admissible now and join the group (with higher seq, so
                # FIFO order is preserved for the default chooser).
                self._absorb_into_group(next_time, group)

    # ------------------------------------------------------------ queue core
    def _next_event(self) -> Optional[List[Any]]:
        """Pop the earliest live entry across both tiers (None when empty).

        Consumes (and discounts) any cancelled entries encountered on the
        way.  The caller is responsible for marking the entry executed and
        updating ``_live`` / ``_now`` / ``_events_processed``.
        """
        drain = self._drain
        idx = self._drain_idx
        heap = self._heap
        while True:
            if idx < len(drain):
                entry = drain[idx]
                if heap and heap[0] < entry:
                    entry = heappop(heap)
                else:
                    idx += 1
            elif heap:
                if len(heap) > 1:
                    heap.sort()
                    self._drain = drain = heap
                    self._heap = heap = []
                    entry = drain[0]
                    idx = 1
                else:
                    entry = heap.pop()
            else:
                self._drain_idx = idx
                return None
            if entry[_STATE]:
                self._cancelled -= 1
                continue
            self._drain_idx = idx
            return entry

    def _peek_time(self) -> Optional[float]:
        """Earliest live event time without consuming it (None when empty)."""
        drain = self._drain
        idx = self._drain_idx
        while idx < len(drain) and drain[idx][_STATE]:
            idx += 1
            self._cancelled -= 1
        self._drain_idx = idx
        heap = self._heap
        while heap and heap[0][_STATE]:
            heappop(heap)
            self._cancelled -= 1
        head = drain[idx] if idx < len(drain) else None
        if heap and (head is None or heap[0] < head):
            head = heap[0]
        if head is None:
            return None
        head_time: float = head[_TIME]
        return head_time

    # --------------------------------------------------------------- running
    def step(self) -> bool:
        """Execute the next pending event.  Returns False when the queue is empty."""
        event = self._next_event()
        if event is None:
            return False
        event[_STATE] = _EXECUTED
        self._live -= 1
        self._now = event[_TIME]
        self._events_processed += 1
        event[_CALLBACK](*event[_ARGS])
        return True

    def run(
        self,
        until_time: Optional[float] = None,
        max_events: Optional[int] = None,
        stop_predicate: Optional[Callable[[], bool]] = None,
    ) -> str:
        """Run events until exhaustion or a bound is reached.

        Returns one of ``"empty"``, ``"until_time"``, ``"max_events"`` or
        ``"stopped"`` describing why the loop ended.  ``stop_predicate`` is
        consulted before *every* event (never batched away): the exact event
        count at which a run stops is part of the determinism contract.
        """
        self._running = True
        try:
            if self._policy is not None:
                return self._run_policy(until_time, max_events, stop_predicate)
            if until_time is None and max_events is None:
                # Hot path: no time/count bound (with or without a stop
                # predicate).  The queue tiers live in locals; ``_drain_idx``
                # is committed before each callback and every local re-read
                # after it, because callbacks may schedule, cancel and
                # compact.
                drain = self._drain
                idx = self._drain_idx
                heap = self._heap
                while True:
                    if stop_predicate is not None and stop_predicate():
                        self._drain_idx = idx
                        return "stopped"
                    # Pop the earliest live entry across both tiers,
                    # dropping cancelled entries on the way (fused peek/pop).
                    while True:
                        if idx < len(drain):
                            entry = drain[idx]
                            if heap and heap[0] < entry:
                                entry = heappop(heap)
                            else:
                                idx += 1
                        elif heap:
                            if len(heap) > 1:
                                heap.sort()
                                self._drain = drain = heap
                                self._heap = heap = []
                                entry = drain[0]
                                idx = 1
                            else:
                                entry = heap.pop()
                        else:
                            self._drain_idx = idx
                            return "empty"
                        if entry[4]:  # _CANCELLED (_EXECUTED never re-queued)
                            self._cancelled -= 1
                            continue
                        break
                    self._drain_idx = idx
                    entry[4] = _EXECUTED
                    self._live -= 1
                    self._now = entry[0]
                    self._events_processed += 1
                    entry[2](*entry[3])
                    drain = self._drain
                    idx = self._drain_idx
                    heap = self._heap
            # General path (time and/or event-count bounds active).
            processed = 0
            while True:
                if stop_predicate is not None and stop_predicate():
                    return "stopped"
                if max_events is not None and processed >= max_events:
                    return "max_events"
                next_time = self._peek_time()
                if next_time is None:
                    return "empty"
                if until_time is not None and next_time > until_time:
                    self._now = until_time
                    return "until_time"
                event = self._next_event()
                if event is None:
                    # Unreachable: _peek_time() just saw a live event and
                    # nothing ran in between; kept for type narrowing.
                    return "empty"
                event[_STATE] = _EXECUTED
                self._live -= 1
                self._now = event[_TIME]
                self._events_processed += 1
                event[_CALLBACK](*event[_ARGS])
                processed += 1
        finally:
            self._running = False


class Condition:
    """A one-shot or multi-shot synchronisation point.

    Protocol code fires conditions to release ranks that are blocked on
    :class:`repro.simulator.ops.WaitConditionOp` (e.g. HydEE's
    ``NotifySendMsg`` gate, Algorithm 2 line 8 / Algorithm 3 line 18) and to
    wake internal continuations (deferred sends).
    """

    __slots__ = ("name", "_fired", "_value", "_waiters")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._fired = False
        self._value: Any = None
        self._waiters: List[Callable[[Any], None]] = []

    @property
    def fired(self) -> bool:
        return self._fired

    @property
    def value(self) -> Any:
        return self._value

    def add_waiter(self, callback: Callable[[Any], None]) -> None:
        """Register ``callback(value)``; invoked immediately if already fired."""
        if self._fired:
            callback(self._value)
        else:
            self._waiters.append(callback)

    def fire(self, value: Any = None) -> None:
        """Fire the condition, waking every waiter exactly once."""
        if self._fired:
            return
        self._fired = True
        self._value = value
        waiters, self._waiters = self._waiters, []
        for callback in waiters:
            callback(value)

    def reset(self) -> None:
        """Re-arm the condition (waiters registered before reset are gone)."""
        self._fired = False
        self._value = None

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        state = "fired" if self._fired else f"pending({len(self._waiters)} waiters)"
        return f"Condition({self.name!r}, {state})"
