"""Operation descriptors yielded by application coroutines.

An application rank is a Python generator.  Blocking operations are expressed
by yielding one of the descriptors below (via the :class:`Communicator`
helpers, which are themselves generator functions so that application code
uniformly writes ``yield from comm.recv(...)``).  The rank driver
(:class:`repro.simulator.process.RankProcess`) interprets the descriptor,
blocks the rank if necessary and resumes the generator with the operation's
result.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

from repro.simulator.engine import Condition
from repro.simulator.messages import ANY_SOURCE, ANY_TAG
from repro.simulator.requests import Request


class Operation:
    """Marker base class for yieldable operations."""

    __slots__ = ()


@dataclass
class SendOp(Operation):
    """Blocking send of ``size_bytes`` to ``dest`` with matching ``tag``."""

    dest: int
    payload: Any
    tag: int = 0
    size_bytes: int = 0
    collective: bool = False


@dataclass
class RecvOp(Operation):
    """Blocking receive matching ``(source, tag)`` (wildcards allowed)."""

    source: int = ANY_SOURCE
    tag: int = ANY_TAG


@dataclass
class IsendOp(Operation):
    """Non-blocking send; the driver resumes immediately with a Request."""

    dest: int
    payload: Any
    tag: int = 0
    size_bytes: int = 0
    collective: bool = False


@dataclass
class IrecvOp(Operation):
    """Non-blocking receive post; the driver resumes immediately with a Request."""

    source: int = ANY_SOURCE
    tag: int = ANY_TAG


@dataclass
class WaitOp(Operation):
    """Wait for request completion.

    ``mode`` is one of ``"all"`` (default, resumes with the list of completion
    values), ``"any"`` (resumes with ``(index, value)``) and ``"one"``
    (single request, resumes with its value).
    """

    requests: Sequence[Request] = field(default_factory=list)
    mode: str = "all"


@dataclass
class ComputeOp(Operation):
    """Local computation taking ``seconds`` of simulated time."""

    seconds: float
    flops: Optional[float] = None


@dataclass
class WaitConditionOp(Operation):
    """Block until a :class:`Condition` fires; resumes with the fired value."""

    condition: Condition


@dataclass
class CheckpointOp(Operation):
    """Explicit request by the application to take a checkpoint now.

    Most experiments use protocol-driven checkpoints at iteration boundaries;
    this operation exists for applications that want to force one.
    """

    label: str = ""


@dataclass
class LocalEventOp(Operation):
    """A purely local event (used by tests to exercise the event model)."""

    name: str = "local"
    data: Any = None


#: Operations that the driver treats as communication for statistics purposes.
COMMUNICATION_OPS = (SendOp, RecvOp, IsendOp, IrecvOp, WaitOp)


def describe(op: Operation) -> str:
    """Short human-readable description of an operation (used in deadlock dumps)."""
    if isinstance(op, SendOp):
        return f"send(dest={op.dest}, tag={op.tag}, {op.size_bytes}B)"
    if isinstance(op, RecvOp):
        return f"recv(source={op.source}, tag={op.tag})"
    if isinstance(op, IsendOp):
        return f"isend(dest={op.dest}, tag={op.tag}, {op.size_bytes}B)"
    if isinstance(op, IrecvOp):
        return f"irecv(source={op.source}, tag={op.tag})"
    if isinstance(op, WaitOp):
        return f"wait(mode={op.mode}, n={len(op.requests)})"
    if isinstance(op, ComputeOp):
        return f"compute({op.seconds:.3g}s)"
    if isinstance(op, WaitConditionOp):
        return f"wait_condition({op.condition.name})"
    if isinstance(op, CheckpointOp):
        return f"checkpoint({op.label})"
    if isinstance(op, LocalEventOp):
        return f"local_event({op.name})"
    return repr(op)
