"""MPI-like communicator facade used by application code.

Convention (documented in :mod:`repro.workloads.base`):

* **blocking** calls are generator functions and must be invoked with
  ``yield from`` -- e.g. ``msg = yield from comm.recv(source=3)``;
* **non-blocking** calls (``isend``, ``irecv``, ``test``) are plain calls that
  return :class:`repro.simulator.requests.Request` handles; completion is
  awaited with ``yield from comm.wait(...)`` / ``waitall`` / ``waitany``;
* collectives are blocking generator functions built on top of point-to-point
  messages so that fault-tolerance protocols observe every byte that crosses
  the network (see :mod:`repro.simulator.collectives`).

Message sizes: the simulator separates the simulated wire size
(``size_bytes``) from the Python payload, so workloads can describe class-D
NAS exchanges without allocating gigabytes.  If ``size_bytes`` is omitted, a
small size is derived from the payload repr, which is good enough for tests.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from repro.errors import InvalidOperationError
from repro.simulator import collectives as _collectives
from repro.simulator.engine import Condition
from repro.simulator.messages import ANY_SOURCE, ANY_TAG
from repro.simulator.ops import (
    CheckpointOp,
    ComputeOp,
    LocalEventOp,
    RecvOp,
    SendOp,
    WaitConditionOp,
    WaitOp,
)
from repro.simulator.requests import RecvRequest, Request, SendRequest


def _default_size(payload: Any) -> int:
    if payload is None:
        return 8
    if isinstance(payload, (bytes, bytearray)):
        return len(payload)
    if isinstance(payload, (int, float, bool)):
        return 8
    if isinstance(payload, str):
        return len(payload)
    try:
        return 8 * len(payload)  # sequences of scalars
    except TypeError:
        return 64


class Communicator:
    """Per-rank communication endpoint (the ``MPI_COMM_WORLD`` equivalent)."""

    def __init__(self, sim, rank_process) -> None:
        self._sim = sim
        self._proc = rank_process
        self._collective_seq = 0

    # ------------------------------------------------------------------ info
    @property
    def rank(self) -> int:
        return self._proc.rank

    @property
    def size(self) -> int:
        return self._sim.nprocs

    @property
    def now(self) -> float:
        """Current simulation time (useful for workload-side measurements)."""
        return self._sim.engine.now

    # ------------------------------------------------------- blocking p2p
    def send(self, dest: int, payload: Any = None, tag: int = 0, size_bytes: Optional[int] = None):
        """Blocking send.  Use as ``yield from comm.send(...)``."""
        self._check_peer(dest)
        size = _default_size(payload) if size_bytes is None else int(size_bytes)
        yield SendOp(dest=dest, payload=payload, tag=tag, size_bytes=size)
        return None

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG):
        """Blocking receive.  Returns the :class:`Message`; use ``.payload``."""
        if source != ANY_SOURCE:
            self._check_peer(source)
        message = yield RecvOp(source=source, tag=tag)
        return message

    def sendrecv(
        self,
        dest: int,
        payload: Any,
        source: int,
        tag: int = 0,
        recv_tag: Optional[int] = None,
        size_bytes: Optional[int] = None,
    ):
        """Simultaneous send and receive (deadlock-free halo exchange helper)."""
        recv_tag = tag if recv_tag is None else recv_tag
        rreq = self.irecv(source=source, tag=recv_tag)
        sreq = self.isend(dest, payload, tag=tag, size_bytes=size_bytes)
        values = yield WaitOp(requests=[sreq, rreq], mode="all")
        return values[1]

    # --------------------------------------------------- non-blocking p2p
    def isend(
        self, dest: int, payload: Any = None, tag: int = 0, size_bytes: Optional[int] = None
    ) -> SendRequest:
        """Non-blocking send; returns a request (plain call, no yield)."""
        self._check_peer(dest)
        size = _default_size(payload) if size_bytes is None else int(size_bytes)
        return self._sim.initiate_isend(self._proc, dest, payload, tag, size)

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> RecvRequest:
        """Non-blocking receive post; returns a request (plain call, no yield)."""
        if source != ANY_SOURCE:
            self._check_peer(source)
        return self._proc.post_receive(source, tag)

    @staticmethod
    def test(request: Request) -> bool:
        return request.test()

    def wait(self, request: Request):
        """Wait for one request; returns its completion value."""
        value = yield WaitOp(requests=[request], mode="one")
        return value

    def waitall(self, requests: Sequence[Request]):
        """Wait for all requests; returns the list of completion values."""
        if not requests:
            return []
        values = yield WaitOp(requests=list(requests), mode="all")
        return values

    def waitany(self, requests: Sequence[Request]):
        """Wait for the first completed request; returns ``(index, value)``."""
        if not requests:
            raise InvalidOperationError("waitany requires at least one request")
        value = yield WaitOp(requests=list(requests), mode="any")
        return value

    # ------------------------------------------------------------- local ops
    def compute(self, seconds: float, flops: Optional[float] = None):
        """Spend ``seconds`` of local computation time."""
        if seconds < 0:
            raise InvalidOperationError("compute time must be non-negative")
        if seconds > 0:
            yield ComputeOp(seconds=seconds, flops=flops)
        return None

    def wait_condition(self, condition: Condition):
        """Block until ``condition`` fires (used by protocol-aware workloads)."""
        value = yield WaitConditionOp(condition=condition)
        return value

    def checkpoint(self, label: str = ""):
        """Request a local checkpoint at this point of the application."""
        yield CheckpointOp(label=label)
        return None

    def local_event(self, name: str = "local", data: Any = None):
        """Record a purely local event (no time, no communication)."""
        yield LocalEventOp(name=name, data=data)
        return None

    # ------------------------------------------------------------ collectives
    def _next_collective_tag(self) -> int:
        self._collective_seq += 1
        return _collectives.COLLECTIVE_TAG_BASE + self._collective_seq

    def barrier(self):
        """Dissemination barrier."""
        return (yield from _collectives.barrier(self))

    def bcast(self, value: Any, root: int = 0, size_bytes: Optional[int] = None):
        """Binomial-tree broadcast; every rank returns the root's value."""
        return (yield from _collectives.bcast(self, value, root, size_bytes))

    def reduce(self, value: Any, op=None, root: int = 0, size_bytes: Optional[int] = None):
        """Binomial-tree reduction to ``root`` (returns None elsewhere)."""
        return (yield from _collectives.reduce(self, value, op, root, size_bytes))

    def allreduce(self, value: Any, op=None, size_bytes: Optional[int] = None):
        """Reduce-then-broadcast allreduce."""
        return (yield from _collectives.allreduce(self, value, op, size_bytes))

    def gather(self, value: Any, root: int = 0, size_bytes: Optional[int] = None):
        """Linear gather to ``root`` (returns the list at root, None elsewhere)."""
        return (yield from _collectives.gather(self, value, root, size_bytes))

    def allgather(self, value: Any, size_bytes: Optional[int] = None):
        """Ring allgather; every rank returns the list of contributions."""
        return (yield from _collectives.allgather(self, value, size_bytes))

    def scatter(self, values: Optional[Sequence[Any]], root: int = 0,
                size_bytes: Optional[int] = None):
        """Linear scatter from ``root``; returns this rank's element."""
        return (yield from _collectives.scatter(self, values, root, size_bytes))

    def alltoall(self, values: Sequence[Any], size_bytes: Optional[int] = None):
        """Pairwise-exchange all-to-all; returns the list received (by source rank)."""
        return (yield from _collectives.alltoall(self, values, size_bytes))

    # ------------------------------------------------------------------ misc
    def _check_peer(self, peer: int) -> None:
        if not (0 <= peer < self._sim.nprocs):
            raise InvalidOperationError(
                f"rank {self.rank}: peer {peer} outside communicator of size {self._sim.nprocs}"
            )
        if peer == self.rank:
            raise InvalidOperationError(
                f"rank {self.rank}: self-sends are not supported by the simulator"
            )

    def __repr__(self) -> str:  # pragma: no cover
        return f"Communicator(rank={self.rank}, size={self.size})"
