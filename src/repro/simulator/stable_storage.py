"""Simulated stable storage for process checkpoints.

The paper assumes checkpoints are written to reliable storage (Section II-A,
footnote 1: checkpoints live on stable storage but failure containment itself
does not rely on it).  The simulation keeps checkpoints in an in-memory store
that survives process failures and optionally charges a write cost derived
from a storage bandwidth, which is what creates the I/O-burst concern for
globally coordinated checkpointing discussed in the related-work section.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.errors import SimulationError


@dataclass
class CheckpointRecord:
    """One process checkpoint.

    Attributes mirror line 21 of Algorithm 1: the process image (application
    iteration + application state), the RPP table, the sender-based message
    logs, the phase and the date.  Baseline protocols reuse the same record
    type and simply leave the HydEE-specific fields empty.
    """

    rank: int
    checkpoint_id: int
    iteration: int
    app_state: Any
    time: float
    #: number of application sends the rank had initiated when checkpointing
    #: (used to rebuild logical send sequences after a rollback).
    sends_at_checkpoint: int = 0
    #: protocol-specific payload (dates, phases, RPP, message logs, ...).
    protocol_state: Dict[str, Any] = field(default_factory=dict)
    size_bytes: int = 0

    def restore_app_state(self) -> Any:
        """Return a private copy of the checkpointed application state."""
        return copy.deepcopy(self.app_state)


class StableStorage:
    """Reliable checkpoint store shared by all ranks.

    ``write_bandwidth_bytes_per_s`` prices the checkpoint write; a value of
    ``None`` makes writes free (useful for protocol-logic tests).  The store
    keeps every checkpoint but only the most recent one per rank is needed by
    the protocols (Section III-E: older checkpoints and the logged messages
    they reference are garbage collected).
    """

    def __init__(self, write_bandwidth_bytes_per_s: Optional[float] = 1.0e9) -> None:
        self.write_bandwidth_bytes_per_s = write_bandwidth_bytes_per_s
        self._checkpoints: Dict[int, List[CheckpointRecord]] = {}
        self._next_id = 1
        self.bytes_written = 0
        self.writes = 0

    # ------------------------------------------------------------------ write
    def write_cost(self, size_bytes: int) -> float:
        if not self.write_bandwidth_bytes_per_s:
            return 0.0
        return size_bytes / self.write_bandwidth_bytes_per_s

    def save(
        self,
        rank: int,
        iteration: int,
        app_state: Any,
        time: float,
        sends_at_checkpoint: int = 0,
        protocol_state: Optional[Dict[str, Any]] = None,
        size_bytes: int = 0,
    ) -> CheckpointRecord:
        record = CheckpointRecord(
            rank=rank,
            checkpoint_id=self._next_id,
            iteration=iteration,
            app_state=copy.deepcopy(app_state),
            time=time,
            sends_at_checkpoint=sends_at_checkpoint,
            protocol_state=copy.deepcopy(protocol_state or {}),
            size_bytes=size_bytes,
        )
        self._next_id += 1
        self._checkpoints.setdefault(rank, []).append(record)
        self.bytes_written += size_bytes
        self.writes += 1
        return record

    # ------------------------------------------------------------------ read
    def latest(self, rank: int) -> Optional[CheckpointRecord]:
        records = self._checkpoints.get(rank)
        return records[-1] if records else None

    def all_for(self, rank: int) -> List[CheckpointRecord]:
        return list(self._checkpoints.get(rank, []))

    def latest_common_iteration(self, ranks) -> Optional[int]:
        """Largest iteration for which every rank in ``ranks`` has a checkpoint."""
        iterations: Optional[set] = None
        for rank in ranks:
            have = {rec.iteration for rec in self._checkpoints.get(rank, [])}
            iterations = have if iterations is None else (iterations & have)
        if not iterations:
            return None
        return max(iterations)

    def checkpoint_at(self, rank: int, iteration: int) -> CheckpointRecord:
        for record in reversed(self._checkpoints.get(rank, [])):
            if record.iteration == iteration:
                return record
        raise SimulationError(f"rank {rank} has no checkpoint at iteration {iteration}")

    # --------------------------------------------------------------- cleanup
    def garbage_collect(self, rank: int, keep_latest: int = 1) -> int:
        """Drop all but the ``keep_latest`` most recent checkpoints of ``rank``."""
        records = self._checkpoints.get(rank, [])
        removed = max(0, len(records) - keep_latest)
        if removed:
            self._checkpoints[rank] = records[-keep_latest:]
        return removed

    def count(self, rank: Optional[int] = None) -> int:
        if rank is not None:
            return len(self._checkpoints.get(rank, []))
        return sum(len(v) for v in self._checkpoints.values())
