"""Simulated stable storage for process checkpoints.

The paper assumes checkpoints are written to reliable storage (Section II-A,
footnote 1: checkpoints live on stable storage but failure containment itself
does not rely on it).  The simulation keeps checkpoints in an in-memory store
that survives process failures and optionally charges a write cost derived
from a storage bandwidth, which is what creates the I/O-burst concern for
globally coordinated checkpointing discussed in the related-work section.

Snapshot strategies
-------------------
Saving a checkpoint used to ``copy.deepcopy`` the application state (and
restore deep-copied it again), which dominated checkpoint-heavy runs.  The
store now delegates to a pluggable :class:`SnapshotStrategy`:

* :class:`DeepcopySnapshotStrategy` reproduces the old behaviour and remains
  the default for arbitrary state objects;
* :class:`ApplicationSnapshotStrategy` adapts a workload exposing
  ``snapshot_state()`` / ``restore_state()`` (every workload in
  :mod:`repro.workloads` does), which return immutable, structurally-shared
  snapshots instead of deep copies.

Either way the contract is identical: the stored snapshot is isolated from
later mutations of the live state, and every ``restore_app_state()`` call
returns a fresh, independent state.

``protocol_state`` is *not* copied at all: protocol checkpoint payloads
(:meth:`repro.simulator.protocol_api.ProtocolHooks` subclasses'
``_checkpoint_payload``) are required to already be private snapshots --
freshly-built structures that the protocol never mutates afterwards and that
restoring code only reads.  All protocol payload builders in this repository
(:class:`~repro.core.state.HydEERankState`, the message-logging rank state)
honour that contract.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.errors import ConfigurationError, SimulationError


class SnapshotStrategy:
    """How checkpoints capture and rebuild application state."""

    def snapshot(self, state: Any) -> Any:
        """Return an immutable/private snapshot of ``state``."""
        raise NotImplementedError

    def restore(self, snapshot: Any) -> Any:
        """Return a fresh, independent live state built from ``snapshot``."""
        raise NotImplementedError


class DeepcopySnapshotStrategy(SnapshotStrategy):
    """The conservative fallback: deep-copy on save and on every restore."""

    def snapshot(self, state: Any) -> Any:
        return copy.deepcopy(state)

    def restore(self, snapshot: Any) -> Any:
        return copy.deepcopy(snapshot)


class ApplicationSnapshotStrategy(SnapshotStrategy):
    """Delegate to a workload's ``snapshot_state`` / ``restore_state`` pair."""

    def __init__(self, application: Any) -> None:
        self._snapshot_state = application.snapshot_state
        self._restore_state = application.restore_state

    def snapshot(self, state: Any) -> Any:
        return self._snapshot_state(state)

    def restore(self, snapshot: Any) -> Any:
        return self._restore_state(snapshot)


def snapshot_strategy_for(application: Any) -> SnapshotStrategy:
    """Pick the best snapshot strategy an application supports.

    Applications exposing ``snapshot_state``/``restore_state`` (the
    :class:`repro.workloads.base.Application` interface) get the fast
    structurally-shared scheme; anything else falls back to deepcopy.
    """
    if callable(getattr(application, "snapshot_state", None)) and callable(
        getattr(application, "restore_state", None)
    ):
        return ApplicationSnapshotStrategy(application)
    return DeepcopySnapshotStrategy()


@dataclass
class CheckpointRecord:
    """One process checkpoint.

    Attributes mirror line 21 of Algorithm 1: the process image (application
    iteration + application state snapshot), the RPP table, the sender-based
    message logs, the phase and the date.  Baseline protocols reuse the same
    record type and simply leave the HydEE-specific fields empty.
    """

    rank: int
    checkpoint_id: int
    iteration: int
    #: snapshot of the application state (shape depends on the strategy).
    app_state: Any
    time: float
    #: number of application sends the rank had initiated when checkpointing
    #: (used to rebuild logical send sequences after a rollback).
    sends_at_checkpoint: int = 0
    #: protocol-specific payload (dates, phases, RPP, message logs, ...).
    protocol_state: Dict[str, Any] = field(default_factory=dict)
    size_bytes: int = 0
    #: rebuilds a live state from ``app_state`` (None = deepcopy fallback,
    #: which keeps directly-constructed records behaving as before).
    restore_fn: Optional[Callable[[Any], Any]] = None

    def restore_app_state(self) -> Any:
        """Return a private copy of the checkpointed application state."""
        if self.restore_fn is not None:
            return self.restore_fn(self.app_state)
        return copy.deepcopy(self.app_state)


class StableStorage:
    """Reliable checkpoint store shared by all ranks.

    ``write_bandwidth_bytes_per_s`` prices the checkpoint write; ``None`` is
    the explicit free-writes switch (useful for protocol-logic tests), any
    other value must be a positive bandwidth -- zero or negative values are
    rejected at construction instead of silently meaning "free".  The store
    keeps every checkpoint but only the most recent one per rank is needed by
    the protocols (Section III-E: older checkpoints and the logged messages
    they reference are garbage collected).
    """

    def __init__(
        self,
        write_bandwidth_bytes_per_s: Optional[float] = 1.0e9,
        snapshot_strategy: Optional[SnapshotStrategy] = None,
    ) -> None:
        if write_bandwidth_bytes_per_s is not None and not (
            write_bandwidth_bytes_per_s > 0
        ):
            raise ConfigurationError(
                "write_bandwidth_bytes_per_s must be positive "
                f"(got {write_bandwidth_bytes_per_s}); pass None for free writes"
            )
        self.write_bandwidth_bytes_per_s = write_bandwidth_bytes_per_s
        self.snapshot_strategy = snapshot_strategy or DeepcopySnapshotStrategy()
        self._checkpoints: Dict[int, List[CheckpointRecord]] = {}
        self._next_id = 1
        self.bytes_written = 0
        self.writes = 0

    # ------------------------------------------------------------------ write
    def write_cost(self, size_bytes: int) -> float:
        if self.write_bandwidth_bytes_per_s is None:
            return 0.0
        return size_bytes / self.write_bandwidth_bytes_per_s

    def save(
        self,
        rank: int,
        iteration: int,
        app_state: Any,
        time: float,
        sends_at_checkpoint: int = 0,
        protocol_state: Optional[Dict[str, Any]] = None,
        size_bytes: int = 0,
    ) -> CheckpointRecord:
        """Store a checkpoint of ``app_state`` (snapshotted by the strategy).

        ``protocol_state`` must already be a private snapshot (see the module
        docstring); it is stored as-is.
        """
        strategy = self.snapshot_strategy
        record = CheckpointRecord(
            rank=rank,
            checkpoint_id=self._next_id,
            iteration=iteration,
            app_state=strategy.snapshot(app_state),
            time=time,
            sends_at_checkpoint=sends_at_checkpoint,
            protocol_state=protocol_state if protocol_state is not None else {},
            size_bytes=size_bytes,
            restore_fn=strategy.restore,
        )
        self._next_id += 1
        self._checkpoints.setdefault(rank, []).append(record)
        self.bytes_written += size_bytes
        self.writes += 1
        return record

    # ------------------------------------------------------------------ read
    def latest(self, rank: int) -> Optional[CheckpointRecord]:
        records = self._checkpoints.get(rank)
        return records[-1] if records else None

    def all_for(self, rank: int) -> List[CheckpointRecord]:
        return list(self._checkpoints.get(rank, []))

    def latest_common_iteration(self, ranks) -> Optional[int]:
        """Largest iteration for which every rank in ``ranks`` has a checkpoint."""
        iterations: Optional[set] = None
        for rank in ranks:
            have = {rec.iteration for rec in self._checkpoints.get(rank, [])}
            iterations = have if iterations is None else (iterations & have)
        if not iterations:
            return None
        return max(iterations)

    def checkpoint_at(self, rank: int, iteration: int) -> CheckpointRecord:
        for record in reversed(self._checkpoints.get(rank, [])):
            if record.iteration == iteration:
                return record
        raise SimulationError(f"rank {rank} has no checkpoint at iteration {iteration}")

    # --------------------------------------------------------------- cleanup
    def garbage_collect(self, rank: int, keep_latest: int = 1) -> int:
        """Drop all but the ``keep_latest`` most recent checkpoints of ``rank``."""
        records = self._checkpoints.get(rank, [])
        removed = max(0, len(records) - keep_latest)
        if removed:
            self._checkpoints[rank] = records[-keep_latest:]
        return removed

    def count(self, rank: Optional[int] = None) -> int:
        if rank is not None:
            return len(self._checkpoints.get(rank, []))
        return sum(len(v) for v in self._checkpoints.values())
