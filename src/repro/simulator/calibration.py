"""Shared warm-up calibration cache for hybrid execution.

A hybrid run (see :mod:`repro.simulator.hybrid`) starts with a full-DES
warm-up whose only product is a calibrated :class:`~repro.simulator.hybrid.
RateModel`.  Monte Carlo replicas of the same spec differ *only* in their
failure draw -- the failure-free warm-up timing is identical across the
whole campaign -- so re-running the warm-up per replica is pure overhead.

:class:`CalibrationCache` stores serialised rate models keyed by
:meth:`repro.scenarios.spec.ScenarioSpec.calibration_key` -- a spec hash
with the failure-related fields stripped, so any spec change that could
affect iteration timing re-keys (and thereby invalidates) the entry, while
replicas and fault-model sweeps of one scenario share it.  A cached model is
*not* trusted blindly at run time: the director still verifies every batched
advance with the two-probe check, so a stale-but-same-key entry can degrade
throughput, never accuracy.

Determinism contract: a replica that runs with a cached model produces a
different (warm-up-free) event history than one that calibrates itself, so
whether the cache is warm must never depend on worker scheduling.  The
campaign layer therefore pre-warms the cache *before* fanning replicas out
(:func:`repro.faults.montecarlo.run_montecarlo`), and the director only ever
reads the active cache -- it never writes it -- keeping serial and
``--workers N`` campaigns byte-identical.

The cache file lives alongside the campaign's results store and follows the
same flock + atomic-replace discipline (:mod:`repro.fslock`), so concurrent
campaign workers never corrupt a shared entry.

Activation is process-wide: :func:`activate` installs a cache path both in
this process and -- through the ``REPRO_CALIBRATION_CACHE`` environment
variable -- in worker processes started afterwards (fork or spawn).
"""

from __future__ import annotations

import json
import os
from contextlib import contextmanager
from typing import Any, Dict, Iterator, Optional

from repro.fslock import atomic_write_json, exclusive_lock

CACHE_VERSION = 1
_ENV_VAR = "REPRO_CALIBRATION_CACHE"

#: process-local active cache (takes precedence over the environment).
_active: Optional["CalibrationCache"] = None


class CalibrationCache:
    """JSON-file-backed (or purely in-memory) calibration-entry cache."""

    def __init__(self, path: Optional[str] = None) -> None:
        self.path = path
        self._entries: Dict[str, Dict[str, Any]] = {}
        if path is not None and os.path.exists(path):
            self._entries = self._read_entries()

    # ------------------------------------------------------------------- i/o
    def _read_entries(self) -> Dict[str, Dict[str, Any]]:
        assert self.path is not None  # callers check before reading
        with open(self.path, encoding="utf-8") as fh:
            data = json.load(fh)
        if not isinstance(data, dict) or "entries" not in data:
            raise ValueError(f"{self.path}: not a calibration cache")
        version = data.get("version")
        if version != CACHE_VERSION:
            raise ValueError(
                f"{self.path}: unsupported calibration-cache version "
                f"{version!r}; this build reads version {CACHE_VERSION}"
            )
        return dict(data["entries"])

    def save(self) -> None:
        """Write the cache atomically, merging concurrent writers' entries.

        Same discipline as :meth:`repro.campaign.store.ResultsStore.save`:
        an exclusive lock on ``<path>.lock`` serialises the merge-and-replace
        and entries written by other processes since our load are merged in
        (this process's entries win on key collisions -- by construction
        they describe the same calibration anyway).
        """
        if self.path is None:
            return
        with exclusive_lock(self.path):
            if os.path.exists(self.path):
                merged = self._read_entries()
                merged.update(self._entries)
                self._entries = merged
            atomic_write_json(
                self.path, {"version": CACHE_VERSION, "entries": self._entries}
            )

    # --------------------------------------------------------------- entries
    def get(self, key: Optional[str]) -> Optional[Dict[str, Any]]:
        if key is None:
            return None
        return self._entries.get(key)

    def put(self, key: str, entry: Dict[str, Any]) -> None:
        self._entries[key] = entry

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)


# ------------------------------------------------------------------ activation
def active_cache() -> Optional[CalibrationCache]:
    """The cache hybrid directors should consult, or ``None``.

    Preference order: a cache activated in this process, then one inherited
    from a parent process through ``REPRO_CALIBRATION_CACHE`` (campaign
    worker processes land here -- the parent pre-warmed the file before the
    fan-out, so loading it is enough).
    """
    if _active is not None:
        return _active
    path = os.environ.get(_ENV_VAR)
    if path:
        try:
            return CalibrationCache(path)
        except (OSError, ValueError):  # unreadable/corrupt: behave as cold
            return None
    return None


@contextmanager
def activated(cache: CalibrationCache) -> Iterator[CalibrationCache]:
    """Make ``cache`` the active cache for the block (and for child
    processes started inside it, via the environment)."""
    global _active
    previous, previous_env = _active, os.environ.get(_ENV_VAR)
    _active = cache
    if cache.path is not None:
        os.environ[_ENV_VAR] = cache.path
    try:
        yield cache
    finally:
        _active = previous
        if cache.path is not None:
            if previous_env is None:
                os.environ.pop(_ENV_VAR, None)
            else:
                os.environ[_ENV_VAR] = previous_env
