"""Discrete-event MPI simulation substrate.

This subpackage is the stand-in for the MPICH2/nemesis + Myrinet MX stack the
paper's prototype was built on.  It provides:

* a deterministic discrete-event engine (:mod:`repro.simulator.engine`),
* an MPI-like communication API with blocking and non-blocking point-to-point
  operations and collectives built over point-to-point
  (:mod:`repro.simulator.communicator`, :mod:`repro.simulator.collectives`),
* reliable FIFO channels with an analytic network performance model
  (:mod:`repro.simulator.channel`, :mod:`repro.simulator.network`),
* fail-stop failure injection (:mod:`repro.simulator.failures`),
* simulated stable storage for checkpoints
  (:mod:`repro.simulator.stable_storage`),
* event tracing and communication accounting (:mod:`repro.simulator.trace`).

Applications are written as Python generators; blocking operations are
expressed with ``yield`` / ``yield from`` so that the engine can interleave
ranks deterministically (see :mod:`repro.workloads.base`).
"""

from repro.simulator.engine import SimulationEngine
from repro.simulator.messages import Message, MessageKind, ANY_SOURCE, ANY_TAG
from repro.simulator.network import (
    NetworkModel,
    MyrinetMXModel,
    EthernetTCPModel,
    PiggybackPolicy,
    RoutedNetworkModel,
)
from repro.simulator.requests import Request, RequestState
from repro.simulator.process import RankProcess, RankState
from repro.simulator.communicator import Communicator
from repro.simulator.failures import FailureEvent, FailureInjector
from repro.simulator.stable_storage import StableStorage, CheckpointRecord
from repro.simulator.trace import TraceRecorder, CommunicationRecord
from repro.simulator.simulation import Simulation, SimulationConfig, SimulationResult

__all__ = [
    "SimulationEngine",
    "Message",
    "MessageKind",
    "ANY_SOURCE",
    "ANY_TAG",
    "NetworkModel",
    "MyrinetMXModel",
    "EthernetTCPModel",
    "PiggybackPolicy",
    "RoutedNetworkModel",
    "Request",
    "RequestState",
    "RankProcess",
    "RankState",
    "Communicator",
    "FailureEvent",
    "FailureInjector",
    "StableStorage",
    "CheckpointRecord",
    "TraceRecorder",
    "CommunicationRecord",
    "Simulation",
    "SimulationConfig",
    "SimulationResult",
]
