"""Fail-stop failure injection.

The paper's failure model (Section II-A) is fail-stop with possibly multiple
concurrent failures.  The injector supports scheduling failures

* at an absolute simulation time,
* when a rank completes a given application iteration,
* as a group (several ranks failing at the same instant, e.g. a node or a
  whole cluster), which is how the "multiple concurrent failures" experiments
  are expressed.

When a failure fires, the injector notifies the attached protocol through
:meth:`repro.simulator.protocol_api.ProtocolHooks.on_failure`; the protocol is
responsible for rolling back the appropriate ranks (for HydEE: the failed
processes' clusters only).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, List, Optional, Sequence, Set

from repro.errors import ConfigurationError, SimulationError
from repro.simulator.process import RankState

if TYPE_CHECKING:  # pragma: no cover
    from repro.simulator.simulation import Simulation


def validate_failure_group(what: str, ranks: Sequence[int],
                           time: Optional[float]) -> None:
    """Shared (ranks, time) validation of every failure-description layer.

    :class:`FailureEvent`, the declarative
    :class:`~repro.scenarios.spec.FailureSpec` and the trace-level
    :class:`~repro.faults.trace.TraceEntry` all describe "these ranks fail
    together at this time" and share one rule set: at least one rank, no
    duplicates, and -- when a time is given -- a finite number >= 0.
    """
    if not ranks:
        raise ConfigurationError(f"a {what} needs at least one rank")
    if len(set(ranks)) != len(ranks):
        raise ConfigurationError(f"a {what} lists duplicate ranks: {list(ranks)}")
    if time is not None:
        if not isinstance(time, (int, float)) or isinstance(time, bool) \
                or not math.isfinite(time):
            raise ConfigurationError(
                f"{what} time must be a finite number, got {time!r}"
            )
        if time < 0:
            raise ConfigurationError(f"{what} time must be >= 0, got {time!r}")


@dataclass
class FailureEvent:
    """Specification of one failure to inject.

    Exactly one of ``time`` or ``(rank_trigger, at_iteration)`` must be set.

    Attributes
    ----------
    ranks:
        Ranks that fail together (concurrently).
    time:
        Absolute simulation time of the failure.
    at_iteration:
        Fire when ``rank_trigger`` (defaults to the first rank of ``ranks``)
        completes this iteration.
    """

    ranks: Sequence[int]
    time: Optional[float] = None
    at_iteration: Optional[int] = None
    rank_trigger: Optional[int] = None
    fired: bool = field(default=False, init=False)
    #: times this event's strike was postponed behind an active recovery
    #: session (see FailureInjector.RETRY_DELAY_S / MAX_EVENT_DEFERRALS).
    deferrals: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        validate_failure_group("failure event", self.ranks, self.time)
        if (self.time is None) == (self.at_iteration is None):
            raise ConfigurationError(
                "specify exactly one of `time` or `at_iteration` for a failure event"
            )
        if self.rank_trigger is None:
            self.rank_trigger = self.ranks[0]
        # NOTE: a trigger *outside* ranks stays legal at this level ("kill X
        # when Y completes iteration N" is a useful test harness); the
        # declarative FailureSpec is stricter because retargeting after the
        # trigger dies only works within the event's own ranks.


class FailureInjector:
    """Schedules and fires :class:`FailureEvent` objects.

    A strike that lands while the protocol's recovery session is still
    active is *deferred*: re-scheduled every :data:`RETRY_DELAY_S` until
    recovery completes, then fired.  The paper's protocols handle multiple
    *simultaneous* failures (one event, several ranks) but model recovery
    sessions as non-overlapping; stochastic fault traces
    (:mod:`repro.faults`) routinely draw a failure inside another
    failure's recovery window, and killing the run there would bias every
    Monte Carlo statistic toward calm replicas.
    """

    #: deferral quantum for strikes landing during an active recovery.
    RETRY_DELAY_S = 5.0e-5
    #: per-event cap on consecutive deferrals: 100k x RETRY_DELAY_S = five
    #: simulated seconds of one uninterrupted recovery session, orders of
    #: magnitude past any legal scenario -- only a protocol whose
    #: recovery_in_progress() is stuck true can reach it.
    MAX_EVENT_DEFERRALS = 100_000

    def __init__(self, events: Optional[Iterable[FailureEvent]] = None) -> None:
        self.events: List[FailureEvent] = list(events or [])
        self._sim: Optional["Simulation"] = None
        self.failed_ranks: Set[int] = set()
        self.failure_times: List[float] = []
        #: iteration-triggered failures armed (scheduled) but not yet fired.
        #: The simulation refuses to declare completion while this is non-zero
        #: so a failure triggered by a rank's *last* iteration still strikes.
        self.armed_fires: int = 0
        #: iteration-triggered events re-targeted to a surviving rank after
        #: their trigger rank died for good (see _retarget_dead_triggers).
        self.retargeted_events: int = 0
        #: iteration-triggered events disarmed because no rank of theirs
        #: survived to trigger (or suffer) them.
        self.disarmed_events: int = 0
        #: strikes postponed because a recovery session was still active
        #: (each RETRY_DELAY_S postponement counts once).
        self.deferred_fires: int = 0
        #: time-triggered strikes scheduled at attach() and not yet fired.
        #: The hybrid director uses this to recognise quiescence: when it is
        #: the only thing left in the engine queue, every unfired event is a
        #: *future* timed failure and the epoch in between can be skipped.
        self.pending_timed_fires: int = 0
        #: id()s of timed events whose attach()-scheduled entry was consumed
        #: (identity, not equality: FailureEvent is a value-equal dataclass).
        self._timed_consumed: Set[int] = set()

    def add(self, event: FailureEvent) -> None:
        self.events.append(event)

    # ------------------------------------------------------------------ wiring
    def attach(self, sim: "Simulation") -> None:
        self._sim = sim
        for event in self.events:
            bad = [r for r in event.ranks if r not in sim.ranks]
            if bad:
                raise ConfigurationError(
                    f"failure event names ranks {bad} outside the simulation's "
                    f"0..{sim.nprocs - 1}"
                )
            if event.rank_trigger is not None and event.rank_trigger not in sim.ranks:
                # An out-of-range trigger would never complete an iteration:
                # the event could silently never fire.
                raise ConfigurationError(
                    f"failure event trigger rank {event.rank_trigger} is "
                    f"outside the simulation's 0..{sim.nprocs - 1}"
                )
            if event.time is not None:
                sim.engine.schedule_at(event.time, self._fire, event)
                self.pending_timed_fires += 1

    def on_iteration_completed(self, rank: int, iteration: int) -> None:
        """Called by the rank driver after each completed iteration."""
        if self._sim is None:
            return
        armed = []
        for event in self.events:
            if (
                not event.fired
                and event.at_iteration is not None
                and event.rank_trigger == rank
                and iteration >= event.at_iteration
            ):
                self.armed_fires += 1
                event.fired = True
                armed.append(event)
        if armed:
            # Fire "now" (zero delay so the failing rank has fully returned
            # from its iteration first) -- as ONE event striking in spec
            # order, not one event per strike: same-time events dispatch in
            # insertion order only, and several strikes armed by one boundary
            # must not leave their relative order to that tie-break.
            self._sim.engine.schedule(0.0, self._fire_armed_batch, armed)

    # ------------------------------------------------------------------ firing
    def _recovery_active(self) -> bool:
        return self._sim is not None and self._sim.protocol.recovery_in_progress()

    def _defer_batch(self, events) -> None:
        for event in events:
            self.deferred_fires += 1
            event.deferrals += 1
            if event.deferrals > self.MAX_EVENT_DEFERRALS:
                # A recovery session that never winds down is a protocol bug;
                # without this guard the retry event would keep the queue
                # non-empty forever and mask what should be a deadlock report.
                # (Per event, not run-wide: a dense-but-legal trace may rack
                # up many deferrals in total across many strikes.)
                raise SimulationError(
                    f"one failure strike deferred more than "
                    f"{self.MAX_EVENT_DEFERRALS} times: the protocol reports "
                    "recovery_in_progress() indefinitely"
                )
        self._sim.engine.schedule(self.RETRY_DELAY_S, self._fire_armed_batch, list(events))

    def _fire_armed_batch(self, events) -> None:
        """Land armed strikes in spec order; re-defer the remainder together.

        A strike that opens a recovery session defers every strike behind it
        in the batch (the completion predicate keeps waiting for them), so
        the relative order of simultaneous strikes is the deterministic spec
        order, never an engine tie-break.
        """
        for index, event in enumerate(events):
            if self._recovery_active():
                self._defer_batch(events[index:])
                return
            self.armed_fires -= 1
            self._fire(event)

    def _fire(self, event: FailureEvent) -> None:
        if self._sim is None:
            return
        if event.time is not None and event.fired:
            return
        if event.time is not None and id(event) not in self._timed_consumed:
            # The original attach()-scheduled engine entry is gone now,
            # whether the strike lands immediately or enters the deferred
            # pipeline below (armed_fires then keeps the run waiting for it).
            self._timed_consumed.add(id(event))
            self.pending_timed_fires -= 1
        if self._recovery_active():
            # Arm the strike while it waits: its nominal time has passed, so
            # the run must not be declared complete before it lands (same
            # contract as an iteration-triggered strike armed by a rank's
            # last iteration).
            self.armed_fires += 1
            self._defer_batch([event])
            return
        event.fired = True
        # "Alive" is the rank's *current* state, not failure history: a rank
        # that failed, was rolled back and restarted by the protocol can fail
        # again (stochastic fault traces routinely re-draw the same node).
        # Ranks that are dead right now are skipped, as before.
        alive = []
        for rank in event.ranks:
            proc = self._sim.ranks.get(rank)
            if proc is not None and proc.state is not RankState.FAILED:
                alive.append(rank)
        if not alive:
            return
        now = self._sim.engine.now
        self.failure_times.append(now)
        self.failed_ranks.update(alive)
        self._sim.kill_ranks(alive)
        self._sim.protocol.on_failure(alive, now)
        self._retarget_dead_triggers()

    def _retarget_dead_triggers(self) -> None:
        """Keep iteration-triggered events firable after their trigger dies.

        An unfired ``at_iteration`` event whose ``rank_trigger`` has been
        fail-stopped -- and *not* restarted by the protocol's recovery, which
        runs synchronously inside the failure notification -- would wait for
        an iteration completion that can never happen, so the simulation
        could never converge on it.  The event is re-triggered on the first
        surviving rank of its own ``ranks`` (firing immediately if that rank
        is already past ``at_iteration``); when no rank of the event
        survives, the event is disarmed: every rank it would kill is already
        dead.

        Triggers that were rolled back and restarted by the protocol are
        left alone -- they will complete their iterations again.
        """
        sim = self._sim
        if sim is None:
            return
        refire = []
        for event in self.events:
            if event.fired or event.at_iteration is None:
                continue
            trigger = sim.ranks.get(event.rank_trigger)
            if trigger is None or trigger.state is not RankState.FAILED:
                continue
            survivor = None
            for rank in event.ranks:
                proc = sim.ranks.get(rank)
                if proc is not None and proc.state is not RankState.FAILED:
                    survivor = proc
                    break
            if survivor is None:
                event.fired = True
                self.disarmed_events += 1
                continue
            self.retargeted_events += 1
            event.rank_trigger = survivor.rank
            if survivor.completed_iterations >= event.at_iteration:
                # The new trigger already passed the boundary: fire now (via
                # the armed path so completion still waits for the strike).
                event.fired = True
                self.armed_fires += 1
                refire.append(event)
        if refire:
            # One batched event for every re-triggered strike (see
            # on_iteration_completed: simultaneous strikes land in spec
            # order, not engine insertion order).
            sim.engine.schedule(0.0, self._fire_armed_batch, refire)

    # ------------------------------------------------------------- lookahead
    def next_timed_failure_time(self) -> Optional[float]:
        """Earliest unfired time-triggered strike (None when none remain).

        Drives the hybrid director's epoch boundaries: a fast-forwarded
        epoch must end a guard window *before* this time so the strike, and
        the recovery it triggers, play out in exact DES.
        """
        times = [e.time for e in self.events if e.time is not None and not e.fired]
        return min(times) if times else None

    def next_iteration_trigger(self) -> Optional[int]:
        """Earliest unfired iteration-triggered boundary (None when none)."""
        its = [
            e.at_iteration
            for e in self.events
            if e.at_iteration is not None and not e.fired
        ]
        return min(its) if its else None

    @property
    def any_failure_injected(self) -> bool:
        return bool(self.failure_times)
