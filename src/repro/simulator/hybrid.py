"""Hybrid analytical/DES execution of failure-free epochs.

Between failures a HydEE-style run is a steady-state loop: every rank executes
the same iteration body, checkpoints on the same schedule and exchanges the
same messages.  Simulating those epochs event by event is what dominates
Monte Carlo campaigns, yet none of the per-event detail matters for the
metrics the campaigns aggregate -- only the protocol byte/checkpoint counters
and the per-rank clocks at the epoch boundary do.

:class:`HybridDirector` exploits this.  It runs a short warm-up of ordinary
DES, calibrates a per-rank iteration-rate model from the observed boundary
times, and then alternates between

* **fast-forward epochs**: every rank's iteration generator is driven
  synchronously (no event queue) through a batch of iterations; messages are
  matched through the normal MPI-matching machinery so protocol hooks,
  per-rank statistics and application state stay *exactly* what full DES
  would produce; rank clocks are advanced analytically with the rate model
  and the engine's clock jumps once per epoch
  (:meth:`~repro.simulator.engine.SimulationEngine.advance_to`);
* **DES guard windows** around every failure injection: a configurable
  number of iterations before the strike, the whole failure/rollback/replay
  choreography, and the re-execution until the run is quiescent again run
  under the unmodified event-driven simulator, so recovery behaviour is
  byte-identical to exact mode.

Ranks synchronise with the director through an :class:`IterationGate`: the
rank driver parks its coroutine at the gate's iteration limit, and the
director either raises the limit (next DES segment) or replaces the parked
coroutine wholesale after a fast-forwarded epoch
(:meth:`~repro.simulator.process.RankProcess.fast_forward_to`).

When the run cannot be fast-forwarded safely -- workload not declared
:attr:`~repro.workloads.base.Application.ff_compatible`, bounded runs,
protocols with opaque boundary hooks, or a warm-up whose iteration durations
are too irregular to trust -- the director degrades gracefully to plain exact
execution and reports why (``sim.hybrid.*`` metrics plus a
``hybrid_fallback_reason`` entry in ``stats.extra``).

Accepted approximations (documented in the README): per-rank sub-iteration
clock stagger is collapsed to the rate model's projection at epoch
boundaries, and message/delivery timestamps inside a fast-forwarded epoch are
projections rather than transport-accurate times.  Both are bounded by the
calibration spread check and do not affect protocol byte accounting.
"""

from __future__ import annotations

import math
from collections import deque
from statistics import median
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Deque,
    Dict,
    Generator,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.errors import InvalidOperationError, SimulationError
from repro.ftprotocols.base import ClusteredProtocolBase
from repro.simulator import calibration as _calibration
from repro.simulator import collectives as _collectives
from repro.simulator.communicator import _default_size
from repro.simulator.engine import Condition
from repro.simulator.messages import ANY_SOURCE, ANY_TAG, Message, MessageKind
from repro.simulator.process import RankState
from repro.simulator.protocol_api import ProtocolHooks, SendAction
from repro.simulator.requests import RecvRequest, Request, SendRequest

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simulator.process import RankProcess
    from repro.simulator.simulation import Simulation, SimulationResult

#: Return type of the fast-forward communicator's blocking calls: they are
#: generators yielding :data:`_FF_WAIT` until their request completes.
_FFGen = Generator[Any, Any, Any]


class _FFWait:
    """Sentinel yielded by fast-forward communicator calls that must block."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return "<fast-forward wait>"


_FF_WAIT = _FFWait()


class _FFUnsupported(Exception):
    """An application call that cannot be executed without the event queue."""


class IterationGate:
    """Synchronisation point between rank drivers and the hybrid director.

    ``Simulation.iteration_gate`` is ``None`` in exact mode (the rank driver
    pays one ``None`` check per iteration).  In hybrid mode the driver parks
    its coroutine whenever its iteration counter reaches :attr:`limit` and
    waits on :attr:`condition`; the director observes quiescence through
    :attr:`parked` and releases ranks either by raising the limit and firing
    the condition, or by discarding the parked coroutines entirely after a
    fast-forwarded epoch.
    """

    __slots__ = ("limit", "condition", "parked")

    def __init__(self, limit: int) -> None:
        self.limit = limit
        self.condition = Condition("iteration-gate")
        #: rank -> (incarnation, park_time, iteration, app_state); the
        #: incarnation lets the director ignore entries of coroutines that
        #: were rolled back after parking.
        self.parked: Dict[int, Tuple[int, float, int, Any]] = {}

    def park(self, proc: "RankProcess", iteration: int, state: Any) -> None:
        self.parked[proc.rank] = (
            proc.incarnation, proc.sim.engine.now, iteration, state
        )

    def unpark(self, rank: int) -> None:
        self.parked.pop(rank, None)


class FastForwardCommunicator:
    """Queue-free mirror of :class:`repro.simulator.communicator.Communicator`.

    During a fast-forwarded epoch the application coroutines are driven
    directly by the director, not by the event engine.  Blocking calls are
    still generators (so ``yield from comm.recv(...)`` works unchanged) but
    instead of yielding operation descriptors they yield the :data:`_FF_WAIT`
    sentinel until their request completes; sends deliver synchronously
    through the director.  Calls whose semantics *require* event timing
    (``ANY_SOURCE`` matching, ``waitany``, explicit checkpoint requests)
    raise :class:`_FFUnsupported`, which the director converts into a hard
    error -- such applications must be declared ``ff_compatible = False``.
    """

    def __init__(self, sim: "Simulation", rank_process: "RankProcess",
                 director: "HybridDirector") -> None:
        self._sim = sim
        self._proc = rank_process
        self._director = director
        self._collective_seq = 0

    # ------------------------------------------------------------------ info
    @property
    def rank(self) -> int:
        return self._proc.rank

    @property
    def size(self) -> int:
        return self._sim.nprocs

    @property
    def now(self) -> float:
        """The rank's projected clock (the engine clock is frozen here)."""
        return self._director._ff_clock[self._proc.rank]

    # ------------------------------------------------------- blocking p2p
    def send(self, dest: int, payload: Any = None, tag: int = 0,
             size_bytes: Optional[int] = None) -> _FFGen:
        self.isend(dest, payload, tag=tag, size_bytes=size_bytes)
        return None
        yield  # pragma: no cover - marks this function as a generator

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> _FFGen:
        request = self.irecv(source=source, tag=tag)
        while not request.complete:
            yield _FF_WAIT
        self._proc._deliver_to_app(request.value)
        return request.value

    def sendrecv(
        self,
        dest: int,
        payload: Any,
        source: int,
        tag: int = 0,
        recv_tag: Optional[int] = None,
        size_bytes: Optional[int] = None,
    ) -> _FFGen:
        recv_tag = tag if recv_tag is None else recv_tag
        rreq = self.irecv(source=source, tag=recv_tag)
        sreq = self.isend(dest, payload, tag=tag, size_bytes=size_bytes)
        while not rreq.complete:
            yield _FF_WAIT
        # Same delivery order as the exact waitall([sreq, rreq]) path: the
        # send value (None) first -- a no-op -- then the received message.
        self._proc._deliver_to_app(sreq.value)
        self._proc._deliver_to_app(rreq.value)
        return rreq.value

    # --------------------------------------------------- non-blocking p2p
    def isend(self, dest: int, payload: Any = None, tag: int = 0,
              size_bytes: Optional[int] = None) -> SendRequest:
        self._check_peer(dest)
        size = _default_size(payload) if size_bytes is None else int(size_bytes)
        return self._director.ff_send(self._proc, dest, payload, tag, size)

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> RecvRequest:
        if source == ANY_SOURCE:
            raise _FFUnsupported("an ANY_SOURCE receive")
        self._check_peer(source)
        return self._proc.post_receive(source, tag)

    @staticmethod
    def test(request: Request) -> bool:
        return request.test()

    def wait(self, request: Request) -> _FFGen:
        while not request.complete:
            yield _FF_WAIT
        self._proc._deliver_to_app(request.value)
        return request.value

    def waitall(self, requests: Sequence[Request]) -> _FFGen:
        if not requests:
            return []
        requests = list(requests)
        for request in requests:
            while not request.complete:
                yield _FF_WAIT
        values = [r.value for r in requests]
        # Deliver in request order after all complete, like the exact path.
        for value in values:
            self._proc._deliver_to_app(value)
        return values

    def waitany(self, requests: Sequence[Request]) -> _FFGen:
        # Which request completes first is a timing question the fast path
        # cannot answer deterministically.
        raise _FFUnsupported("a waitany call")
        yield  # pragma: no cover

    # ------------------------------------------------------------- local ops
    def compute(self, seconds: float, flops: Optional[float] = None) -> _FFGen:
        if seconds < 0:
            raise InvalidOperationError("compute time must be non-negative")
        if seconds > 0:
            # The time itself is covered by the calibrated iteration rate;
            # only the statistics counter must stay in sync with exact mode.
            self._proc.rstats.compute_time += seconds
        return None
        yield  # pragma: no cover

    def wait_condition(self, condition: Condition) -> _FFGen:
        raise _FFUnsupported("a wait_condition call")
        yield  # pragma: no cover

    def checkpoint(self, label: str = "") -> _FFGen:
        raise _FFUnsupported("an application-requested checkpoint")
        yield  # pragma: no cover

    def local_event(self, name: str = "local", data: Any = None) -> _FFGen:
        return None
        yield  # pragma: no cover

    # ------------------------------------------------------------ collectives
    def _next_collective_tag(self) -> int:
        self._collective_seq += 1
        return _collectives.COLLECTIVE_TAG_BASE + self._collective_seq

    def barrier(self) -> _FFGen:
        return (yield from _collectives.barrier(self))

    def bcast(self, value: Any, root: int = 0,
              size_bytes: Optional[int] = None) -> _FFGen:
        return (yield from _collectives.bcast(self, value, root, size_bytes))

    def reduce(self, value: Any, op: Any = None, root: int = 0,
               size_bytes: Optional[int] = None) -> _FFGen:
        return (yield from _collectives.reduce(self, value, op, root, size_bytes))

    def allreduce(self, value: Any, op: Any = None,
                  size_bytes: Optional[int] = None) -> _FFGen:
        return (yield from _collectives.allreduce(self, value, op, size_bytes))

    def gather(self, value: Any, root: int = 0,
               size_bytes: Optional[int] = None) -> _FFGen:
        return (yield from _collectives.gather(self, value, root, size_bytes))

    def allgather(self, value: Any, size_bytes: Optional[int] = None) -> _FFGen:
        return (yield from _collectives.allgather(self, value, size_bytes))

    def scatter(self, values: Optional[Sequence[Any]], root: int = 0,
                size_bytes: Optional[int] = None) -> _FFGen:
        return (yield from _collectives.scatter(self, values, root, size_bytes))

    def alltoall(self, values: Sequence[Any],
                 size_bytes: Optional[int] = None) -> _FFGen:
        return (yield from _collectives.alltoall(self, values, size_bytes))

    # ------------------------------------------------------------------ misc
    def _check_peer(self, peer: int) -> None:
        if not (0 <= peer < self._sim.nprocs):
            raise InvalidOperationError(
                f"rank {self.rank}: peer {peer} outside communicator of size "
                f"{self._sim.nprocs}"
            )
        if peer == self.rank:
            raise InvalidOperationError(
                f"rank {self.rank}: self-sends are not supported by the simulator"
            )

    def __repr__(self) -> str:  # pragma: no cover
        return f"FastForwardCommunicator(rank={self.rank}, size={self.size})"


class RateModel:
    """Per-rank iteration-rate model calibrated from the DES warm-up.

    Two flavours share one interface:

    * **flat** (``phases is None``): ``dt[rank]`` is the median duration of a
      plain iteration, ``ckpt_extra`` the extra cost of an iteration whose
      boundary takes a coordinated checkpoint (zero when ``interval`` is
      falsy or 1 -- with per-iteration checkpointing the cost is already
      inside every sampled delta).  Used for aperiodic protocols and
      explicitly shortened warm-ups.
    * **phase-indexed** (``phases[rank]`` = list of ``interval`` durations):
      under a periodic checkpoint schedule the steady-state iteration
      durations are *periodic in* ``i % interval`` -- link-contention beats
      plus the checkpoint-cost ripple repeat exactly once the transient has
      decayed -- so the model stores one duration per phase, verified
      against the previous period during calibration.  Projection walks the
      phase sequence via prefix sums and is exact (to float noise) in steady
      state, which is what lets workloads with strongly bimodal iteration
      durations (ring, cg, lu, ...) fast-forward at all.
    """

    __slots__ = ("dt", "ckpt_extra", "interval", "dt_mean", "dt_spread",
                 "min_dt", "max_dt", "phases", "_period", "_cum")

    def __init__(self, dt: Dict[int, float], ckpt_extra: Dict[int, float],
                 interval: int, dt_spread: float,
                 phases: Optional[Dict[int, List[float]]] = None) -> None:
        self.dt = dt
        self.ckpt_extra = ckpt_extra
        #: checkpoint interval in iterations (0 = no periodic checkpoints or
        #: the cost is folded into ``dt``).
        self.interval = interval
        self.dt_mean = sum(dt.values()) / len(dt)
        self.dt_spread = dt_spread
        #: rank -> per-phase durations (phase of the delta ending at count
        #: ``i`` is ``i % interval``); ``None`` selects the flat model.
        self.phases = phases
        self._cum: Optional[Dict[int, List[float]]]
        self._period: Optional[Dict[int, float]]
        if phases is not None:
            k = interval
            self._cum = {}
            self._period = {}
            for rank, seq in phases.items():
                cum = [0.0] * k
                acc = 0.0
                for j in range(1, k):
                    acc += seq[j]
                    cum[j] = acc
                self._cum[rank] = cum
                self._period[rank] = acc + seq[0]
            self.min_dt = min(min(seq) for seq in phases.values())
            self.max_dt = max(max(seq) for seq in phases.values())
        else:
            self._cum = None
            self._period = None
            self.min_dt = min(dt.values())
            self.max_dt = max(dt[r] + ckpt_extra[r] for r in dt)

    # -------------------------------------------------------- serialisation
    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe form for the calibration cache (float-exact: ``json``
        round-trips Python floats through ``repr``)."""
        return {
            "dt": {str(r): v for r, v in self.dt.items()},
            "ckpt_extra": {str(r): v for r, v in self.ckpt_extra.items()},
            "interval": self.interval,
            "dt_spread": self.dt_spread,
            "phases": (
                None if self.phases is None
                else {str(r): list(seq) for r, seq in self.phases.items()}
            ),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RateModel":
        phases = data.get("phases")
        return cls(
            dt={int(r): float(v) for r, v in data["dt"].items()},
            ckpt_extra={int(r): float(v) for r, v in data["ckpt_extra"].items()},
            interval=int(data["interval"]),
            dt_spread=float(data["dt_spread"]),
            phases=(
                None if phases is None
                else {int(r): [float(v) for v in seq] for r, seq in phases.items()}
            ),
        )

    # ----------------------------------------------------------- projection
    def checkpoints_between(self, b: int, m: int) -> int:
        """Checkpoint boundaries in the half-open iteration-count range (b, m]."""
        if not self.interval:
            return 0
        return m // self.interval - b // self.interval

    def _phase_sum(self, rank: int, m: int) -> float:
        """Sum of the phase durations of deltas ``1..m`` (``S(m)``)."""
        k = self.interval
        cum, period = self._cum, self._period
        assert cum is not None and period is not None
        return (m // k) * period[rank] + cum[rank][m % k]

    def project(self, rank: int, t0: float, b: int, m: int) -> float:
        """Projected clock of ``rank`` at iteration count ``m``, anchored at
        ``t0`` = its observed clock at count ``b``.

        Phase model: a checkpoint taken at boundary count ``c`` is observed
        inside the *next* delta (the one ending at ``c + 1``), but a rank
        resuming (or finishing) exactly at a boundary has already paid for
        that checkpoint -- so the boundary surcharge is added when ``m``
        lands on a boundary and removed when the anchor ``b`` does, keeping
        the projection consistent with the flat model's
        ``checkpoints_between(b, m]`` convention.
        """
        if self.phases is not None:
            if m == b:
                return t0
            t = t0 + (self._phase_sum(rank, m) - self._phase_sum(rank, b))
            k = self.interval
            extra = self.ckpt_extra[rank]
            if extra:
                if m % k == 0 and m > 0:
                    t += extra
                if b % k == 0 and b > 0:
                    t -= extra
            return t
        extra = self.checkpoints_between(b, m) * self.ckpt_extra[rank]
        return t0 + (m - b) * self.dt[rank] + extra

    def iterations_at(self, rank: int, t0: float, b: int, t: float) -> int:
        """Largest count ``m >= b`` with ``project(rank, t0, b, m) <= t``.

        Central estimate (no conservative slack): used to size the DES guard
        window around a timed strike, where the caller adds its own margin.
        """
        if t <= t0:
            return b
        rate = self.dt[rank]
        if self.interval and self.phases is None:
            rate += self.ckpt_extra[rank] / self.interval
        if rate <= 0.0:
            return b
        # The amortised seed is within one checkpoint period of the exact
        # answer; the two walks below correct the interval-alignment (and,
        # for the phase model, phase-accumulation) error.
        m = b + int((t - t0) / rate) + 1
        while m > b and self.project(rank, t0, b, m) > t:
            m -= 1
        while self.project(rank, t0, b, m + 1) <= t:
            m += 1
        return m

    def max_iterations_by(self, rank: int, t0: float, b: int, deadline: float) -> int:
        """Largest count ``m >= b`` with ``project(rank, t0, b, m) <= deadline``.

        Flat model: conservative -- one full ``ckpt_extra`` is subtracted
        from the usable window so a checkpoint boundary landing early in the
        span (alignment of ``b`` with the interval) can never push the
        projection past the deadline.  Phase model: the projection accounts
        for every boundary exactly, so the exact walk is already safe.
        """
        if self.phases is not None:
            return self.iterations_at(rank, t0, b, deadline)
        rate = self.dt[rank]
        usable = deadline - t0
        if self.interval:
            rate += self.ckpt_extra[rank] / self.interval
            usable -= self.ckpt_extra[rank]
        if usable <= 0.0 or rate <= 0.0:
            return b
        return b + int(usable // rate)


class HybridDirector:
    """Orchestrates one hybrid run (``SimulationConfig.execution="hybrid"``)."""

    def __init__(self, sim: "Simulation") -> None:
        self.sim = sim
        protocol = sim.protocol
        self._clustered = isinstance(protocol, ClusteredProtocolBase)
        self._interval: int = int(
            (protocol.checkpoint_interval or 0) if self._clustered else 0
        )
        #: protocol message hooks must run per message even in fast-forward.
        self._send_hook = bool(protocol.ff_send_hook)
        self._ffcomms = {
            rank: FastForwardCommunicator(sim, proc, self)
            for rank, proc in sim.ranks.items()
        }
        #: per-rank projected clocks, valid during a fast-forward epoch.
        self._ff_clock: Dict[int, float] = {}
        self._ff_blocked: Set[int] = set()
        self._ff_runnable: Deque[int] = deque()
        self._iter_times: Dict[int, Dict[int, float]] = {}
        self.stats: Dict[str, float] = {
            "enabled": 0,
            "fallback": 0,
            "calibration_cached": 0,
            "warmup_iterations": 0,
            "guard_iterations": 0,
            "epochs": 0,
            "ff_iterations": 0,
            "batched_iterations": 0,
            "des_iterations": 0,
            "dt_mean_s": 0.0,
            "dt_spread": 0.0,
            "ckpt_extra_mean_s": 0.0,
        }

    # ------------------------------------------------------------------- run
    def run(self) -> "SimulationResult":
        sim = self.sim
        config = sim.config
        total = int(sim.application.num_iterations)
        explicit_warmup = int(config.hybrid_warmup_iterations)
        if explicit_warmup:
            warmup = explicit_warmup
        elif self._interval > 1:
            # The phase model needs two full checkpoint periods to verify
            # that the per-phase durations have settled, and slow-decaying
            # transients (pipeline fill, checkpoint-ripple workloads like
            # cg) need up to four.  The warm-up must run as ONE ungated
            # stretch -- parking ranks mid-warm-up and releasing them
            # imprints a period-aligned stall on the measured deltas that
            # the periodicity check cannot distinguish from real timing --
            # so the length is chosen up front: the largest affordable rung
            # given the iteration budget and any iteration-triggered strike.
            k = self._interval
            i_f = (
                sim.failure_injector.next_iteration_trigger()
                if sim.failure_injector else None
            )
            warmup = 2 * k + 2
            for rung in (4 * k + 2, 3 * k + 2):
                if total >= rung + 2 and (i_f is None or i_f > rung):
                    warmup = rung
                    break
        else:
            warmup = max(3, self._interval + 2)
        guard_i = max(1, int(config.hybrid_guard_iterations))
        sim.hybrid_stats = self.stats
        self.stats["warmup_iterations"] = warmup
        self.stats["guard_iterations"] = guard_i

        reason = self._static_fallback_reason(total, warmup)
        if reason is not None:
            return self._run_exact_from_start(reason)

        cached = self._cached_calibration()
        gate = IterationGate(0 if cached is not None else warmup)
        sim.iteration_gate = gate
        if cached is None:
            self._install_listener()
        sim.protocol.on_simulation_start()
        sim._start_ranks()
        engine_reason = self._run_warmup_segment()
        self._remove_listener()
        if engine_reason == "empty" and not self._quiescent():
            return sim._finish("empty")
        if sim._done_count == sim.nprocs:
            sim.iteration_gate = None
            return sim._finish("stopped")
        if not self._quiescent():
            # The warm-up segment stopped because the next engine event is
            # the first timed strike and not every rank has parked yet.  No
            # failure has fired, so releasing the gate here hands the run to
            # exact mode with at most park-wait timing skew -- whereas
            # letting the strike land on a gated warm-up would perturb the
            # recovery dynamics themselves.
            return self._abandon(
                gate, "the first timed strike lands inside the warm-up"
            )

        if cached is not None:
            model = self._apply_cached_calibration(cached, gate)
        else:
            model, calib_reason = self._calibrate(total, warmup)
            if model is None:
                return self._abandon(gate, calib_reason)
            # Export for the calibration cache (repro.simulator.calibration):
            # the campaign pre-warm harvests this from a failure-free run.
            sim.hybrid_calibration = {
                "model": model.to_dict(),
                "warmup": warmup,
                "park_times": {
                    rank: entry[1] for rank, entry in gate.parked.items()
                },
            }
        self.stats["enabled"] = 1
        self.stats["dt_mean_s"] = model.dt_mean
        self.stats["dt_spread"] = model.dt_spread
        if model.interval:
            self.stats["ckpt_extra_mean_s"] = (
                sum(model.ckpt_extra.values()) / len(model.ckpt_extra)
            )

        injector = sim.failure_injector
        while sim._done_count != sim.nprocs:
            parked = gate.parked
            parked_its = {entry[2] for entry in parked.values()}
            t_f = injector.next_timed_failure_time() if injector else None
            i_f = injector.next_iteration_trigger() if injector else None
            b_max = max(parked_its)

            # DES target for the next guard window: far enough to cover the
            # next strike (plus guard) but no further than necessary.
            g = total
            if i_f is not None:
                g = min(g, i_f + guard_i)
            if t_f is not None:
                # Project where each rank will be when the strike lands and
                # gate a spread-proportional margin past it, so ranks are
                # still live DES at t_f even if the model runs a little slow.
                est = b_max
                for rank, entry in parked.items():
                    est = max(
                        est, model.iterations_at(rank, entry[1], entry[2], t_f)
                    )
                margin = 1 + int(math.ceil(model.dt_spread * (est - b_max)))
                g = min(g, est + guard_i + margin)
            g = max(g, b_max + 1)

            advanced = False
            if len(parked_its) == 1:
                b = b_max
                # Stop the analytic span one iteration short of the end: the
                # final iteration -- and with it the final checkpoint and the
                # protocol teardown -- runs under exact DES, so the run's
                # finish timing is measured, not modelled (the boundary
                # surcharge at the last checkpoint is an estimate; barrier
                # wait and write cost cannot be separated from warm-up data).
                e = total - 1
                if i_f is not None:
                    e = min(e, max(b, i_f - guard_i))
                if t_f is not None:
                    deadline = t_f - guard_i * model.max_dt
                    for rank, entry in parked.items():
                        e = min(e, model.max_iterations_by(rank, entry[1], b, deadline))
                    e = max(e, b)
                if e > b:
                    self._fast_forward_epoch(b, e, model, gate)
                    advanced = True
                    gate.limit = max(g, e + 1)
            if not advanced:
                self._raise_gate(gate, g)
            engine_reason = self._run_segment()
            if engine_reason == "empty" and not self._quiescent():
                return sim._finish("empty")
            if sim.iteration_gate is None:
                break

        self.stats["des_iterations"] = max(
            0, sim.nprocs * total - self.stats["ff_iterations"]
        )
        return sim._finish("stopped")

    # ------------------------------------------------------------- fallbacks
    def _static_fallback_reason(self, total: int, warmup: int) -> Optional[str]:
        sim = self.sim
        app = sim.application
        protocol = sim.protocol
        if not getattr(app, "ff_compatible", False):
            return f"application {app.name!r} is not fast-forwardable"
        if not getattr(app, "send_deterministic", False):
            return f"application {app.name!r} is not send-deterministic"
        if sim.config.max_time is not None or sim.config.max_events is not None:
            return "bounded run (max_time/max_events)"
        if total < warmup + 2:
            return (
                f"too few iterations ({total}) for a {warmup}-iteration warm-up"
            )
        cls = type(protocol)
        if (cls.on_iteration_boundary is not ProtocolHooks.on_iteration_boundary
                and not self._clustered):
            return (
                f"protocol {protocol.name!r} has an iteration-boundary hook "
                "the fast path cannot reproduce"
            )
        if not self._send_hook and (
            cls.on_app_send is not ProtocolHooks.on_app_send
            or cls.on_message_arrival is not ProtocolHooks.on_message_arrival
        ):
            return (
                f"protocol {protocol.name!r} overrides message hooks without "
                "declaring ff_send_hook"
            )
        injector = sim.failure_injector
        if injector is not None:
            i_f = injector.next_iteration_trigger()
            if i_f is not None and i_f <= warmup:
                return (
                    f"an iteration-triggered strike (iteration {i_f}) lands "
                    "inside the warm-up"
                )
        return None

    def _note_fallback(self, reason: str) -> None:
        self.stats["fallback"] = 1
        self.stats["enabled"] = 0
        self.sim.stats.extra["hybrid_fallback_reason"] = reason

    def _run_exact_from_start(self, reason: str) -> "SimulationResult":
        """Static fallback: the whole run is plain exact execution."""
        sim = self.sim
        self._note_fallback(reason)
        sim.protocol.on_simulation_start()
        sim._start_ranks()
        engine_reason = sim.engine.run(
            until_time=sim.config.max_time,
            max_events=sim.config.max_events,
            stop_predicate=sim._should_stop,
        )
        return sim._finish(engine_reason)

    def _abandon(self, gate: IterationGate, reason: str) -> "SimulationResult":
        """Calibration failed after the warm-up: release the gate and finish
        the already-started run in exact mode."""
        sim = self.sim
        self._note_fallback(reason)
        sim.iteration_gate = None
        gate.condition.fire(None)
        engine_reason = sim.engine.run(stop_predicate=sim._should_stop)
        return sim._finish(engine_reason)

    # ----------------------------------------------------------- calibration
    def _install_listener(self) -> None:
        sim = self.sim
        times = self._iter_times = {rank: {} for rank in sim.ranks}
        engine = sim.engine

        def listener(rank: int, iteration: int) -> None:
            times[rank][iteration] = engine.now

        sim._iteration_listener = listener

    def _remove_listener(self) -> None:
        self.sim._iteration_listener = None

    # ----------------------------------------------------- calibration cache
    def _cached_calibration(self) -> Optional[Dict[str, Any]]:
        """A validated calibration-cache entry for this run, or ``None``.

        The entry is keyed by ``config.calibration_key`` (set by the
        scenario builder from :meth:`ScenarioSpec.calibration_key`) and must
        structurally match this simulation -- same checkpoint interval, same
        rank set.  A hit replaces the DES warm-up entirely; it is still
        re-verified at run time by the two-probe check before every batched
        advance, so a wrong-but-matching entry can cost throughput, never
        accuracy.
        """
        key = getattr(self.sim.config, "calibration_key", None)
        if not key:
            return None
        cache = _calibration.active_cache()
        entry = cache.get(key) if cache is not None else None
        if not entry:
            return None
        try:
            model = RateModel.from_dict(entry["model"])
            warmup = int(entry["warmup"])
            park_times = {
                int(rank): float(t)
                for rank, t in entry["park_times"].items()
            }
        except (KeyError, TypeError, ValueError, AttributeError):
            return None
        expected_interval = self._interval if self._interval > 1 else 0
        if model.interval != expected_interval:
            return None
        ranks = set(self.sim.ranks)
        if set(model.dt) != ranks or set(park_times) != ranks:
            return None
        if warmup < 1:
            return None
        return {"model": model, "warmup": warmup, "park_times": park_times}

    def _apply_cached_calibration(
        self, cached: Dict[str, Any], gate: IterationGate
    ) -> RateModel:
        """Anchor the parked-at-zero ranks so the cached model's projection
        reproduces the calibrating run's observed clocks.

        The phase model describes *steady-state* timing; iterations inside
        the calibrating run's warm-up carry a transient the projection does
        not see.  Rewriting each rank's park-time anchor by
        ``offset = T_park(W) - project(0, 0 -> W)`` makes the projection
        land exactly on the calibrated park time at count ``W``, folding the
        whole transient into the anchor instead of into per-iteration error.
        """
        model: RateModel = cached["model"]
        warmup = cached["warmup"]
        park_times = cached["park_times"]
        for rank, entry in list(gate.parked.items()):
            anchor = park_times[rank] - model.project(rank, 0.0, 0, warmup)
            gate.parked[rank] = (entry[0], anchor, entry[2], entry[3])
        self.stats["warmup_iterations"] = 0
        self.stats["calibration_cached"] = 1
        return model

    #: relative tolerance for "two consecutive warm-up periods agree": the
    #: settled DES is deterministic, so steady-state residuals are float
    #: noise (~1e-14) while a live transient shows up at 1e-3 and above.
    _PHASE_TOL = 1e-9

    def _calibrate(
        self, total: int, warmup: int
    ) -> Tuple[Optional[RateModel], str]:
        """Fit the per-rank rate model from warm-up boundary times.

        Periodic protocols with at least two observed periods get the
        phase-indexed model; everything else (no periodic checkpoints,
        per-iteration checkpoints, explicitly shortened warm-ups) keeps the
        flat median model.
        """
        k = self._interval
        if k > 1 and warmup >= 2 * k + 2:
            return self._calibrate_phases(warmup)
        return self._calibrate_flat(total, warmup)

    def _calibrate_phases(
        self, warmup: int
    ) -> Tuple[Optional[RateModel], str]:
        """Fit the phase-indexed model (see :class:`RateModel`).

        The delta ending at completion count ``i`` has phase ``i % k``; the
        model takes each phase's *last* observed duration and accepts it only
        when it matches the observation one period earlier to float
        precision, i.e. the warm-up transient has fully decayed.
        """
        k = self._interval
        phases: Dict[int, List[float]] = {}
        dt: Dict[int, float] = {}
        extra: Dict[int, float] = {}
        residual = 0.0
        for rank, times in self._iter_times.items():
            by_phase: List[List[float]] = [[] for _ in range(k)]
            for i in range(2, warmup + 1):
                t1 = times.get(i)
                t0 = times.get(i - 1)
                if t1 is None or t0 is None:
                    continue
                delta = t1 - t0
                if delta < 0.0:
                    # A failure rolled this rank back mid-warm-up and the
                    # re-execution overwrote earlier samples.
                    return None, "warm-up disturbed by a failure"
                by_phase[i % k].append(delta)
            seq: List[float] = []
            for j in range(k):
                samples = by_phase[j]
                if len(samples) < 2:
                    return None, f"rank {rank} produced no usable warm-up samples"
                last, prev = samples[-1], samples[-2]
                ref = max(abs(last), abs(prev), 1e-300)
                residual = max(residual, abs(last - prev) / ref)
                seq.append(last)
            phases[rank] = seq
            dt[rank] = sum(seq) / k
            # The checkpoint taken at a boundary count ``i - 1`` lands in
            # the delta ending at ``i``, i.e. phase 1; its surcharge over
            # the median plain phase is reported as ``ckpt_extra``.
            others = sorted(seq[j] for j in range(k) if j != 1)
            extra[rank] = max(0.0, seq[1] - others[len(others) // 2])
        if residual > self._PHASE_TOL:
            return None, (
                f"iteration durations not yet periodic after {warmup} "
                f"warm-up iterations (period residual {residual:.2e})"
            )
        if min(dt.values()) <= 0.0:
            return None, "degenerate warm-up iteration durations"
        return RateModel(dt, extra, k, residual, phases), ""

    def _calibrate_flat(
        self, total: int, warmup: int
    ) -> Tuple[Optional[RateModel], str]:
        """Fit the flat (single median duration) rate model.

        The boundary-time listener fires *before* iteration-boundary hooks,
        so the delta ending at completion count ``i`` includes the checkpoint
        taken at count ``i - 1`` (if any): with interval ``k`` the delta is a
        "checkpoint delta" iff ``(i - 1) % k == 0``.  With ``k == 1`` every
        delta carries a checkpoint, so its cost is left inside ``dt`` and
        ``ckpt_extra`` stays zero.
        """
        config = self.sim.config
        k = self._interval
        dt: Dict[int, float] = {}
        extra: Dict[int, float] = {}
        pooled: List[float] = []
        for rank, times in self._iter_times.items():
            plain: List[float] = []
            ckpt: List[float] = []
            for i in range(2, warmup + 1):
                t1 = times.get(i)
                t0 = times.get(i - 1)
                if t1 is None or t0 is None:
                    continue
                delta = t1 - t0
                if delta < 0.0:
                    # A failure rolled this rank back mid-warm-up and the
                    # re-execution overwrote earlier samples.
                    return None, "warm-up disturbed by a failure"
                if k > 1 and (i - 1) % k == 0:
                    ckpt.append(delta)
                else:
                    plain.append(delta)
            if not plain:
                return None, f"rank {rank} produced no usable warm-up samples"
            m = median(plain)
            dt[rank] = m
            if k > 1:
                if ckpt:
                    extra[rank] = max(0.0, median(ckpt) - m)
                elif total // k != warmup // k:
                    # Checkpoint boundaries lie ahead but the warm-up never
                    # sampled one: the model would have to guess their cost.
                    return None, "warm-up shorter than the checkpoint interval"
                else:
                    extra[rank] = 0.0
            else:
                extra[rank] = 0.0
            pooled.extend(plain)
        med = median(pooled)
        if med <= 0.0:
            return None, "degenerate warm-up iteration durations"
        spread = (max(pooled) - min(pooled)) / med
        if spread > config.hybrid_max_dt_spread:
            return None, (
                f"iteration durations too irregular (spread {spread:.3f} > "
                f"{config.hybrid_max_dt_spread:g})"
            )
        return RateModel(dt, extra, k if k > 1 else 0, spread), ""

    # ------------------------------------------------------------- segments
    def _quiescent(self) -> bool:
        """True when the DES segment has converged: every live rank is parked
        at the gate and nothing but future timed failure strikes is queued.

        Checked before every engine event, so the expensive O(nprocs) scan is
        guarded by O(1) short-circuits that only pass once the queue has
        drained down to the injector's residual entries.
        """
        sim = self.sim
        injector = sim.failure_injector
        if injector is not None and injector.armed_fires:
            return False
        if sim._done_count == sim.nprocs:
            return True
        residual = injector.pending_timed_fires if injector is not None else 0
        if sim.engine.pending_events != residual:
            return False
        if sim.protocol.recovery_in_progress():
            return False
        gate = sim.iteration_gate
        if gate is None:
            return False
        parked = gate.parked
        for rank, proc in sim.ranks.items():
            if proc.state is RankState.DONE:
                continue
            entry = parked.get(rank)
            if (entry is None or entry[0] != proc.incarnation
                    or proc.state is not RankState.BLOCKED):
                return False
        return True

    def _run_segment(self) -> str:
        return self.sim.engine.run(stop_predicate=self._quiescent)

    def _run_warmup_segment(self) -> str:
        """The calibration segment: like :meth:`_run_segment`, but stop
        *before* the first timed strike would pop.

        A strike landing while the warm-up gate holds ranks parked would
        recover against a world exact mode never produces; stopping when the
        queue has drained down to the strike lets the caller abandon to
        exact mode with no failure fired yet.  (Iteration-triggered strikes
        at or below the warm-up boundary are a static fallback instead.)
        """
        sim = self.sim
        injector = sim.failure_injector
        t_first = injector.next_timed_failure_time() if injector else None
        if t_first is None:
            return self._run_segment()
        engine = sim.engine

        def stop() -> bool:
            head = engine._peek_time()
            if head is not None and head >= t_first:
                return True
            return self._quiescent()

        return engine.run(stop_predicate=stop)

    def _raise_gate(self, gate: IterationGate, limit: int) -> None:
        """Release parked ranks into a DES segment bounded by ``limit``."""
        gate.limit = limit
        released = gate.condition
        gate.condition = Condition("iteration-gate")
        released.fire(None)

    def _drain_scheduled(self, bound: Optional[float]) -> None:
        """Execute engine events scheduled before ``bound`` (all of them when
        ``bound`` is None) while the clock is frozen mid-fast-forward.

        Fast-forwarded checkpoints fire protocol control messages through
        the ordinary engine scheduler; those events carry epoch-start
        timestamps and must run before the epoch's clock jump.  ``bound``
        keeps genuinely future events (the next timed strike) queued.
        """
        engine = self.sim.engine
        while True:
            head = engine._peek_time()
            if head is None or (bound is not None and head >= bound):
                return
            if not engine.step():
                return

    # ----------------------------------------------------------- fast path
    def _fast_forward_epoch(self, b: int, e: int, model: RateModel,
                            gate: IterationGate) -> None:
        """Advance every parked rank from iteration count ``b`` to ``e``
        without the event queue, then hand them back to the engine."""
        sim = self.sim
        anchors = {rank: entry[1] for rank, entry in gate.parked.items()}
        gate.parked.clear()
        gate.condition = Condition("iteration-gate")

        self._advance_span(b, e, model, anchors)

        now = sim.engine.now
        resumes: Dict[int, float] = {}
        for rank in sorted(anchors):
            resume = model.project(rank, anchors[rank], b, e)
            if resume < now:
                resume = now
            resumes[rank] = resume
        target = min(resumes.values())
        # Play any control traffic still scheduled against the frozen
        # epoch-start clock (e.g. acks of the epoch's last checkpoint)
        # before jumping the clock past it.  Later events -- the next timed
        # failure strike -- stay queued.
        self._drain_scheduled(target)
        for rank in sorted(anchors):
            proc = sim.ranks[rank]
            proc.fast_forward_to(e, proc.app_state, resumes[rank])
        sim.engine.advance_to(target)
        self.stats["epochs"] += 1
        self.stats["ff_iterations"] += (e - b) * len(anchors)

    def _advance_span(self, b: int, e: int, model: RateModel,
                      anchors: Dict[int, float]) -> None:
        """Advance all ranks from count ``b`` to ``e``, batching whole
        checkpoint intervals analytically when it is safe to do so.

        The batched fast path never runs the application generators or the
        per-message protocol hooks: it extrapolates a *verified* state delta
        (consecutive per-message probe iterations must produce identical
        deltas, per iteration or per iteration pair -- see
        :meth:`_probe_deltas`) across each checkpoint interval, takes the
        coordinated checkpoints for real, and falls back to the per-message
        drive for whatever it cannot cover -- the probe window itself, the
        tail beyond the last checkpoint boundary (whose sender logs a later
        failure may need for replay, so its messages must exist for real),
        and any span whose probes disagree.
        """
        plan = self._plan_batch(b, e)
        cur = b
        if plan is not None:
            probe_end, batch_end, probe_span = plan
            if probe_end - probe_span > cur:
                self._drive_iterations(b, probe_end - probe_span, model,
                                       anchors)
            deltas = self._probe_deltas(b, probe_end, probe_span, model,
                                        anchors)
            cur = probe_end
            if deltas is not None:
                cur, stride, d_proto, d_sim = deltas
                end = batch_end
                if stride == 2 and (end - cur) % 2:
                    # Pair extrapolation advances two iterations at a time;
                    # leave an odd final iteration to the per-message tail.
                    end -= 1
                cur = self._batch_intervals(
                    cur, end, model, anchors, b, (d_proto, d_sim), stride
                )
        if e > cur:
            self._drive_iterations(b, e, model, anchors, start=cur)

    def _plan_batch(self, b: int, e: int) -> Optional[Tuple[int, int, int]]:
        """``(probe_end, batch_end, probe_span)`` for a batched advance,
        or ``None``.

        Batching needs: a bulk-capable workload, a protocol that can
        extrapolate its epoch state (``ff_epoch_snapshot``), the slim trace
        path (per-event records require real messages), and -- whenever any
        failure strike is still pending -- checkpoint intervals of at least
        3 iterations, so the batch can end on a recovery line *and* a
        boundary-free probe window exists.

        ``probe_span`` is the number of per-message probe iterations driven
        before extrapolating.  Wide enough intervals (and unclustered runs)
        get a four-iteration window, which additionally supports pair
        (stride-2) verification for protocol state whose per-iteration delta
        alternates with period two; tight intervals keep the classic
        two-iteration window.

        Longer periods cannot be batched at all: verifying stride ``s``
        needs ``2*s`` boundary-free probe deltas, so ``s`` is capped at
        ``(k - 2) // 2`` -- state whose delta period exceeds that (the
        max-based causal phase clock on a ring topology propagates
        cluster-edge phase bumps with a period set by the cluster diameter)
        fails the probe every epoch and correctly stays on the per-message
        fast-forward path.
        """
        sim = self.sim
        if sim.config.record_trace_events:
            return None
        if not getattr(sim.application, "ff_bulk_compatible", False):
            return None
        k = self._interval
        injector = sim.failure_injector
        strikes = injector is not None and (
            injector.next_timed_failure_time() is not None
            or injector.next_iteration_trigger() is not None
        )
        if k in (1, 2):
            return None
        if strikes:
            if not k:
                return None
            batch_end = (e // k) * k
        else:
            batch_end = e
        probe_span = 4 if (not k or (k % 2 == 0 and k >= 8)) else 2
        probe_end = b + probe_span
        if k and probe_span == 4:
            # All four probed deltas must end strictly inside an interval
            # (residue not 0: no checkpoint boundary inside the window;
            # not 1: no delta carrying a checkpoint's cost), and probe_end
            # must be even so every boundary-aligned chunk after it has
            # even length for pair extrapolation (k is even here).
            while (probe_end % 2
                   or any((probe_end - j) % k in (0, 1) for j in range(4))):
                probe_end += 1
        elif k:
            while probe_end % k == 0 or (probe_end - 1) % k == 0:
                probe_end += 1
        if batch_end <= probe_end:
            return None
        if sim.protocol.ff_epoch_snapshot() is None:
            return None
        return probe_end, batch_end, probe_span

    def _probe_deltas(self, b: int, probe_end: int, probe_span: int,
                      model: RateModel, anchors: Dict[int, float]
                      ) -> Optional[Tuple[int, int, Any, Any]]:
        """Drive probe iterations per message and extract a verified
        ``(cur, stride, proto_delta, counter_delta)``, or ``None``.

        The probe is adaptive: two consecutive single-iteration deltas that
        already agree settle a stride-1 delta after only two driven
        iterations (``cur`` is then two short of ``probe_end`` and batching
        starts early).  Only when they disagree -- and the window is the
        four-iteration kind -- are the remaining probe iterations driven:
        four agreeing singles still yield stride 1, and deltas that
        alternate with period two are caught by comparing the two
        consecutive *pair* deltas instead, yielding a stride-2 delta
        extrapolated two iterations at a time by :meth:`_batch_intervals`.

        On failure every rank is left at count ``probe_end``: a failed probe
        costs nothing beyond the per-message work the fallback needed
        anyway.
        """
        sim = self.sim
        protocol = sim.protocol
        start = probe_end - probe_span
        counters = [self._ff_counters_snapshot()]
        protos = [protocol.ff_epoch_snapshot()]

        def drive_to(upto: int) -> None:
            self._drive_iterations(b, upto, model, anchors, start=upto - 1)
            counters.append(self._ff_counters_snapshot())
            protos.append(protocol.ff_epoch_snapshot())

        def clean() -> bool:
            # In-transit application messages (a workload running ahead
            # across iteration boundaries) would be invisible to the
            # extrapolation.
            if any(p is None for p in protos):
                return False
            return not any(sim.ranks[rank].unexpected for rank in anchors)

        drive_to(start + 1)
        drive_to(start + 2)
        if clean():
            d0 = protocol.ff_epoch_delta(protos[0], protos[1])
            d1 = protocol.ff_epoch_delta(protos[1], protos[2])
            if d0 is not None and d0 == d1:
                c0 = self._counter_delta(counters[0], counters[1])
                c1 = self._counter_delta(counters[1], counters[2])
                if self._deltas_match(c0, c1):
                    return start + 2, 1, d1, c1
        if probe_span < 4:
            return None
        drive_to(start + 3)
        drive_to(start + 4)
        if not clean():
            return None
        singles = [
            protocol.ff_epoch_delta(protos[i], protos[i + 1])
            for i in range(probe_span)
        ]
        if all(d is not None and d == singles[-1] for d in singles):
            c_singles = [
                self._counter_delta(counters[i], counters[i + 1])
                for i in range(probe_span)
            ]
            if all(self._deltas_match(c, c_singles[-1]) for c in c_singles):
                return probe_end, 1, singles[-1], c_singles[-1]
        pair_a = protocol.ff_epoch_delta(protos[0], protos[2])
        pair_b = protocol.ff_epoch_delta(protos[2], protos[4])
        if pair_a is None or pair_b is None or pair_a != pair_b:
            return None
        cpair_a = self._counter_delta(counters[0], counters[2])
        cpair_b = self._counter_delta(counters[2], counters[4])
        if not self._deltas_match(cpair_a, cpair_b):
            return None
        return probe_end, 2, pair_b, cpair_b

    def _ff_counters_snapshot(self) -> Tuple[Any, ...]:
        sim = self.sim
        per_rank: Dict[int, Tuple[Any, ...]] = {}
        for rank, proc in sim.ranks.items():
            rstats = proc.rstats
            per_rank[rank] = (
                rstats.sends, rstats.receives, rstats.bytes_sent,
                rstats.bytes_received, rstats.compute_time,
                proc.sends_initiated, proc.deliveries,
            )
        trace = sim.trace
        return (
            per_rank,
            (sim.stats.app_messages, sim.stats.app_bytes),
            {ch: tuple(v) for ch, v in trace.channel_volumes.items()},
            dict(trace.delivered_counts),
        )

    @staticmethod
    def _counter_delta(
        before: Tuple[Any, ...], after: Tuple[Any, ...]
    ) -> Tuple[Any, Any, Any, Any]:
        per_rank = {
            rank: tuple(a - b for a, b in zip(vals, before[0][rank]))
            for rank, vals in after[0].items()
        }
        glob = tuple(a - b for a, b in zip(after[1], before[1]))
        chan: Dict[Any, Tuple[int, int]] = {}
        for ch in sorted(set(after[2]) | set(before[2])):
            count_a, bytes_a = after[2].get(ch, (0, 0))
            count_b, bytes_b = before[2].get(ch, (0, 0))
            chan[ch] = (count_a - count_b, bytes_a - bytes_b)
        delivered = {
            rank: after[3].get(rank, 0) - before[3].get(rank, 0)
            for rank in sorted(set(after[3]) | set(before[3]))
        }
        return per_rank, glob, chan, delivered

    @staticmethod
    def _deltas_match(c1: Any, c2: Any) -> bool:
        """Probe-delta equality: exact for counters, one-ulp-tolerant for the
        accumulated compute-time float."""
        if c1[1:] != c2[1:] or set(c1[0]) != set(c2[0]):
            return False
        for rank, vals1 in c1[0].items():
            vals2 = c2[0][rank]
            if vals1[:4] != vals2[:4] or vals1[5:] != vals2[5:]:
                return False
            if not math.isclose(vals1[4], vals2[4],
                                rel_tol=1e-9, abs_tol=1e-18):
                return False
        return True

    def _apply_counter_delta(self, delta: Any, n: int) -> None:
        sim = self.sim
        per_rank, glob, chan, delivered = delta
        for rank, (d_sends, d_recv, d_bs, d_br, d_ct, d_si, d_del) in per_rank.items():
            proc = sim.ranks[rank]
            rstats = proc.rstats
            rstats.sends += n * d_sends
            rstats.receives += n * d_recv
            rstats.bytes_sent += n * d_bs
            rstats.bytes_received += n * d_br
            rstats.compute_time += n * d_ct
            proc.sends_initiated += n * d_si
            proc.deliveries += n * d_del
        sim.stats.app_messages += n * glob[0]
        sim.stats.app_bytes += n * glob[1]
        volumes = sim.trace.channel_volumes
        for ch, (d_count, d_bytes) in chan.items():
            entry = volumes.setdefault(ch, [0, 0])
            entry[0] += n * d_count
            entry[1] += n * d_bytes
        counts = sim.trace.delivered_counts
        for rank, d_count in delivered.items():
            if d_count:
                counts[rank] = counts.get(rank, 0) + n * d_count

    def _batch_intervals(self, cur: int, batch_end: int, model: RateModel,
                         anchors: Dict[int, float], b0: int,
                         deltas: Tuple[Any, Any], stride: int = 1) -> int:
        """Extrapolate verified deltas interval by interval up to
        ``batch_end``, taking each coordinated checkpoint for real.

        ``stride`` is the iteration granularity the verified delta covers
        (1 for the classic per-iteration probe, 2 for a pair delta); every
        chunk is extrapolated in whole strides, and a chunk that is not a
        stride multiple ends the batch early -- the per-message tail picks
        up from there.
        """
        sim = self.sim
        protocol = sim.protocol
        app = sim.application
        k = self._interval
        d_proto, d_sim = deltas
        injector = sim.failure_injector
        t_strike = injector.next_timed_failure_time() if injector else None
        states = {rank: sim.ranks[rank].app_state for rank in anchors}
        clusters = (
            sorted({protocol.cluster_of(r) for r in anchors}) if k else []
        )
        while cur < batch_end:
            nxt = min(batch_end, ((cur // k) + 1) * k) if k else batch_end
            n = nxt - cur
            units, rem = divmod(n, stride)
            if rem:
                return cur
            if not app.fast_forward_states(states, cur, n):
                raise SimulationError(
                    f"workload {app.name!r} refused a batched state advance "
                    f"({cur}..{nxt}) after declaring ff_bulk_compatible"
                )
            protocol.ff_epoch_apply(d_proto, units)
            self._apply_counter_delta(d_sim, units)
            self.stats["batched_iterations"] += n * len(anchors)
            for rank in anchors:
                sim.ranks[rank].completed_iterations = nxt
            if k and nxt % k == 0:
                control = sim.control
                control.begin_buffering()
                try:
                    def time_of(member: int, _nxt: int = nxt) -> float:
                        return model.project(member, anchors[member], b0, _nxt)
                    for cluster in clusters:
                        protocol.fast_forward_cluster_checkpoint(
                            cluster, nxt, states, time_of
                        )
                finally:
                    control.flush(t_strike)
                self._drain_scheduled(t_strike)
            cur = nxt
        return cur

    def _drive_iterations(self, b: int, e: int, model: RateModel,
                          anchors: Dict[int, float],
                          start: Optional[int] = None) -> None:
        """Run iterations ``b..e-1`` of every rank synchronously.

        Each rank free-runs through its iterations (a finished iteration
        immediately starts the next one), blocking only when a receive has no
        matching message yet; a sender's delivery wakes the blocked receiver.
        Rank order is deterministic (ascending rank, FIFO wake order), so two
        runs of the same epoch are identical.
        """
        sim = self.sim
        protocol = sim.protocol
        interval = self._interval if self._clustered else 0
        injector = sim.failure_injector
        t_strike = injector.next_timed_failure_time() if injector else None
        clock = self._ff_clock
        clock.clear()
        blocked = self._ff_blocked
        blocked.clear()
        runnable = self._ff_runnable
        runnable.clear()
        gens: Dict[int, Any] = {}
        counts: Dict[int, int] = {}
        pending: Set[int] = set()
        #: (cluster_id, iteration) -> ranks waiting at the coordinated
        #: checkpoint barrier.  The exact-mode checkpoint is a cluster
        #: barrier; without it a free-running rank could send intra-cluster
        #: messages past a peer's checkpoint boundary, which the protocol's
        #: channel-quiescence invariant rightly rejects.
        barriers: Dict[Tuple[int, int], Set[int]] = {}
        #: iteration -> clusters already checkpointed at that boundary; the
        #: control traffic a boundary fires (log-GC acks) is drained only
        #: once the *last* cluster passed it, matching exact mode where all
        #: clusters snapshot before any ack lands.
        boundary_done: Dict[int, int] = {}
        n_clusters = len({protocol.cluster_of(r) for r in anchors}) if interval else 0
        #: first iteration count to drive; ``anchors``/``b`` stay the clock
        #: projection base even when a batched prefix advanced past them.
        first = b if start is None else start
        for rank in sorted(anchors):
            counts[rank] = first
            clock[rank] = (
                anchors[rank] if first == b
                else model.project(rank, anchors[rank], b, first)
            )
            gens[rank] = self._start_iteration(rank, first)
            runnable.append(rank)
            pending.add(rank)

        def _resume(rank: int, it: int) -> bool:
            """Move a rank past completion count ``it``; True to keep stepping."""
            if it >= e:
                pending.discard(rank)
                return False
            clock[rank] = model.project(rank, anchors[rank], b, it)
            gens[rank] = self._start_iteration(rank, it)
            return True

        while pending:
            if not runnable:
                waiting = ", ".join(
                    f"rank {r} in iteration {counts[r]}" for r in sorted(pending)
                )
                raise SimulationError(
                    f"fast-forward deadlock: {waiting} wait on messages no "
                    "peer will send before the epoch boundary"
                )
            rank = runnable.popleft()
            if rank not in pending:
                continue
            gen = gens[rank]
            while True:
                try:
                    token = next(gen)
                except StopIteration:
                    it = counts[rank] + 1
                    counts[rank] = it
                    proc = sim.ranks[rank]
                    proc.completed_iterations = it
                    if interval and it % interval == 0:
                        cluster = protocol.cluster_of(rank)
                        key = (cluster, it)
                        group = barriers.setdefault(key, set())
                        group.add(rank)
                        if len(group) < len(protocol.members(cluster)):
                            # Parked at the coordinated-checkpoint barrier
                            # (neither runnable nor message-blocked).
                            break
                        del barriers[key]
                        for member in sorted(group):
                            protocol.fast_forward_checkpoint(
                                member, it, sim.ranks[member].app_state,
                                model.project(member, anchors[member], b, it),
                            )
                        # Execute the boundary's control traffic (log-GC
                        # acks) before anyone reaches the *next* boundary:
                        # exact mode prunes sender logs between checkpoints,
                        # and checkpoint sizes include the live log, so
                        # deferring the acks to the epoch edge would inflate
                        # every later checkpoint of the epoch.
                        boundary_done[it] = boundary_done.get(it, 0) + 1
                        if boundary_done[it] == n_clusters:
                            del boundary_done[it]
                            self._drain_scheduled(t_strike)
                        for member in sorted(group):
                            if member != rank and _resume(member, it):
                                runnable.append(member)
                        if _resume(rank, it):
                            gen = gens[rank]
                            continue
                        break
                    if _resume(rank, it):
                        gen = gens[rank]
                        continue
                    break
                except _FFUnsupported as exc:
                    raise SimulationError(
                        f"rank {rank}: {exc} cannot be fast-forwarded; declare "
                        f"the workload ff_compatible = False"
                    ) from exc
                if token is _FF_WAIT:
                    blocked.add(rank)
                    break
                raise SimulationError(
                    f"rank {rank} yielded {token!r} during fast-forward; only "
                    "fast-forward-safe communicator calls are allowed"
                )

    def _start_iteration(self, rank: int, it: int) -> Iterator[Any]:
        proc = self.sim.ranks[rank]
        comm = self._ffcomms[rank]
        comm._collective_seq = 0
        proc.current_iteration = it
        return self.sim.application.iteration(comm, rank, proc.app_state, it)

    def _wake(self, rank: int) -> None:
        if rank in self._ff_blocked:
            self._ff_blocked.discard(rank)
            self._ff_runnable.append(rank)

    def ff_send(self, proc: "RankProcess", dest: int, payload: Any, tag: int,
                size_bytes: int) -> SendRequest:
        """Synchronous message transmission during a fast-forwarded epoch.

        Mirrors :meth:`Simulation._attempt_send` byte for byte on the
        accounting side (protocol hooks when the protocol declares them
        stateful, trace records, per-rank and global counters) but delivers
        straight into the destination's matching machinery instead of the
        transport, and completes the send request immediately.
        """
        sim = self.sim
        message = Message(
            source=proc.rank,
            dest=dest,
            tag=tag,
            size_bytes=size_bytes,
            payload=payload,
            kind=MessageKind.APP,
        )
        now = self._ff_clock[proc.rank]
        suppressed = False
        if self._send_hook:
            decision = sim.protocol.on_app_send(proc.rank, message)
            if decision.action is not SendAction.SEND:
                raise SimulationError(
                    f"protocol {sim.protocol.name!r} tried to "
                    f"{decision.action.value} a send during fast-forward; "
                    "failure-free epochs must be SEND-only"
                )
            if not sim.protocol.on_message_arrival(dest, message):
                suppressed = True
        proc.sends_initiated += 1
        sim.trace.record_send(message, now)
        rstats = proc.rstats
        rstats.sends += 1
        rstats.bytes_sent += message.size_bytes
        sim.stats.app_messages += 1
        sim.stats.app_bytes += message.size_bytes
        if suppressed:
            sim.stats.extra["suppressed_duplicates"] = (
                sim.stats.extra.get("suppressed_duplicates", 0) + 1
            )
        else:
            sim.ranks[dest].deliver_message(message)
            self._wake(dest)
        request = SendRequest(proc.rank, message)
        request._complete(None, now)
        return request
