"""Analytic network performance models.

The paper's prototype runs over Myrinet 10G with MPICH2/nemesis.  Figure 5 is
entirely explained by two mechanisms that this module reproduces:

* the native latency curve of MPICH2 over MX has *plateaus* (e.g. ~3.3 us for
  1--32 byte messages, then a jump to ~4 us); piggybacking the HydEE date and
  phase on small messages pushes a message into the next plateau earlier than
  the native library, which produces the two degradation peaks of Figure 5;
* for messages above 1 KiB the prototype ships the protocol data in a
  *separate* message to avoid a non-contiguous memory copy, so large messages
  only pay one extra small-message latency, which is negligible relative to
  their transfer time;
* sender-based payload logging is a ``memcpy`` overlapped with the network
  transfer; its visible cost is close to zero because host memory bandwidth
  exceeds the 10G link bandwidth (the paper cites Bosilca et al. [6]).

The models below are deliberately simple, piecewise-analytic functions -- the
goal is to reproduce the *shape* of the paper's curves, not to be a
cycle-accurate NIC model.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError


class PiggybackPolicy(Enum):
    """How protocol metadata is attached to application messages.

    ``INLINE_SMALL_SEPARATE_LARGE`` is the policy described in Section V-A of
    the paper: below the threshold the metadata is added as an extra segment
    of the same message (increasing its wire size); above the threshold a
    separate small control message is sent to avoid an extra memory copy.
    """

    NONE = "none"
    INLINE = "inline"
    SEPARATE = "separate"
    INLINE_SMALL_SEPARATE_LARGE = "inline-small-separate-large"


@dataclass
class NetworkModel:
    """Base latency/bandwidth network model.

    Time to move a message of ``n`` bytes from one rank to another is::

        latency(n) + n / bandwidth

    ``latency`` may be a piecewise-constant function of the size (plateaus),
    which is what creates the characteristic steps of MPI latency curves.

    Attributes
    ----------
    bandwidth_bytes_per_s:
        Sustained point-to-point bandwidth.
    latency_plateaus:
        Sorted list of ``(max_size_bytes, latency_seconds)`` pairs.  The
        latency of a message is the latency of the first plateau whose
        ``max_size_bytes`` is >= the wire size.  The last entry must have
        ``max_size_bytes == None`` (catch-all).
    send_overhead_s / recv_overhead_s:
        Host CPU occupancy per message on each side (independent of size).
    memcpy_bandwidth_bytes_per_s:
        Host memory-copy bandwidth, used to price sender-based logging.
    memcpy_overlap_fraction:
        Fraction of the logging memcpy hidden behind the network transfer
        (1.0 means fully overlapped, the idealised claim of [6]).
    eager_threshold_bytes:
        Messages above this size use a rendezvous handshake costing one extra
        round-trip of the minimal latency.
    """

    bandwidth_bytes_per_s: float = 1.25e9  # 10 Gbit/s
    latency_plateaus: List[Tuple[int, float]] = field(
        default_factory=lambda: [(1024, 3.3e-6), (65536, 5.0e-6), (0, 8.0e-6)]
    )
    send_overhead_s: float = 0.2e-6
    recv_overhead_s: float = 0.2e-6
    memcpy_bandwidth_bytes_per_s: float = 6.0e9
    memcpy_overlap_fraction: float = 0.95
    eager_threshold_bytes: int = 32 * 1024
    rendezvous_extra_rtts: float = 1.0
    control_message_bytes: int = 16
    control_latency_s: float = 2.0e-6

    def __post_init__(self) -> None:
        if self.bandwidth_bytes_per_s <= 0:
            raise ConfigurationError("bandwidth must be positive")
        if not self.latency_plateaus:
            raise ConfigurationError("latency_plateaus must not be empty")
        # Normalise: entries sorted by max size, catch-all (0 -> unbounded) last.
        finite = sorted([p for p in self.latency_plateaus if p[0] > 0])
        unbounded = [p for p in self.latency_plateaus if p[0] <= 0]
        if not unbounded:
            raise ConfigurationError(
                "latency_plateaus needs a catch-all entry with max_size <= 0"
            )
        self._plateau_limits = [p[0] for p in finite]
        self._plateau_latencies = [p[1] for p in finite] + [unbounded[-1][1]]

    # ------------------------------------------------------------------ API
    def latency(self, wire_bytes: int) -> float:
        """Latency (s) of a message of ``wire_bytes`` on the wire."""
        idx = bisect.bisect_left(self._plateau_limits, wire_bytes)
        return self._plateau_latencies[idx]

    def min_latency(self) -> float:
        return min(self._plateau_latencies)

    def transfer_time(self, wire_bytes: int) -> float:
        """End-to-end time for one message of ``wire_bytes`` (no contention)."""
        t = self.latency(wire_bytes) + wire_bytes / self.bandwidth_bytes_per_s
        if wire_bytes > self.eager_threshold_bytes:
            t += self.rendezvous_extra_rtts * 2.0 * self.min_latency()
        return t

    def memcpy_time(self, nbytes: int) -> float:
        """Visible (non-overlapped) cost of copying ``nbytes`` into a log buffer."""
        raw = nbytes / self.memcpy_bandwidth_bytes_per_s
        return raw * (1.0 - self.memcpy_overlap_fraction)

    def piggyback_cost(
        self, app_bytes: int, piggyback_bytes: int, policy: PiggybackPolicy
    ) -> Tuple[int, float]:
        """Return ``(extra_wire_bytes, extra_latency)`` for attaching metadata.

        * ``INLINE`` grows the message on the wire.
        * ``SEPARATE`` sends a dedicated small message alongside the data.
          Its network time is pipelined with (and hidden behind) the much
          larger payload transfer, so the visible cost is only the extra
          sender-side injection overhead.
        * ``INLINE_SMALL_SEPARATE_LARGE`` applies the paper's hybrid rule with
          a 1 KiB threshold (Section V-A).
        """
        if policy is PiggybackPolicy.NONE or piggyback_bytes <= 0:
            return 0, 0.0
        if policy is PiggybackPolicy.INLINE:
            return piggyback_bytes, 0.0
        if policy is PiggybackPolicy.SEPARATE:
            return 0, self.send_overhead_s
        if policy is PiggybackPolicy.INLINE_SMALL_SEPARATE_LARGE:
            if app_bytes < 1024:
                return piggyback_bytes, 0.0
            return 0, self.send_overhead_s
        raise ConfigurationError(f"unknown piggyback policy: {policy!r}")


@dataclass
class MyrinetMXModel(NetworkModel):
    """Myrinet 10G / MX model matching the paper's testbed numbers.

    The native MPICH2 latency quoted in Section V-C is ~3.3 us for 1--32 byte
    messages, jumping to ~4 us afterwards; bandwidth approaches 10 Gbit/s for
    large messages.  The plateau structure below reproduces that behaviour;
    exact plateau boundaries beyond the first are chosen to give the familiar
    MX step curve.
    """

    bandwidth_bytes_per_s: float = 1.2e9
    latency_plateaus: List[Tuple[int, float]] = field(
        default_factory=lambda: [
            (32, 3.3e-6),
            (128, 4.0e-6),
            (1024, 4.6e-6),
            (4096, 6.5e-6),
            (32768, 12.0e-6),
            (0, 20.0e-6),
        ]
    )
    send_overhead_s: float = 0.15e-6
    recv_overhead_s: float = 0.15e-6
    memcpy_bandwidth_bytes_per_s: float = 5.0e9
    memcpy_overlap_fraction: float = 0.97
    eager_threshold_bytes: int = 32 * 1024


@dataclass
class EthernetTCPModel(NetworkModel):
    """A commodity gigabit-Ethernet/TCP model (used in sensitivity tests)."""

    bandwidth_bytes_per_s: float = 1.1e8
    latency_plateaus: List[Tuple[int, float]] = field(
        default_factory=lambda: [(64, 25.0e-6), (1024, 30.0e-6), (0, 45.0e-6)]
    )
    send_overhead_s: float = 1.0e-6
    recv_overhead_s: float = 1.0e-6
    memcpy_bandwidth_bytes_per_s: float = 5.0e9
    memcpy_overlap_fraction: float = 0.9
    eager_threshold_bytes: int = 64 * 1024


class RoutedNetworkModel:
    """Topology-aware facade over a flat :class:`NetworkModel`.

    Endpoint costs (latency plateaus, overheads, rendezvous, piggyback,
    logging memcpy) come from the wrapped flat model; the transfer itself is
    routed over the :class:`~repro.topology.topology.Topology` and
    serialized on shared links by a deterministic
    :class:`~repro.topology.contention.ContentionModel`.

    The degenerate flat topology has no links, so ``routed_arrival`` reduces
    to ``start + base.transfer_time(wire)`` -- byte-identical to running the
    flat model directly.  Every other :class:`NetworkModel` attribute and
    method is delegated to the wrapped model, so protocols and processes use
    a routed model transparently.

    Contention state (per-link busy-until) is per simulation run; the
    transport calls :meth:`reset` when it attaches.
    """

    def __init__(self, base: NetworkModel, topology) -> None:
        from repro.topology import ContentionModel, Topology

        if not isinstance(base, NetworkModel):
            raise ConfigurationError(
                f"RoutedNetworkModel wraps a flat NetworkModel, got {type(base).__name__}"
            )
        if not isinstance(topology, Topology):
            raise ConfigurationError(
                f"RoutedNetworkModel needs a Topology, got {type(topology).__name__}"
            )
        self.base = base
        self.topology = topology
        self.contention = ContentionModel()
        # Hot-path bindings: routed_arrival runs once per message, so the
        # wrapped model's methods/thresholds are resolved once here, and the
        # per-(src, dst) link chains are memoised locally instead of
        # re-deriving them through the topology for every message.
        self._route_of: Dict[Tuple[int, int], Any] = {}
        self._base_transfer_time = base.transfer_time
        self._base_latency = base.latency
        self._eager_threshold = base.eager_threshold_bytes
        self._rendezvous_cost = base.rendezvous_extra_rtts * 2.0 * base.min_latency()

    def __getattr__(self, name: str):
        # Fallback delegation: everything the flat model exposes
        # (transfer_time, latency, piggyback_cost, send_overhead_s, ...).
        return getattr(self.base, name)

    def reset(self) -> None:
        """Clear the model's own contention state (standalone use only;
        transports carry their private per-run :class:`ContentionModel`)."""
        self.contention.reset()

    def routed_arrival(
        self,
        source: int,
        dest: int,
        wire_bytes: int,
        start: float,
        contention=None,
    ) -> Tuple[float, float]:
        """Arrival time of a message injected at ``start``.

        Returns ``(arrival_time, contention_wait)``.  The endpoint software
        latency (and rendezvous handshake, if any) is charged before the
        message occupies its first link, mirroring the flat model's
        ``transfer_time`` decomposition.

        ``contention`` selects whose busy-until state the reservation lands
        in; the transport passes its own per-run model so that one
        ``RoutedNetworkModel`` instance can safely back several simulations.
        Standalone callers may omit it and use the model's own state.
        """
        key = (source, dest)
        path = self._route_of.get(key)
        if path is None:
            path = self._route_of[key] = self.topology.route(source, dest)
        if not path:
            return start + self._base_transfer_time(wire_bytes), 0.0
        inject = start + self._base_latency(wire_bytes)
        if wire_bytes > self._eager_threshold:
            inject += self._rendezvous_cost
        if contention is None:
            contention = self.contention
        return contention.reserve(path, wire_bytes, inject)

    def link_stats(self, makespan: Optional[float] = None):
        return self.contention.link_stats(makespan=makespan)

    def tier_stats(self):
        return self.contention.tier_stats()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"RoutedNetworkModel({type(self.base).__name__}, {self.topology!r})"


def pingpong_half_round_trip(model: NetworkModel, wire_bytes: int) -> float:
    """Half round-trip time of a ping-pong with ``wire_bytes`` messages.

    This is the quantity NetPIPE reports as "latency"; bandwidth is derived as
    ``wire_bytes / half_round_trip``.
    """
    one_way = (
        model.send_overhead_s + model.transfer_time(wire_bytes) + model.recv_overhead_s
    )
    return one_way


def netpipe_sizes(max_bytes: int = 8 * 1024 * 1024, perturbation: int = 3) -> Sequence[int]:
    """Message sizes swept by the NetPIPE-style experiments (1 B .. 8 MiB).

    Powers of two up to ``max_bytes``; above 16 B each power of two also
    gets ``size - perturbation`` and ``size + perturbation`` probe points
    (NetPIPE's trick for catching latency-plateau edges that sit just off
    the power-of-two sizes).
    """
    sizes = set()
    size = 1
    while size <= max_bytes:
        sizes.add(size)
        if size > 16 and perturbation > 0:
            for probe in (size - perturbation, size + perturbation):
                if 1 <= probe <= max_bytes:
                    sizes.add(probe)
        size *= 2
    return sorted(sizes)
