"""Aggregated simulation statistics.

The statistics object is filled by the simulation and consumed by the
experiment harnesses:  execution time (Figure 6), per-protocol logged volume
(Table I), control-plane traffic and recovery metrics (containment
experiments).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.results.metrics import MetricSet


@dataclass
class RankStatistics:
    """Per-rank counters."""

    rank: int
    sends: int = 0
    receives: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    compute_time: float = 0.0
    blocked_time: float = 0.0
    checkpoints: int = 0
    restarts: int = 0
    finish_time: Optional[float] = None

    def as_dict(self) -> Dict[str, Any]:
        return {
            "rank": self.rank,
            "sends": self.sends,
            "receives": self.receives,
            "bytes_sent": self.bytes_sent,
            "bytes_received": self.bytes_received,
            "compute_time": self.compute_time,
            "blocked_time": self.blocked_time,
            "checkpoints": self.checkpoints,
            "restarts": self.restarts,
            "finish_time": self.finish_time,
        }


@dataclass
class SimulationStatistics:
    """Whole-run counters."""

    ranks: Dict[int, RankStatistics] = field(default_factory=dict)
    #: wall-clock of the simulated execution = max rank finish time.
    makespan: float = 0.0
    events_processed: int = 0
    app_messages: int = 0
    app_bytes: int = 0
    logged_messages: int = 0
    logged_bytes: int = 0
    control_messages: int = 0
    control_bytes: int = 0
    checkpoints_taken: int = 0
    checkpoint_bytes: int = 0
    failures_injected: int = 0
    ranks_rolled_back: int = 0
    recovery_time: float = 0.0
    protocol: str = "none"
    extra: Dict[str, Any] = field(default_factory=dict)

    def rank(self, rank: int) -> RankStatistics:
        if rank not in self.ranks:
            self.ranks[rank] = RankStatistics(rank=rank)
        return self.ranks[rank]

    @property
    def total_compute_time(self) -> float:
        return sum(r.compute_time for r in self.ranks.values())

    @property
    def rolled_back_fraction(self) -> float:
        if not self.ranks:
            return 0.0
        return self.ranks_rolled_back / len(self.ranks)

    @property
    def logged_fraction_bytes(self) -> float:
        if self.app_bytes == 0:
            return 0.0
        return self.logged_bytes / self.app_bytes

    def as_dict(self) -> Dict[str, Any]:
        return {
            "protocol": self.protocol,
            "makespan": self.makespan,
            "events_processed": self.events_processed,
            "app_messages": self.app_messages,
            "app_bytes": self.app_bytes,
            "logged_messages": self.logged_messages,
            "logged_bytes": self.logged_bytes,
            "logged_fraction_bytes": self.logged_fraction_bytes,
            "control_messages": self.control_messages,
            "control_bytes": self.control_bytes,
            "checkpoints_taken": self.checkpoints_taken,
            "checkpoint_bytes": self.checkpoint_bytes,
            "failures_injected": self.failures_injected,
            "ranks_rolled_back": self.ranks_rolled_back,
            "rolled_back_fraction": self.rolled_back_fraction,
            "recovery_time": self.recovery_time,
            "extra": dict(self.extra),
        }

    def sim_metrics(self) -> MetricSet:
        """The ``sim.*`` namespace of the run's :class:`MetricSet`.

        Mirrors :meth:`as_dict` minus the protocol name (reported as
        ``protocol.name``) and the free-form ``extra`` dict, whose in-run
        substrate counters become first-class ``sim.*`` metrics.
        """
        metrics = MetricSet()
        values = self.as_dict()
        values.pop("protocol", None)
        values.pop("extra", None)
        for key, value in values.items():
            metrics.set(f"sim.{key}", value)
        metrics.set("sim.replayed_messages", self.extra.get("replayed_messages", 0))
        metrics.set("sim.suppressed_duplicates", self.extra.get("suppressed_duplicates", 0))
        return metrics

    def summary_lines(self) -> List[str]:
        d = self.as_dict()
        lines = [f"protocol            : {d['protocol']}"]
        lines.append(f"makespan            : {d['makespan'] * 1e3:.3f} ms")
        lines.append(f"application messages: {d['app_messages']} ({d['app_bytes']} bytes)")
        lines.append(
            "logged messages     : "
            f"{d['logged_messages']} ({d['logged_bytes']} bytes, "
            f"{100.0 * d['logged_fraction_bytes']:.1f}% of app bytes)"
        )
        lines.append(f"checkpoints         : {d['checkpoints_taken']}")
        lines.append(
            f"failures / rollbacks: {d['failures_injected']} / {d['ranks_rolled_back']} ranks "
            f"({100.0 * d['rolled_back_fraction']:.1f}%)"
        )
        return lines
