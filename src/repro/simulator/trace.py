"""Event tracing and communication accounting.

Two consumers rely on the trace:

* the clustering substrate (:mod:`repro.clustering.comm_graph`) builds the
  channel-volume graph from :class:`CommunicationRecord` entries -- this is
  the same input the paper's off-line clustering tool [28] consumes (the
  authors instrumented MPICH2 to collect per-channel volumes);
* the invariant checkers (:mod:`repro.core.invariants`) compare the sequences
  of send events between a reference execution and an execution with failures
  to validate send-determinism-based recovery (Lemma 4 / Theorem 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.simulator.messages import Message


@dataclass
class CommunicationRecord:
    """One application-level communication event (send or delivery)."""

    event: str  # "send" | "deliver" | "suppressed_send"
    time: float
    source: int
    dest: int
    tag: int
    size_bytes: int
    msg_id: int
    kind: str
    replayed: bool = False
    inter_cluster: Optional[bool] = None
    phase: Optional[int] = None
    date: Optional[int] = None


@dataclass
class SendSignature:
    """Minimal identity of a send used for send-determinism comparisons.

    Two executions of a send-deterministic application must produce, per
    process, the same ordered sequence of these signatures (Definition 3 of
    the paper).  Timing and message ids are deliberately excluded.
    """

    dest: int
    tag: int
    size_bytes: int
    payload_repr: str

    @classmethod
    def from_message(cls, message: Message) -> "SendSignature":
        return cls(
            dest=message.dest,
            tag=message.tag,
            size_bytes=message.size_bytes,
            payload_repr=repr(message.payload),
        )


class TraceRecorder:
    """Accumulates communication records and per-channel volumes.

    With ``record_events=False`` (large campaign sweeps) the recorder keeps
    only the aggregate per-channel counters: neither
    :class:`CommunicationRecord` nor :class:`SendSignature` objects are
    constructed at all, so the per-message cost on the hot path is two dict
    updates and no allocation.  Send-determinism comparisons
    (:func:`compare_send_sequences`) need a recorder built with
    ``record_events=True``.
    """

    def __init__(self, record_events: bool = True) -> None:
        self.record_events = record_events
        self.records: List[CommunicationRecord] = []
        #: (source, dest) -> [message_count, byte_count]
        self.channel_volumes: Dict[Tuple[int, int], List[int]] = {}
        #: per-rank ordered send signatures (includes suppressed orphan sends,
        #: because a suppressed send is still "the same message sent again" in
        #: the send-deterministic model).
        self.send_sequences: Dict[int, List[SendSignature]] = {}
        self.delivered_counts: Dict[int, int] = {}
        #: rank -> list of (raw_index_at_restart, sends_kept_from_checkpoint).
        #: Recorded when a rank rolls back; used to reconstruct the *logical*
        #: send sequence of an execution with failures (re-executed sends
        #: overwrite the rolled-back suffix rather than appending to it).
        self.restart_marks: Dict[int, List[Tuple[int, int]]] = {}

    # ------------------------------------------------------------------ hooks
    def record_send(self, message: Message, time: float, suppressed: bool = False) -> None:
        if not suppressed:
            entry = self.channel_volumes.setdefault((message.source, message.dest), [0, 0])
            entry[0] += 1
            entry[1] += message.size_bytes
        if self.record_events:
            if not message.replayed:
                self.send_sequences.setdefault(message.source, []).append(
                    SendSignature.from_message(message)
                )
            self.records.append(
                CommunicationRecord(
                    event="suppressed_send" if suppressed else "send",
                    time=time,
                    source=message.source,
                    dest=message.dest,
                    tag=message.tag,
                    size_bytes=message.size_bytes,
                    msg_id=message.msg_id,
                    kind=message.kind.value,
                    replayed=message.replayed,
                    inter_cluster=message.inter_cluster,
                    phase=message.piggyback.get("phase"),
                    date=message.piggyback.get("date"),
                )
            )

    def record_delivery(self, message: Message, time: float) -> None:
        self.delivered_counts[message.dest] = self.delivered_counts.get(message.dest, 0) + 1
        if self.record_events:
            self.records.append(
                CommunicationRecord(
                    event="deliver",
                    time=time,
                    source=message.source,
                    dest=message.dest,
                    tag=message.tag,
                    size_bytes=message.size_bytes,
                    msg_id=message.msg_id,
                    kind=message.kind.value,
                    replayed=message.replayed,
                    inter_cluster=message.inter_cluster,
                    phase=message.piggyback.get("phase"),
                    date=message.piggyback.get("date"),
                )
            )

    def mark_restart(self, rank: int, sends_at_checkpoint: int) -> None:
        """Record that ``rank`` rolled back to a checkpoint taken after its
        ``sends_at_checkpoint``-th application send."""
        raw_index = len(self.send_sequences.get(rank, []))
        self.restart_marks.setdefault(rank, []).append((raw_index, sends_at_checkpoint))

    # --------------------------------------------------------------- queries
    def effective_send_sequence(self, rank: int) -> List[SendSignature]:
        """Logical send sequence of ``rank`` accounting for rollbacks.

        Raw sequences contain the sends of every incarnation of the rank.
        When the rank rolled back, the sends performed after the restored
        checkpoint are *re-executed*; the logical sequence therefore keeps the
        checkpoint prefix of the previous incarnation and continues with the
        re-executed sends.  For a failure-free execution this is identical to
        the raw sequence.
        """
        raw = self.send_sequences.get(rank, [])
        marks = self.restart_marks.get(rank, [])
        if not marks:
            return list(raw)
        logical: List[SendSignature] = []
        mark_iter = iter(marks)
        next_mark = next(mark_iter, None)
        for idx, sig in enumerate(raw):
            while next_mark is not None and idx == next_mark[0]:
                logical = logical[: next_mark[1]]
                next_mark = next(mark_iter, None)
            logical.append(sig)
        # A mark may sit exactly at the end of the raw list (rank restarted
        # but has not sent anything yet).
        while next_mark is not None and next_mark[0] == len(raw):
            logical = logical[: next_mark[1]]
            next_mark = next(mark_iter, None)
        return logical

    def reexecution_overlaps(self, rank: int) -> List[Tuple[List[SendSignature], List[SendSignature]]]:
        """Pairs of (original, re-executed) send segments for each rollback.

        Used to check send-determinism empirically: the re-executed segment
        must reproduce the original segment message for message (Definition 3
        / Lemma 4 of the paper), for as far as the re-execution has progressed.
        """
        raw = self.send_sequences.get(rank, [])
        overlaps: List[Tuple[List[SendSignature], List[SendSignature]]] = []
        for raw_index, keep in self.restart_marks.get(rank, []):
            original = raw[keep:raw_index]
            reexecuted = raw[raw_index : raw_index + len(original)]
            overlaps.append((original, reexecuted))
        return overlaps

    def communication_matrix(self, nprocs: int, weight: str = "bytes") -> np.ndarray:
        """Dense ``nprocs x nprocs`` matrix of channel volumes.

        ``weight`` selects ``"bytes"`` or ``"messages"``.
        """
        index = 1 if weight == "bytes" else 0
        matrix = np.zeros((nprocs, nprocs), dtype=np.float64)
        for (src, dst), (count, nbytes) in self.channel_volumes.items():
            if 0 <= src < nprocs and 0 <= dst < nprocs:
                matrix[src, dst] += (nbytes if index == 1 else count)
        return matrix

    def total_bytes(self) -> int:
        return sum(v[1] for v in self.channel_volumes.values())

    def total_messages(self) -> int:
        return sum(v[0] for v in self.channel_volumes.values())

    def sends_of(self, rank: int) -> List[SendSignature]:
        return list(self.send_sequences.get(rank, []))

    def events_of(self, rank: int, event: str = "send") -> List[CommunicationRecord]:
        return [r for r in self.records if r.event == event and r.source == rank]

    def deliveries_to(self, rank: int) -> List[CommunicationRecord]:
        return [r for r in self.records if r.event == "deliver" and r.dest == rank]

    def clear_events(self) -> None:
        self.records.clear()


def compare_send_sequences(
    reference: TraceRecorder,
    other: TraceRecorder,
    ranks: Optional[Iterable[int]] = None,
) -> Dict[int, Tuple[int, int]]:
    """Compare per-rank send sequences between two traces.

    Returns a dict mapping rank -> (reference_length, other_length) for every
    rank whose sequences *differ* (empty dict means the executions are
    send-equivalent, the property guaranteed by send-determinism plus a
    correct recovery).  Duplicate suppressed/replayed sends are already
    excluded by :meth:`TraceRecorder.record_send`.
    """
    mismatches: Dict[int, Tuple[int, int]] = {}
    all_ranks = set(reference.send_sequences) | set(other.send_sequences)
    if ranks is not None:
        all_ranks &= set(ranks)
    for rank in sorted(all_ranks):
        ref_seq = reference.effective_send_sequence(rank)
        oth_seq = other.effective_send_sequence(rank)
        if ref_seq != oth_seq:
            mismatches[rank] = (len(ref_seq), len(oth_seq))
    return mismatches
