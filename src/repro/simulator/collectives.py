"""Collective operations implemented over point-to-point messages.

The paper's protocols operate at the message level, so collectives must be
decomposed into the point-to-point messages that actually cross the network;
that is how an ``MPI_Alltoall`` in the FT benchmark ends up dominating the
inter-cluster logged volume in Table I.

Algorithms (standard MPICH-style choices):

* ``barrier``    -- dissemination barrier, ``ceil(log2 p)`` rounds;
* ``bcast``      -- binomial tree;
* ``reduce``     -- binomial tree (commutative/associative ``op`` assumed);
* ``allreduce``  -- reduce to rank 0 followed by a broadcast;
* ``gather``     -- linear gather with posted receives;
* ``allgather``  -- gather followed by a broadcast of the assembled vector;
* ``scatter``    -- linear scatter;
* ``alltoall``   -- pairwise exchange (p-1 rounds of sendrecv), which
  produces the full all-pairs communication pattern.

All collectives are *send-deterministic*: the messages each rank sends depend
only on its input value and rank, never on the arrival order of other
messages, so they compose safely with HydEE (Section II-C of the paper notes
that collectives in send-deterministic applications behave this way).
"""

from __future__ import annotations

import operator
from typing import Any, Callable, List, Optional, Sequence

from repro.errors import InvalidOperationError

#: Base of the reserved tag space used by collective-internal messages.
COLLECTIVE_TAG_BASE = 1 << 20

#: Wire size of the small service messages used by barrier.
_BARRIER_BYTES = 4


def _block_size(comm, value: Any, size_bytes: Optional[int]) -> int:
    if size_bytes is not None:
        return int(size_bytes)
    from repro.simulator.communicator import _default_size

    return _default_size(value)


def barrier(comm: Any) -> Any:
    """Dissemination barrier."""
    size = comm.size
    if size == 1:
        return None
    tag = comm._next_collective_tag()
    rank = comm.rank
    step = 1
    while step < size:
        dest = (rank + step) % size
        source = (rank - step) % size
        rreq = comm.irecv(source=source, tag=tag)
        sreq = comm.isend(dest, payload=("barrier", step), tag=tag, size_bytes=_BARRIER_BYTES)
        yield from comm.waitall([sreq, rreq])
        step <<= 1
    return None


def bcast(comm, value: Any, root: int = 0, size_bytes: Optional[int] = None):
    """Binomial-tree broadcast.  Every rank returns the broadcast value."""
    size = comm.size
    rank = comm.rank
    if not (0 <= root < size):
        raise InvalidOperationError(f"bcast root {root} out of range")
    if size == 1:
        return value
    tag = comm._next_collective_tag()
    relrank = (rank - root) % size
    nbytes = _block_size(comm, value, size_bytes)

    mask = 1
    while mask < size:
        if relrank & mask:
            source = ((relrank - mask) + root) % size
            message = yield from comm.recv(source=source, tag=tag)
            value = message.payload
            nbytes = message.size_bytes
            break
        mask <<= 1
    mask >>= 1
    while mask > 0:
        if relrank + mask < size:
            dest = (relrank + mask + root) % size
            yield from comm.send(dest, payload=value, tag=tag, size_bytes=nbytes)
        mask >>= 1
    return value


def reduce(
    comm,
    value: Any,
    op: Optional[Callable[[Any, Any], Any]] = None,
    root: int = 0,
    size_bytes: Optional[int] = None,
):
    """Binomial-tree reduction; the root returns the reduced value, others None."""
    size = comm.size
    rank = comm.rank
    if not (0 <= root < size):
        raise InvalidOperationError(f"reduce root {root} out of range")
    op = operator.add if op is None else op
    if size == 1:
        return value
    tag = comm._next_collective_tag()
    relrank = (rank - root) % size
    nbytes = _block_size(comm, value, size_bytes)
    result = value

    mask = 1
    while mask < size:
        if relrank & mask == 0:
            src_rel = relrank | mask
            if src_rel < size:
                source = (src_rel + root) % size
                message = yield from comm.recv(source=source, tag=tag)
                result = op(result, message.payload)
        else:
            dest = ((relrank & ~mask) + root) % size
            yield from comm.send(dest, payload=result, tag=tag, size_bytes=nbytes)
            break
        mask <<= 1
    return result if rank == root else None


def allreduce(
    comm,
    value: Any,
    op: Optional[Callable[[Any, Any], Any]] = None,
    size_bytes: Optional[int] = None,
):
    """Allreduce implemented as reduce-to-zero followed by broadcast."""
    reduced = yield from reduce(comm, value, op=op, root=0, size_bytes=size_bytes)
    result = yield from bcast(comm, reduced, root=0, size_bytes=size_bytes)
    return result


def gather(comm, value: Any, root: int = 0, size_bytes: Optional[int] = None):
    """Linear gather; the root returns the list indexed by rank, others None."""
    size = comm.size
    rank = comm.rank
    if not (0 <= root < size):
        raise InvalidOperationError(f"gather root {root} out of range")
    tag = comm._next_collective_tag()
    nbytes = _block_size(comm, value, size_bytes)
    if rank != root:
        yield from comm.send(root, payload=value, tag=tag, size_bytes=nbytes)
        return None
    values: List[Any] = [None] * size
    values[root] = value
    requests = []
    sources = [r for r in range(size) if r != root]
    for source in sources:
        requests.append(comm.irecv(source=source, tag=tag))
    messages = yield from comm.waitall(requests)
    for source, message in zip(sources, messages):
        values[source] = message.payload
    return values


def allgather(comm, value: Any, size_bytes: Optional[int] = None):
    """Allgather as gather + bcast of the assembled vector."""
    size = comm.size
    nbytes = _block_size(comm, value, size_bytes)
    gathered = yield from gather(comm, value, root=0, size_bytes=nbytes)
    result = yield from bcast(comm, gathered, root=0, size_bytes=nbytes * size)
    return result


def scatter(
    comm, values: Optional[Sequence[Any]], root: int = 0, size_bytes: Optional[int] = None
):
    """Linear scatter; every rank returns its element of the root's sequence."""
    size = comm.size
    rank = comm.rank
    if not (0 <= root < size):
        raise InvalidOperationError(f"scatter root {root} out of range")
    tag = comm._next_collective_tag()
    if rank == root:
        if values is None or len(values) != size:
            raise InvalidOperationError(
                f"scatter root needs a sequence of exactly {size} values"
            )
        nbytes = _block_size(comm, values[0], size_bytes)
        for dest in range(size):
            if dest == root:
                continue
            yield from comm.send(dest, payload=values[dest], tag=tag, size_bytes=nbytes)
        return values[root]
    message = yield from comm.recv(source=root, tag=tag)
    return message.payload


def alltoall(comm, values: Sequence[Any], size_bytes: Optional[int] = None):
    """Pairwise-exchange all-to-all.

    ``values[d]`` is the block destined to rank ``d``; the returned list's
    element ``s`` is the block received from rank ``s``.
    """
    size = comm.size
    rank = comm.rank
    if len(values) != size:
        raise InvalidOperationError(f"alltoall needs exactly {size} blocks, got {len(values)}")
    tag = comm._next_collective_tag()
    nbytes = _block_size(comm, values[0], size_bytes)
    received: List[Any] = [None] * size
    received[rank] = values[rank]
    for step in range(1, size):
        dest = (rank + step) % size
        source = (rank - step) % size
        message = yield from comm.sendrecv(
            dest, values[dest], source=source, tag=tag, size_bytes=nbytes
        )
        received[source] = message.payload
    return received
