"""Interface between the simulation substrate and fault-tolerance protocols.

The simulator knows nothing about HydEE, checkpointing or message logging; it
only exposes *hooks* that a protocol implements.  This mirrors the structure
of the paper's prototype, which plugs into the nemesis channel layer of
MPICH2: the protocol sees every message send and delivery, may piggyback
metadata, may charge extra sender-side CPU time (payload memcpy for
sender-based logging), and during recovery may defer or suppress application
sends (orphan messages, phase gating).

The concrete protocols live in :mod:`repro.ftprotocols` and
:mod:`repro.core.protocol` (HydEE itself).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import (
    TYPE_CHECKING, Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union
)

from repro.errors import ConfigurationError, ProtocolError
from repro.results.metrics import MetricSet
from repro.simulator.engine import Condition
from repro.simulator.messages import Message

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simulator.simulation import Simulation


def add_metric(info: Dict[str, Any], key: str, value: Any) -> None:
    """Add a protocol metric to a flat mapping, rejecting duplicates.

    Subclasses build their :meth:`ProtocolHooks.extra_metrics` mapping with
    this helper so that a protocol layer re-using a name already claimed by
    another layer (e.g. a subclass shadowing a :class:`ProtocolStatistics`
    counter) fails loudly instead of silently overwriting it.
    """
    if key in info:
        raise ConfigurationError(f"duplicate protocol metric name {key!r}")
    info[key] = value


class SendAction(Enum):
    """What the protocol wants the substrate to do with an application send."""

    #: Transmit the message normally.
    SEND = "send"
    #: Do not transmit: the message is an orphan being regenerated during
    #: recovery; the sender's state advances as if it had been sent
    #: (Algorithm 2, lines 13-15 of the paper).
    SUPPRESS = "suppress"
    #: Hold the message until ``condition`` fires, then ask the protocol again.
    DEFER = "defer"


@dataclass
class SendDecision:
    """Outcome of :meth:`ProtocolHooks.on_app_send`."""

    action: SendAction = SendAction.SEND
    #: Condition to wait on when ``action`` is DEFER.
    condition: Optional[Condition] = None
    #: Extra sender-side CPU time charged by the protocol (e.g. log memcpy,
    #: separate piggyback message latency).
    extra_cpu_time: float = 0.0

    @classmethod
    def send(cls, extra_cpu_time: float = 0.0) -> "SendDecision":
        return cls(SendAction.SEND, None, extra_cpu_time)

    @classmethod
    def suppress(cls) -> "SendDecision":
        return cls(SendAction.SUPPRESS, None, 0.0)

    @classmethod
    def defer(cls, condition: Condition) -> "SendDecision":
        return cls(SendAction.DEFER, condition, 0.0)


class ProtocolHooks:
    """No-op protocol: native execution without fault tolerance.

    Every method has a default implementation so that protocols only override
    what they need.  The hook call sites are:

    ``attach``
        called once by :class:`repro.simulator.simulation.Simulation` after
        all ranks are created.
    ``on_app_send``
        called for every application/collective message before it enters the
        network; may mutate ``message.piggyback`` / ``piggyback_bytes``.
    ``on_app_deliver``
        called when a message is matched to the receiving application.
    ``on_iteration_boundary``
        called by the rank driver after each completed application iteration;
        may return a generator to be executed inline by the rank (used for
        coordinated checkpointing).
    ``on_failure``
        called by the failure injector with the set of failed ranks.
    ``on_rank_restarted`` / ``on_rank_done``
        lifecycle notifications.
    ``recovery_in_progress``
        consulted by the deadlock detector: while recovery is active a
        momentarily empty event queue is not necessarily a deadlock.
    """

    name: str = "none"
    #: whether :meth:`on_app_send` / :meth:`on_message_arrival` carry state
    #: (sequence stamping, payload logging, duplicate suppression) and must
    #: therefore be invoked per message even during analytic fast-forward
    #: (:mod:`repro.simulator.hybrid`).  Protocols whose message hooks are
    #: the no-op defaults leave this False so the fast path can skip them.
    ff_send_hook: bool = False

    def __init__(self) -> None:
        self.sim: Optional["Simulation"] = None

    # ------------------------------------------------------------ lifecycle
    def attach(self, sim: "Simulation") -> None:
        self.sim = sim

    def on_simulation_start(self) -> None:
        """Called right before the first rank event executes."""

    def on_simulation_end(self) -> None:
        """Called after the simulation loop finishes."""

    # ------------------------------------------------------- failure-free path
    def on_app_send(self, rank: int, message: Message) -> SendDecision:
        return SendDecision.send()

    def on_app_deliver(self, rank: int, message: Message) -> None:
        return None

    def on_message_arrival(
        self, rank: int, message: Message
    ) -> Union[bool, Sequence[Message]]:
        """Called when a message reaches the destination's MPI layer, before
        matching.  Return ``False`` to silently discard it (used by
        message-logging protocols to suppress duplicates re-sent by a
        recovering process), ``True`` to deliver it normally, or a sequence
        of messages to deliver *instead*, in order (used to release messages
        the protocol held back to restore per-channel FIFO order; an empty
        sequence means the message was consumed but not suppressed)."""
        return True

    def on_iteration_boundary(self, rank: int, iteration: int, state: Any):
        """Return ``None`` or a generator executed inline by the rank driver."""
        return None

    # ----------------------------------------- batched fast-forward (hybrid)
    # The hybrid director's analytic fast path advances whole checkpoint
    # intervals without running the application or the per-message hooks.
    # Its probe protocol: snapshot the fast-forward-relevant protocol state,
    # drive one ordinary iteration, snapshot again, derive the per-iteration
    # delta, and -- if two consecutive deltas agree -- replay the delta N
    # times through :meth:`ff_epoch_apply`.  Protocols that cannot express
    # their steady state as such a linear delta simply return ``None`` from
    # :meth:`ff_epoch_snapshot` and keep the per-message fast-forward path.

    def ff_epoch_snapshot(self) -> Optional[Any]:
        """Opaque snapshot of the per-iteration-linear protocol state, or
        ``None`` when the protocol does not support batched fast-forward."""
        return None

    def ff_epoch_delta(self, before: Any, after: Any) -> Optional[Any]:
        """The state delta between two snapshots taken one iteration apart,
        or ``None`` when the pair cannot be extrapolated linearly."""
        return None

    def ff_epoch_apply(self, delta: Any, n: int) -> None:
        """Apply a verified per-iteration delta ``n`` times in one step."""
        raise ProtocolError(
            f"protocol {self.name!r} does not implement batched fast-forward"
        )

    def on_checkpoint_request(self, rank: int, label: str = "") -> float:
        """Application-requested local checkpoint; return the time it costs."""
        return 0.0

    # ----------------------------------------------------------- failure path
    def on_failure(self, failed_ranks: Iterable[int], time: float) -> None:
        return None

    def on_rank_restarted(self, rank: int) -> None:
        return None

    def on_rank_done(self, rank: int) -> None:
        return None

    def recovery_in_progress(self) -> bool:
        return False

    # ------------------------------------------------------- schedule explore
    def schedule_fingerprint(self) -> Dict[str, Any]:
        """Protocol state that must be interleaving-invariant.

        The schedule explorer (:mod:`repro.schedexplore`) hashes this mapping
        at checkpoint boundaries and at completion while reordering
        same-timestamp events; for a send-deterministic workload every
        admissible interleaving must produce identical values.  Values may
        nest plain containers, dataclasses and :class:`Message` objects --
        the canonical encoder strips engine-assigned identities (``msg_id``,
        transport timestamps) that legitimately differ between interleavings.
        Protocols override this with their durable state (logs, clocks,
        sequence tables); the default exposes nothing.
        """
        return {}

    def recovery_line_fingerprint(self) -> Dict[str, Any]:
        """The *committed* subset of the schedule fingerprint.

        Hashed at every checkpoint boundary, including boundaries that land
        mid-recovery -- so it must only expose state that is stable across
        interleavings even while ranks are mid-rollback: the recovery line
        itself (which checkpoints exist, per cluster generation), never live
        rank progress.  Transient state between a race point and
        reconvergence (how far a doomed iteration got before its rollback
        arrived) is legitimately schedule-dependent; it is checked by
        :meth:`schedule_fingerprint` at completion instead.
        """
        return {}

    # ------------------------------------------------------------ accounting
    def memory_usage_bytes(self) -> Dict[int, int]:
        """Per-rank protocol memory footprint (log buffers, determinants...)."""
        return {}

    def extra_metrics(self) -> Dict[str, Any]:
        """Protocol-namespace metric names -> values (no ``protocol.`` prefix).

        Override (extending ``super().extra_metrics()`` with
        :func:`add_metric`) to publish protocol counters; they appear as
        ``protocol.<name>`` in the run's :class:`MetricSet`.
        """
        return {}

    def metrics(self) -> MetricSet:
        """The ``protocol.*`` namespace of the run's metric tree.

        Raises :class:`~repro.errors.ConfigurationError` when two protocol
        layers publish the same metric name.
        """
        metrics = MetricSet()
        metrics.set("protocol.name", self.name)
        for key, value in self.extra_metrics().items():
            metrics.set(f"protocol.{key}", value)
        return metrics

    def describe(self) -> Dict[str, Any]:
        """Legacy flat description, derived from :meth:`metrics`."""
        out: Dict[str, Any] = {}
        for path, value in self.metrics().items():
            key = path.split(".", 1)[1]
            out["protocol" if key == "name" else key] = value
        return out


@dataclass
class ControlMessage:
    """A protocol control message carried outside the application channels.

    The paper's recovery traffic (``Rollback``, ``LastDate``, ``Log``,
    ``Orphan``, ``OwnPhase``, ``OrphanNotification``, ``NotifySendLog``,
    ``NotifySendMsg``) is modelled with these.  They are delivered through
    :class:`ControlPlane` with a fixed small latency and are accounted
    separately from application traffic.
    """

    sender: int
    dest: int
    kind: str
    data: Any = None
    size_bytes: int = 32


#: Pseudo-rank address of the recovery process (Algorithm 4).
RECOVERY_PROCESS = -2


class ControlPlane:
    """Delivers protocol control messages with a configurable latency.

    Control messages do not traverse the application FIFO channels; they are
    delivered to a single protocol callback.  The plane keeps counters so
    experiments can report the volume of recovery traffic.
    """

    def __init__(self, engine, latency_s: float = 2.0e-6) -> None:
        self._engine = engine
        self.latency_s = latency_s
        self.messages_sent = 0
        self.bytes_sent = 0
        self._handler = None
        self._buffer: Optional[List[Tuple[float, ControlMessage]]] = None

    def set_handler(self, handler) -> None:
        """``handler(control_message)`` invoked at delivery time."""
        self._handler = handler

    def send(
        self,
        sender: int,
        dest: int,
        kind: str,
        data: Any = None,
        size_bytes: int = 32,
        extra_delay: float = 0.0,
    ) -> None:
        msg = ControlMessage(sender=sender, dest=dest, kind=kind, data=data, size_bytes=size_bytes)
        self.messages_sent += 1
        self.bytes_sent += size_bytes
        if self._handler is None:
            raise RuntimeError("control plane has no handler; protocol not attached")
        if self._buffer is not None:
            self._buffer.append(
                (self._engine.now + self.latency_s + extra_delay, msg)
            )
            return
        self._engine.schedule(self.latency_s + extra_delay, self._handler, msg)

    # ------------------------------------------------- buffered fast path
    def begin_buffering(self) -> None:
        """Collect sends in a FIFO buffer instead of the event queue.

        The hybrid executor's batched checkpoint boundaries fire bursts of
        identical-latency control messages while the clock is frozen; queuing
        each through the engine costs a heap round-trip per message for an
        order the plain FIFO already guarantees (same send instant, same
        latency).  Between :meth:`begin_buffering` and :meth:`flush`,
        messages accumulate with their would-be delivery times instead.
        """
        if self._buffer is None:
            self._buffer = []

    def flush(self, bound: Optional[float] = None) -> None:
        """Deliver buffered messages in FIFO order and stop buffering.

        Messages whose delivery time is at or past ``bound`` (the next
        failure strike) are handed back to the engine untouched -- they must
        interleave with the strike's events, exactly as if they had been
        scheduled normally.
        """
        buffered, self._buffer = self._buffer, None
        if not buffered:
            return
        handler = self._handler
        engine = self._engine
        for fire_at, msg in buffered:
            if bound is not None and fire_at >= bound:
                engine.schedule_at(fire_at, handler, msg)
            else:
                handler(msg)
