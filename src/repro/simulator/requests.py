"""Non-blocking communication request handles.

Requests model the completion semantics of ``MPI_Isend``/``MPI_Irecv``: a
request is created PENDING and completes exactly once; ranks can block on one
request (``wait``), on all of a list (``waitall``) or on any (``waitany``).
"""

from __future__ import annotations

import itertools
from enum import Enum
from typing import Any, Callable, List, Optional

from repro.errors import InvalidOperationError
from repro.simulator.messages import Message

_REQUEST_COUNTER = itertools.count(1)


class RequestState(Enum):
    PENDING = "pending"
    COMPLETE = "complete"
    CANCELLED = "cancelled"


class Request:
    """Base class for send and receive requests."""

    __slots__ = (
        "req_id",
        "rank",
        "state",
        "completion_time",
        "_value",
        "_waiters",
    )

    def __init__(self, rank: int) -> None:
        self.req_id = next(_REQUEST_COUNTER)
        self.rank = rank
        self.state = RequestState.PENDING
        self.completion_time: Optional[float] = None
        self._value: Any = None
        self._waiters: List[Callable[["Request"], None]] = []

    # ------------------------------------------------------------------ api
    @property
    def complete(self) -> bool:
        return self.state is RequestState.COMPLETE

    @property
    def cancelled(self) -> bool:
        return self.state is RequestState.CANCELLED

    @property
    def value(self) -> Any:
        """Completion value (the :class:`Message` for receive requests)."""
        return self._value

    def test(self) -> bool:
        """Non-destructive completion test (``MPI_Test`` without deallocation)."""
        return self.complete

    def add_waiter(self, callback: Callable[["Request"], None]) -> None:
        if self.complete or self.cancelled:
            callback(self)
        else:
            self._waiters.append(callback)

    # ------------------------------------------------------------- internals
    def _complete(self, value: Any, time: float) -> None:
        if self.state is RequestState.CANCELLED:
            return
        if self.state is RequestState.COMPLETE:
            raise InvalidOperationError(f"request {self.req_id} completed twice")
        self.state = RequestState.COMPLETE
        self._value = value
        self.completion_time = time
        waiters, self._waiters = self._waiters, []
        for callback in waiters:
            callback(self)

    def cancel(self) -> None:
        if self.state is RequestState.PENDING:
            self.state = RequestState.CANCELLED
            self._waiters = []


class SendRequest(Request):
    """Completion handle for a non-blocking send."""

    __slots__ = ("message",)

    def __init__(self, rank: int, message: Message) -> None:
        super().__init__(rank)
        self.message = message

    def __repr__(self) -> str:  # pragma: no cover
        return f"SendRequest(#{self.req_id} rank={self.rank} {self.state.value})"


class RecvRequest(Request):
    """Completion handle for a non-blocking receive (posted receive)."""

    __slots__ = ("source", "tag")

    def __init__(self, rank: int, source: int, tag: int) -> None:
        super().__init__(rank)
        self.source = source
        self.tag = tag

    def matches(self, message: Message) -> bool:
        return message.matches(self.source, self.tag) and message.dest == self.rank

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"RecvRequest(#{self.req_id} rank={self.rank} src={self.source} "
            f"tag={self.tag} {self.state.value})"
        )


def reset_request_counter() -> None:
    """Reset the global request id counter (used by tests for determinism)."""
    global _REQUEST_COUNTER
    _REQUEST_COUNTER = itertools.count(1)
