"""Declarative table schemas: the table layer of :mod:`repro.results`.

Each paper table/figure the analysis modules reproduce declares one
:class:`TableSchema` -- ordered :class:`Column` objects with a dtype,
units, display scale and format -- and registers it with
:func:`register_table`.  Rows built through a schema are validated and
ordered once, and every analysis gets text/CSV/JSON rendering through the
single :mod:`repro.analysis.reporting` path instead of a private
``Row`` dataclass + ``as_dict()`` clone.

A registered table may also carry a *builder*: a callable that derives the
rows from a :class:`~repro.results.query.ResultSet`, which is what powers
``repro-campaign query --table NAME`` over cached stores.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional, Sequence, Set, Tuple

from repro.errors import ConfigurationError

_DTYPES = ("str", "int", "float", "bool", "json")


@dataclass(frozen=True)
class Column:
    """One table column: name, dtype, units and how to display it."""

    name: str
    dtype: str = "float"
    units: Optional[str] = None
    optional: bool = False
    #: display multiplier (e.g. ``1e3`` renders seconds as milliseconds)
    scale: float = 1.0
    #: python format spec applied to the scaled value (e.g. ``".3f"``)
    format: Optional[str] = None
    #: header override for rendering (defaults to ``name``)
    header: Optional[str] = None
    #: display transform applied before formatting (e.g. ``str.upper``)
    display: Optional[Callable[[Any], Any]] = None

    def __post_init__(self) -> None:
        if self.dtype not in _DTYPES:
            raise ConfigurationError(
                f"column {self.name!r}: unknown dtype {self.dtype!r} "
                f"(expected one of {_DTYPES})"
            )

    @property
    def title(self) -> str:
        return self.header if self.header is not None else self.name

    def coerce(self, value: Any) -> Any:
        """Validate/normalise a stored value for this column."""
        if value is None:
            if self.optional:
                return None
            raise ConfigurationError(f"column {self.name!r} is required")
        if self.dtype == "json":
            return value
        if self.dtype == "str":
            if not isinstance(value, str):
                raise ConfigurationError(
                    f"column {self.name!r} expects str, got {type(value).__name__}"
                )
            return value
        if self.dtype == "bool":
            if not isinstance(value, bool):
                raise ConfigurationError(
                    f"column {self.name!r} expects bool, got {type(value).__name__}"
                )
            return value
        if self.dtype == "int":
            if isinstance(value, bool) or not isinstance(value, int):
                raise ConfigurationError(
                    f"column {self.name!r} expects int, got {value!r}"
                )
            return value
        # float: ints are acceptable and normalised
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ConfigurationError(
                f"column {self.name!r} expects a number, got {value!r}"
            )
        return float(value)

    def render(self, value: Any) -> str:
        """Display string for a (raw, unscaled) stored value."""
        from repro.analysis.reporting import format_value

        if value is None:
            return "-"
        if self.display is not None:
            value = self.display(value)
        if isinstance(value, bool):
            return str(value)
        if isinstance(value, (int, float)) and self.scale != 1.0:
            value = value * self.scale
        if self.format is not None and isinstance(value, (int, float)):
            return format(value, self.format)
        return format_value(value)


class Row(Mapping[str, Any]):
    """One validated table row: mapping *and* attribute access."""

    __slots__ = ("_schema", "_values")

    _schema: "TableSchema"
    _values: Dict[str, Any]

    def __init__(self, schema: "TableSchema", values: Dict[str, Any]) -> None:
        object.__setattr__(self, "_schema", schema)
        object.__setattr__(self, "_values", values)

    @property
    def schema(self) -> "TableSchema":
        return self._schema

    def __getitem__(self, key: str) -> Any:
        return self._values[key]

    def __getattr__(self, name: str) -> Any:
        try:
            return self._values[name]
        except KeyError:
            raise AttributeError(
                f"{self._schema.name!r} row has no column {name!r}"
            ) from None

    def __iter__(self) -> Iterator[str]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def __repr__(self) -> str:
        return f"Row({self._schema.name}, {self._values!r})"

    def to_dict(self) -> Dict[str, Any]:
        """Plain dict in schema column order (the stored/JSON form)."""
        return dict(self._values)


class TableSchema:
    """Ordered, validated column layout of one reproduced table."""

    def __init__(self, name: str, columns: Sequence[Column], title: str = "") -> None:
        self.name = name
        self.columns: Tuple[Column, ...] = tuple(columns)
        self.title = title
        seen: Set[str] = set()
        for column in self.columns:
            if column.name in seen:
                raise ConfigurationError(
                    f"table {name!r}: duplicate column {column.name!r}"
                )
            seen.add(column.name)
        self._by_name: Dict[str, Column] = {c.name: c for c in self.columns}

    def __repr__(self) -> str:
        return f"TableSchema({self.name!r}, {len(self.columns)} columns)"

    def column(self, name: str) -> Column:
        try:
            return self._by_name[name]
        except KeyError:
            raise ConfigurationError(
                f"table {self.name!r} has no column {name!r}; columns: "
                f"{', '.join(c.name for c in self.columns)}"
            ) from None

    @property
    def column_names(self) -> List[str]:
        return [c.name for c in self.columns]

    # ------------------------------------------------------------------ rows
    def row(self, **values: Any) -> Row:
        return self.from_mapping(values)

    def from_mapping(self, values: Mapping[str, Any]) -> Row:
        """Validate a mapping into a :class:`Row` (stable column order)."""
        unknown = sorted(set(values) - set(self._by_name))
        if unknown:
            raise ConfigurationError(
                f"table {self.name!r}: unknown column(s) {', '.join(unknown)}"
            )
        out: Dict[str, Any] = {}
        for column in self.columns:
            out[column.name] = column.coerce(values.get(column.name))
        return Row(self, out)

    def rows(self, mappings: Sequence[Mapping[str, Any]]) -> List[Row]:
        return [self.from_mapping(m) for m in mappings]

    # ------------------------------------------------------------- rendering
    def render_text(self, rows: Sequence[Mapping[str, Any]], title: Optional[str] = None) -> str:
        from repro.analysis.reporting import format_table

        headers = [c.title for c in self.columns]
        data = [[c.render(row.get(c.name)) for c in self.columns] for row in rows]
        return format_table(headers, data, title=self.title if title is None else title)

    def render_csv(self, rows: Sequence[Mapping[str, Any]]) -> str:
        """Raw (unscaled) values as CSV, one header row first."""
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(self.column_names)
        for row in rows:
            writer.writerow(
                [
                    json.dumps(row.get(c.name))
                    if isinstance(row.get(c.name), (list, dict))
                    else row.get(c.name)
                    for c in self.columns
                ]
            )
        return buffer.getvalue()

    def render_json(self, rows: Sequence[Mapping[str, Any]]) -> str:
        return json.dumps(
            [{c.name: row.get(c.name) for c in self.columns} for row in rows],
            indent=1,
            sort_keys=False,
        )

    def render(self, rows: Sequence[Mapping[str, Any]], fmt: str = "text") -> str:
        if fmt == "text":
            return self.render_text(rows)
        if fmt == "csv":
            return self.render_csv(rows)
        if fmt == "json":
            return self.render_json(rows)
        raise ConfigurationError(f"unknown table format {fmt!r} (text, csv, json)")


#: ``ResultSet -> rows`` derivation used by ``repro-campaign query --table``.
TableBuilder = Callable[[Any], List[Row]]


@dataclass(frozen=True)
class RegisteredTable:
    schema: TableSchema
    builder: Optional[TableBuilder] = None


_TABLES: Dict[str, RegisteredTable] = {}


def register_table(schema: TableSchema, builder: Optional[TableBuilder] = None) -> TableSchema:
    """Register (or re-register) a table schema; returns the schema."""
    _TABLES[schema.name] = RegisteredTable(schema=schema, builder=builder)
    return schema


def get_table(name: str) -> RegisteredTable:
    try:
        return _TABLES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown table {name!r}; registered: {', '.join(sorted(_TABLES)) or '(none)'}"
        ) from None


def available_tables() -> List[str]:
    return sorted(_TABLES)


def build_table(name: str, resultset: Any) -> Tuple[TableSchema, List[Row]]:
    """Derive a registered table's rows from a :class:`ResultSet`."""
    registered = get_table(name)
    if registered.builder is None:
        raise ConfigurationError(
            f"table {name!r} cannot be derived from a results store "
            "(it needs live simulation artifacts)"
        )
    return registered.schema, registered.builder(resultset)


def pivot_rows(
    rows: Sequence[Mapping[str, Any]],
    index: str,
    columns: str,
    values: str,
) -> List[Dict[str, Any]]:
    """Pivot plain rows: one output row per ``index`` value, one key per
    ``columns`` value, cells taken from ``values`` (first wins).

    Unlike :meth:`ResultSet.pivot` (which sorts rows and columns so query
    output is deterministic regardless of store order), this helper
    preserves the *input* row order on both axes -- it exists for renderers
    that already hold rows in display order (e.g. Figure 6's benchmark
    grouping)."""
    out: Dict[Any, Dict[str, Any]] = {}
    for row in rows:
        key = row.get(index)
        entry = out.setdefault(key, {index: key})
        column = str(row.get(columns))
        if column not in entry:
            entry[column] = row.get(values)
    return [out[key] for key in out]
