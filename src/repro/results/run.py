"""Typed view of one campaign record: spec provenance + metrics + data.

A version-2 campaign record looks like::

    {
      "name": "...", "analysis": "...", "spec_hash": "...",
      "spec": { ... full ScenarioSpec.to_dict() ... },
      "result": {
        "status": "completed",
        "metrics": { "sim": {...}, "protocol": {...}, ... },
        "data": { ... job-specific payload (rows, rank_results, ...) ... }
      }
    }

Jobs build the ``result`` section with :func:`make_payload`;
:class:`RunResult` wraps a whole record and is the only sanctioned way for
analysis/experiment/benchmark/example code to read one (no hand-indexing
of raw record dicts).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple, Union

from repro.errors import ConfigurationError
from repro.results.metrics import MetricSet

_MISSING = object()

#: Shorthand filter/select names -> the dotted path they resolve to.
FIELD_ALIASES: Dict[str, str] = {
    "protocol": "protocol.name",
    "workload": "workload.kind",
    "nprocs": "workload.nprocs",
    "iterations": "workload.iterations",
    "topology": "network.topology.preset",
    "experiment": "tags.experiment",
}


def make_payload(
    status: str,
    metrics: Optional[Union[MetricSet, Mapping[str, Any]]] = None,
    data: Optional[Mapping[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble the ``result`` section of a v2 record."""
    if metrics is None:
        tree: Dict[str, Any] = {}
    elif isinstance(metrics, MetricSet):
        tree = metrics.to_tree()
    else:
        tree = MetricSet(metrics).to_tree()
    return {"status": str(status), "metrics": tree, "data": dict(data or {})}


def is_v2_payload(result: Any) -> bool:
    """Does ``result`` look like a v2 ``result`` section?"""
    return (
        isinstance(result, Mapping)
        and isinstance(result.get("metrics"), Mapping)
        and isinstance(result.get("data"), Mapping)
    )


@dataclass
class RunResult:
    """One completed scenario run, as stored in a campaign record."""

    name: str
    analysis: str
    spec_hash: str
    spec: Dict[str, Any]
    status: str
    metrics: MetricSet = field(default_factory=MetricSet)
    data: Dict[str, Any] = field(default_factory=dict)

    # ------------------------------------------------------------- record i/o
    @classmethod
    def from_record(cls, record: Mapping[str, Any], strict: bool = True) -> "RunResult":
        """Parse a campaign record.

        ``strict`` requires the v2 ``result`` layout; with ``strict=False``
        unknown layouts degrade to an empty metric set (used by progress
        displays that must tolerate hand-planted records).
        """
        result = record.get("result")
        if not is_v2_payload(result):
            if strict:
                raise ConfigurationError(
                    f"record {record.get('name')!r} is not a v2 result (keys: "
                    f"{sorted(result) if isinstance(result, Mapping) else type(result).__name__}); "
                    "load the store through ResultsStore so v1 records are migrated"
                )
            result = {
                "status": result.get("status", "unknown")
                if isinstance(result, Mapping)
                else "unknown",
                "metrics": {},
                "data": {},
            }
        return cls(
            name=str(record.get("name", "")),
            analysis=str(record.get("analysis", "")),
            spec_hash=str(record.get("spec_hash", "")),
            spec=dict(record.get("spec", {}) or {}),
            status=str(result["status"]),
            metrics=MetricSet.from_tree(result["metrics"]),
            data=dict(result["data"]),
        )

    def to_record(self) -> Dict[str, Any]:
        """Inverse of :meth:`from_record` (strict JSON round-trip)."""
        return {
            "name": self.name,
            "analysis": self.analysis,
            "spec_hash": self.spec_hash,
            "spec": dict(self.spec),
            "result": make_payload(self.status, self.metrics, self.data),
        }

    # --------------------------------------------------------------- access
    @property
    def tags(self) -> Dict[str, Any]:
        return dict(self.spec.get("tags", {}) or {})

    @property
    def completed(self) -> bool:
        return self.status == "completed"

    def metric(self, path: str, default: Any = None) -> Any:
        """Dotted-path metric lookup (``sim.makespan``, ``links.tiers...``)."""
        return self.metrics.get(path, default)

    def spec_field(self, path: str, default: Any = None) -> Any:
        """Dotted-path lookup into the spec dict (``protocol.options.x``)."""
        node: Any = self.spec
        for segment in path.split("."):
            if not isinstance(node, Mapping) or segment not in node:
                return default
            node = node[segment]
        return node

    def field(self, path: str, default: Any = None) -> Any:
        """Resolve ``path`` against the whole run, in a fixed order.

        1. record attributes (``name``, ``analysis``, ``spec_hash``,
           ``status``), 2. shorthand aliases (``protocol`` -> spec
           ``protocol.name``, ``workload`` -> ``workload.kind``, ...),
        3. the spec dict (including ``tags.*``), 4. the metric tree.
        """
        found, value = self._resolve(path)
        return value if found else default

    def _resolve(self, path: str) -> Tuple[bool, Any]:
        if path in ("name", "analysis", "spec_hash", "status"):
            return True, getattr(self, path)
        path = FIELD_ALIASES.get(path, path)
        value = self.spec_field(path, _MISSING)
        if value is not _MISSING:
            return True, value
        value = self.metrics.get(path, _MISSING)
        if value is not _MISSING:
            return True, value
        if path.startswith("metrics."):
            value = self.metrics.get(path[len("metrics."):], _MISSING)
            if value is not _MISSING:
                return True, value
        return False, None

    def has_field(self, path: str) -> bool:
        return self._resolve(path)[0]
