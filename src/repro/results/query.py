"""Queryable result sets: the query layer of :mod:`repro.results`.

A :class:`ResultSet` is an ordered, immutable collection of
:class:`~repro.results.run.RunResult` objects built from a campaign
outcome, one or more :class:`~repro.campaign.store.ResultsStore` files, or
raw records.  It supports

* filtering on spec fields with dotted paths and shorthand aliases
  (``where(protocol="hydee", **{"network.topology.preset": "hierarchical"})``),
* dotted-path metric selection (``metric("sim.makespan")``, ``select(...)``),
* deterministic group-by and pivot,
* baseline comparison (``overhead_vs`` / ``speedup``).

All ordering is deterministic: runs keep their input order, and group /
pivot outputs are sorted by key, so a query over a serial store and over
an ``--workers N`` store produces identical output.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

from repro.errors import ConfigurationError
from repro.results.run import RunResult

_MISSING = object()


class ResultSet:
    """An ordered collection of runs with spec/metric query helpers."""

    def __init__(self, runs: Sequence[RunResult]) -> None:
        self._runs: Tuple[RunResult, ...] = tuple(runs)

    # ------------------------------------------------------------ constructors
    @classmethod
    def from_records(cls, records: Sequence[Mapping[str, Any]], strict: bool = True) -> "ResultSet":
        return cls([RunResult.from_record(r, strict=strict) for r in records])

    @classmethod
    def from_campaign(cls, outcome: Any) -> "ResultSet":
        """Wrap a :class:`~repro.campaign.runner.CampaignResult`."""
        return cls.from_records(outcome.records)

    @classmethod
    def from_store(cls, *stores: Any) -> "ResultSet":
        """Load one or more stores (paths or :class:`ResultsStore` objects).

        Version-1 store files are migrated transparently on load.  Records
        are ordered by store, then by spec hash, for determinism.
        """
        from repro.campaign.store import ResultsStore

        runs: List[RunResult] = []
        for store in stores:
            if isinstance(store, str):
                store = ResultsStore(store)
            records = store.records()
            for spec_hash in sorted(records):
                runs.append(RunResult.from_record(records[spec_hash]))
        return cls(runs)

    # -------------------------------------------------------------- container
    @property
    def runs(self) -> Tuple[RunResult, ...]:
        return self._runs

    def __len__(self) -> int:
        return len(self._runs)

    def __iter__(self) -> Iterator[RunResult]:
        return iter(self._runs)

    def __getitem__(self, index: int) -> RunResult:
        return self._runs[index]

    def __repr__(self) -> str:
        return f"ResultSet({len(self._runs)} runs)"

    def one(self) -> RunResult:
        """The single run of this set (raises unless exactly one)."""
        if len(self._runs) != 1:
            raise ConfigurationError(
                f"expected exactly one run, got {len(self._runs)} "
                f"({[r.name for r in self._runs][:6]}...)"
            )
        return self._runs[0]

    # ------------------------------------------------------------------ query
    def where(self, predicate: Optional[Callable[[RunResult], bool]] = None,
              **filters: Any) -> "ResultSet":
        """Runs matching every filter (spec fields, tags, metrics).

        Filter keys resolve like :meth:`RunResult.field`; a run without the
        field never matches.  Values compare with ``==`` (ints and floats
        compare numerically).
        """
        selected: List[RunResult] = []
        for run in self._runs:
            if predicate is not None and not predicate(run):
                continue
            if all(_matches(run.field(path, _MISSING), value)
                   for path, value in filters.items()):
                selected.append(run)
        return ResultSet(selected)

    def select(self, *paths: str, default: Any = None) -> List[Tuple[Any, ...]]:
        """One tuple per run with the requested field values."""
        return [tuple(run.field(p, default) for p in paths) for run in self._runs]

    def metric(self, path: str, default: Any = None) -> List[Any]:
        """The given metric for every run, in set order."""
        return [run.metric(path, default) for run in self._runs]

    def group_by(self, *paths: str) -> "Dict[Tuple[Any, ...], ResultSet]":
        """Deterministic grouping: keys sorted, runs keep input order."""
        groups: Dict[Tuple[Any, ...], List[RunResult]] = {}
        for run in self._runs:
            key = tuple(run.field(p) for p in paths)
            groups.setdefault(key, []).append(run)
        return {
            key: ResultSet(groups[key])
            for key in sorted(groups, key=lambda k: json.dumps(k, sort_keys=True, default=str))
        }

    def sorted_by(self, *paths: str) -> "ResultSet":
        return ResultSet(sorted(
            self._runs,
            key=lambda run: json.dumps(
                [run.field(p) for p in paths], sort_keys=True, default=str
            ),
        ))

    def pivot(self, index: str, columns: str, values: str) -> List[Dict[str, Any]]:
        """One output row per ``index`` value, one key per ``columns`` value,
        cells filled with the ``values`` field (first run wins); rows and
        columns are sorted for determinism."""
        cells: Dict[Any, Dict[str, Any]] = {}
        for run in self._runs:
            key = run.field(index)
            entry = cells.setdefault(key, {})
            column = str(run.field(columns))
            if column not in entry:
                entry[column] = run.field(values)
        out: List[Dict[str, Any]] = []
        for key in sorted(cells, key=lambda k: json.dumps(k, default=str)):
            row: Dict[str, Any] = {index: key}
            row.update({c: cells[key][c] for c in sorted(cells[key])})
            out.append(row)
        return out

    # ------------------------------------------------------------- comparison
    def overhead_vs(
        self,
        metric: str = "sim.makespan",
        index: Sequence[str] = (),
        **baseline: Any,
    ) -> List[Tuple[RunResult, float]]:
        """Per-run ratio of ``metric`` to the matching baseline run.

        The baseline runs are the subset matching ``baseline`` filters; a
        non-baseline run is matched to the baseline with equal ``index``
        field values.  Returns ``(run, ratio)`` pairs in set order (the
        baseline itself has ratio 1.0).  Example: normalised Figure 6 times
        are ``overhead_vs(metric="sim.makespan", index=("tags.benchmark",),
        **{"tags.config": "native"})``.
        """
        baselines = self.where(**baseline)
        by_index: Dict[Tuple[Any, ...], RunResult] = {}
        for run in baselines:
            key = tuple(run.field(p) for p in index)
            if key in by_index:
                raise ConfigurationError(
                    f"ambiguous baseline: several runs match {baseline!r} "
                    f"for index {key!r}"
                )
            by_index[key] = run
        out: List[Tuple[RunResult, float]] = []
        for run in self._runs:
            key = tuple(run.field(p) for p in index)
            base = by_index.get(key)
            if base is None:
                raise ConfigurationError(
                    f"no baseline run matching {baseline!r} for index {key!r}"
                )
            base_value = _number(base, metric)
            value = _number(run, metric)
            out.append((run, value / base_value if base_value else float("inf")))
        return out

    def speedup(
        self,
        metric: str = "sim.makespan",
        index: Sequence[str] = (),
        **baseline: Any,
    ) -> List[Tuple[RunResult, float]]:
        """Inverse of :meth:`overhead_vs`: baseline time / run time."""
        return [
            (run, 1.0 / ratio if ratio else float("inf"))
            for run, ratio in self.overhead_vs(metric=metric, index=index, **baseline)
        ]

    # -------------------------------------------------------------- summaries
    def summary_rows(self) -> List[Dict[str, Any]]:
        """Per-run summary rows (the default ``query`` CLI output)."""
        rows: List[Dict[str, Any]] = []
        for run in self._runs:
            rows.append(
                {
                    "name": run.name,
                    "analysis": run.analysis,
                    "status": run.status,
                    "makespan_ms": (
                        round(run.metric("sim.makespan") * 1e3, 3)
                        if isinstance(run.metric("sim.makespan"), (int, float))
                        else "-"
                    ),
                    "hash": run.spec_hash,
                }
            )
        return rows


def _matches(actual: Any, expected: Any) -> bool:
    if actual is _MISSING:
        return False
    if isinstance(actual, (int, float)) and isinstance(expected, (int, float)) \
            and not isinstance(actual, bool) and not isinstance(expected, bool):
        return float(actual) == float(expected)
    return bool(actual == expected)


def _number(run: RunResult, metric: str) -> Union[int, float]:
    value = run.metric(metric, _MISSING)
    if value is _MISSING or isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ConfigurationError(
            f"run {run.name!r} has no numeric metric {metric!r} (got {value!r})"
        )
    return value
