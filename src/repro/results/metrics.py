"""Namespaced metric trees: the schema layer of :mod:`repro.results`.

A :class:`MetricSet` maps dotted paths (``sim.makespan``,
``links.tiers.inter-cluster.wait_s``) to plain JSON values.  The top path
segment is the namespace; the conventional ones are

* ``sim.*``      -- substrate counters (:class:`~repro.simulator.statistics.
  SimulationStatistics`),
* ``protocol.*`` -- fault-tolerance protocol counters (the old ``pstats_``
  prefix hack and ``describe()`` spillover, now collision-checked),
* ``network.*``  -- topology description and aggregate contention,
* ``links.*``    -- per-link / per-tier traffic of contended topologies,
* ``faults.*``   -- Monte Carlo aggregates over fault-model replicas
  (``faults.<metric path>.mean/std/ci95/min/max``, see
  :mod:`repro.faults.montecarlo`).

Setting a path twice, or setting a path that is both a leaf and a
namespace, raises :class:`~repro.errors.ConfigurationError` -- duplicate
metric names are a bug in the producer, not something to resolve silently.
Mapping values are flattened into sub-paths, so ``to_tree()`` /
``from_tree()`` round-trip exactly (the tree form is what campaign records
store as JSON).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Mapping, Optional, Tuple

from repro.errors import ConfigurationError

_MISSING = object()

#: Explicit units for metric paths that the suffix conventions below miss.
METRIC_UNITS: Dict[str, str] = {
    "sim.makespan": "s",
    "sim.recovery_time": "s",
    "sim.total_compute_time": "s",
}

#: ``(suffix, unit)`` conventions applied to the last path segment.
_SUFFIX_UNITS: Tuple[Tuple[str, str], ...] = (
    ("_bytes", "B"),
    ("bytes", "B"),
    ("_s", "s"),
    ("_pct", "%"),
    ("_fraction", "ratio"),
    ("_messages", "count"),
    ("messages", "count"),
)


def units_for(path: str) -> Optional[str]:
    """Best-effort units of a metric path (explicit table, then suffixes)."""
    if path in METRIC_UNITS:
        return METRIC_UNITS[path]
    leaf = path.rsplit(".", 1)[-1]
    for suffix, unit in _SUFFIX_UNITS:
        if leaf.endswith(suffix):
            return unit
    return None


@dataclass(frozen=True)
class Metric:
    """One named metric value (with units resolved from the catalog)."""

    path: str
    value: Any
    units: Optional[str] = None

    @property
    def namespace(self) -> str:
        return self.path.split(".", 1)[0]


def _validate_path(path: Any) -> str:
    if not isinstance(path, str) or not path:
        raise ConfigurationError(f"metric path must be a non-empty string, got {path!r}")
    segments = path.split(".")
    if any(not segment for segment in segments):
        raise ConfigurationError(f"metric path {path!r} has an empty segment")
    return path


class MetricSet:
    """A tree of metrics keyed by dotted path, with duplicate detection."""

    __slots__ = ("_values", "_namespaces")

    def __init__(self, values: Optional[Mapping[str, Any]] = None) -> None:
        #: leaf path -> value
        self._values: Dict[str, Any] = {}
        #: every strict ancestor path of a stored leaf
        self._namespaces: Dict[str, int] = {}
        if values:
            for path, value in values.items():
                self.set(path, value)

    # ------------------------------------------------------------- mutation
    def set(self, path: str, value: Any) -> None:
        """Store ``value`` under ``path``; mappings flatten into sub-paths.

        Raises :class:`ConfigurationError` on a duplicate metric name or
        when a path would be both a leaf and a namespace.
        """
        _validate_path(path)
        if isinstance(value, Mapping):
            if not value:
                raise ConfigurationError(
                    f"metric {path!r}: empty mappings cannot round-trip through the "
                    "tree form; omit the metric or store a scalar"
                )
            for key, sub_value in value.items():
                self.set(f"{path}.{key}", sub_value)
            return
        if path in self._values:
            raise ConfigurationError(f"duplicate metric name {path!r}")
        if path in self._namespaces:
            raise ConfigurationError(
                f"metric {path!r} is already a namespace (it has sub-metrics)"
            )
        ancestors = _ancestors(path)
        for ancestor in ancestors:
            if ancestor in self._values:
                raise ConfigurationError(
                    f"metric {path!r} conflicts with existing leaf metric {ancestor!r}"
                )
        for ancestor in ancestors:
            self._namespaces[ancestor] = self._namespaces.get(ancestor, 0) + 1
        self._values[path] = value

    def merge(self, other: "MetricSet") -> None:
        """Add every metric of ``other`` (duplicates raise)."""
        for path, value in other.items():
            self.set(path, value)

    # -------------------------------------------------------------- access
    def get(self, path: str, default: Any = None) -> Any:
        """Leaf value, or the nested dict of a namespace, or ``default``."""
        if path in self._values:
            return self._values[path]
        if path in self._namespaces:
            return self.tree(path)
        return default

    def require(self, path: str) -> Any:
        value = self.get(path, _MISSING)
        if value is _MISSING:
            raise ConfigurationError(
                f"unknown metric {path!r}; available namespaces: "
                f"{', '.join(sorted({p.split('.', 1)[0] for p in self._values}))}"
            )
        return value

    def __contains__(self, path: str) -> bool:
        return path in self._values or path in self._namespaces

    def __len__(self) -> int:
        return len(self._values)

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._values))

    def items(self) -> List[Tuple[str, Any]]:
        """``(path, value)`` leaves in sorted path order (deterministic)."""
        return sorted(self._values.items())

    def metrics(self) -> List[Metric]:
        """Leaves as :class:`Metric` objects with catalog units."""
        return [Metric(path, value, units_for(path)) for path, value in self.items()]

    def subset(self, namespace: str) -> "MetricSet":
        """New :class:`MetricSet` with only the paths under ``namespace``."""
        prefix = namespace + "."
        out = MetricSet()
        for path, value in self.items():
            if path == namespace or path.startswith(prefix):
                out.set(path, value)
        return out

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MetricSet):
            return NotImplemented
        return self._values == other._values

    def __repr__(self) -> str:
        return f"MetricSet({len(self._values)} metrics)"

    # ---------------------------------------------------------------- json
    def tree(self, root: Optional[str] = None) -> Dict[str, Any]:
        """Nested-dict form (the JSON representation stored in records)."""
        prefix = "" if root is None else root + "."
        out: Dict[str, Any] = {}
        for path, value in self.items():
            if root is not None:
                if not path.startswith(prefix):
                    continue
                path = path[len(prefix):]
            node = out
            segments = path.split(".")
            for segment in segments[:-1]:
                node = node.setdefault(segment, {})
            node[segments[-1]] = value
        return out

    def to_tree(self) -> Dict[str, Any]:
        return self.tree()

    @classmethod
    def from_tree(cls, tree: Mapping[str, Any]) -> "MetricSet":
        """Inverse of :meth:`to_tree` (strict round-trip)."""
        out = cls()
        if tree:
            out.set_tree(tree)
        return out

    def set_tree(self, tree: Mapping[str, Any]) -> None:
        for key, value in tree.items():
            self.set(str(key), value)


def _ancestors(path: str) -> List[str]:
    segments = path.split(".")
    return [".".join(segments[:i]) for i in range(1, len(segments))]
