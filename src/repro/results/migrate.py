"""In-place migration of version-1 campaign records to the v2 layout.

Version-1 records stored whatever shape each job produced: the ``simulate``
job flattened :class:`SimulationStatistics` (with protocol counters hidden
behind a ``pstats_`` prefix inside ``stats.extra``), the analytic jobs each
had a private row layout.  Version 2 gives every record the same ``result``
section: ``{"status", "metrics", "data"}`` with a namespaced metric tree.

The migration is deterministic and value-preserving: a migrated ``simulate``
or ``congestion-recovery`` record is byte-identical to the record a fresh
v2 run of the same spec produces (pinned by the integration tests), so
migrated caches keep working as caches.  Spec hashes are not touched.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping

from repro.errors import ConfigurationError
from repro.results.metrics import MetricSet
from repro.results.run import is_v2_payload, make_payload

#: ``stats.extra`` keys produced by the v1 simulator, mapped to metric paths.
_EXTRA_PATHS = {
    "replayed_messages": "sim.replayed_messages",
    "suppressed_duplicates": "sim.suppressed_duplicates",
    "topology": "network.topology",
    "contention_wait_s": "network.contention_wait_s",
    "link_stats": "links.per_link",
    "tier_stats": "links.tiers",
    # Two v1 describe() keys collided with ProtocolStatistics counters of
    # the same name (the pstats_ prefix used to hide it); v2 renames them.
    "recoveries": "protocol.recovery_reports",
    "piggyback_bytes": "protocol.configured_piggyback_bytes",
}

_PSTATS_PREFIX = "pstats_"


def migrate_record(record: Mapping[str, Any]) -> Dict[str, Any]:
    """Return the v2 form of a campaign record (v2 input passes through)."""
    result = record.get("result")
    if is_v2_payload(result):
        return dict(record)
    if not isinstance(result, Mapping):
        raise ConfigurationError(
            f"record {record.get('name')!r} has no result section to migrate"
        )
    analysis = record.get("analysis", "simulate")
    if analysis == "simulate":
        migrated = _migrate_simulate(result, record.get("spec") or {})
    elif analysis == "table1-row":
        migrated = _migrate_table1(result)
    elif analysis == "congestion-recovery":
        migrated = _migrate_congestion(result)
    elif analysis in ("cluster-sweep", "piggyback-policy"):
        migrated = make_payload("completed", None, {"rows": result["rows"]})
    else:
        # Unknown job: wrap the old payload verbatim so nothing is lost.
        data = {k: v for k, v in result.items() if k != "status"}
        migrated = make_payload(str(result.get("status", "completed")), None, data)
    out = dict(record)
    out["result"] = migrated
    return out


def _migrate_simulate(result: Mapping[str, Any], spec: Mapping[str, Any]) -> Dict[str, Any]:
    stats = dict(result["stats"])
    extra = dict(stats.pop("extra", {}) or {})
    protocol_name = stats.pop("protocol", None)

    metrics = MetricSet()
    for key, value in stats.items():
        metrics.set(f"sim.{key}", value)
    metrics.set("sim.replayed_messages", extra.pop("replayed_messages", 0))
    metrics.set("sim.suppressed_duplicates", extra.pop("suppressed_duplicates", 0))
    if (spec.get("failures") or spec.get("fault_model")) \
            and str(result.get("status")) == "completed":
        # Fresh v2 runs with a failure injector publish its health counters.
        # v1 predates them, so the migration reconstructs their values for a
        # *completed* run: no strike left armed, and -- since the v1
        # injector never re-fired a rank -- exactly one distinct failed rank
        # per injected failure.  Retargets/disarms were not counted in v1
        # and are migrated as 0 (the overwhelmingly common value; a v1
        # store holding a retargeting run would need a fresh re-run to
        # recover them).  For a non-completed v1 run none of this can be
        # reconstructed (a strike may genuinely have been left armed), so
        # the counters are omitted rather than invented.
        metrics.set("sim.injector.armed_fires", 0)
        metrics.set("sim.injector.deferred_fires", 0)
        metrics.set("sim.injector.disarmed_events", 0)
        metrics.set("sim.injector.failed_ranks", stats.get("failures_injected", 0))
        metrics.set("sim.injector.retargeted_events", 0)
    extra.pop("protocol", None)
    metrics.set("protocol.name", protocol_name if protocol_name is not None else "none")
    for key in sorted(extra):
        value = extra[key]
        if key in _EXTRA_PATHS:
            if isinstance(value, Mapping) and not value:
                continue  # empty link/tier maps of flat runs carry nothing
            metrics.set(_EXTRA_PATHS[key], value)
        elif key.startswith(_PSTATS_PREFIX):
            metrics.set(f"protocol.{key[len(_PSTATS_PREFIX):]}", value)
        else:
            metrics.set(f"protocol.{key}", value)

    data = {
        "rank_results": result["rank_results"],
        "rank_states": result["rank_states"],
    }
    return make_payload(str(result["status"]), metrics, data)


def _migrate_table1(result: Mapping[str, Any]) -> Dict[str, Any]:
    paper = dict(result.get("paper") or {})
    row = {
        "benchmark": result["benchmark"],
        "num_clusters": result["num_clusters"],
        "rollback_pct": result["rollback_pct"],
        "paper_rollback_pct": paper.get("rollback_pct"),
        "logged_pct": result["logged_pct"],
        "paper_logged_pct": paper.get("logged_pct"),
        "logged_gb": result["logged_gb"],
        "total_gb": result["total_gb"],
        "paper_logged_gb": paper.get("logged_gb"),
        "paper_total_gb": paper.get("total_gb"),
        "method": result["method"],
    }
    metrics = MetricSet()
    for key in ("num_clusters", "rollback_pct", "logged_pct", "logged_gb", "total_gb"):
        metrics.set(f"clustering.{key}", result[key])
    data = {"row": row, "membership": result["clusters"]}
    return make_payload("completed", metrics, data)


def _migrate_congestion(result: Mapping[str, Any]) -> Dict[str, Any]:
    metrics = MetricSet()
    metrics.set("sim.makespan", result["makespan"])
    metrics.set("sim.recovery_time", result["recovery_time"])
    metrics.set("sim.ranks_rolled_back", result["ranks_rolled_back"])
    metrics.set("protocol.replayed_messages", result["replayed_messages"])
    metrics.set("network.contention_wait_s", result["contention_wait_s"])
    topology = result.get("topology")
    if topology:
        metrics.set("network.topology", topology)
    inter = result.get("inter_cluster")
    if inter:
        metrics.set("links.tiers.inter-cluster", inter)
    return make_payload(str(result["status"]), metrics, {})
