"""Typed, versioned results API for the reproduction.

Every simulated or analytic run produces one :class:`~repro.results.run.
RunResult`: the scenario's spec hash (provenance), a namespaced
:class:`~repro.results.metrics.MetricSet` (``sim.*``, ``protocol.*``,
``network.*``, ``links.*``) and a small job-specific ``data`` payload.
Campaign stores persist run results as version-2 records; version-1 stores
are migrated transparently on load (:mod:`repro.results.migrate`).

The package has three layers:

* **schema** -- :class:`Metric` / :class:`MetricSet` (:mod:`repro.results.
  metrics`) and :class:`RunResult` (:mod:`repro.results.run`): one typed
  contract for everything a run reports, with strict JSON round-trips;
* **tables** -- :class:`Column` / :class:`TableSchema` / :class:`Row`
  (:mod:`repro.results.tables`): a declarative registry the analysis
  modules register their paper tables into (validation, stable column
  order, text/CSV/JSON rendering);
* **query** -- :class:`ResultSet` (:mod:`repro.results.query`): filtering
  on spec fields, dotted-path metric selection, group-by/pivot and
  baseline-comparison helpers over campaign outcomes and stores.
"""

from repro.results.metrics import Metric, MetricSet, units_for
from repro.results.migrate import migrate_record
from repro.results.run import RunResult, make_payload
from repro.results.tables import (
    Column,
    Row,
    TableSchema,
    available_tables,
    build_table,
    get_table,
    pivot_rows,
    register_table,
)
from repro.results.query import ResultSet

__all__ = [
    "Column",
    "Metric",
    "MetricSet",
    "ResultSet",
    "Row",
    "RunResult",
    "TableSchema",
    "available_tables",
    "build_table",
    "get_table",
    "make_payload",
    "migrate_record",
    "pivot_rows",
    "register_table",
    "units_for",
]
