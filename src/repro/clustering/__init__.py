"""Process clustering substrate (the off-line tool of Ropars et al. [28])."""

from repro.clustering.comm_graph import CommunicationGraph
from repro.clustering.metrics import ClusteringMetrics, evaluate_clustering, rollback_fraction
from repro.clustering.partitioner import (
    ClusteringResult,
    block_partition,
    choose_clustering,
    cluster_application,
    greedy_agglomerative,
    partition,
    refine,
    repartition_online,
    sweep_cluster_counts,
)
from repro.clustering.placement import (
    aligned_clusters,
    misaligned_clusters,
    placement_alignment,
)
from repro.clustering.presets import (
    FIGURE6_PAPER_OVERHEAD,
    TABLE1_CLUSTER_COUNTS,
    TABLE1_PAPER_VALUES,
    preset_cluster_count,
)

__all__ = [
    "CommunicationGraph",
    "ClusteringMetrics",
    "evaluate_clustering",
    "rollback_fraction",
    "ClusteringResult",
    "block_partition",
    "greedy_agglomerative",
    "refine",
    "partition",
    "cluster_application",
    "choose_clustering",
    "sweep_cluster_counts",
    "repartition_online",
    "aligned_clusters",
    "misaligned_clusters",
    "placement_alignment",
    "TABLE1_CLUSTER_COUNTS",
    "TABLE1_PAPER_VALUES",
    "FIGURE6_PAPER_OVERHEAD",
    "preset_cluster_count",
]
