"""Topology-aware protocol-cluster placement.

The partitioners in :mod:`repro.clustering.partitioner` cut the *logical*
communication graph; this module places protocol clusters relative to the
*physical* :class:`~repro.topology.topology.Topology` instead:

* :func:`aligned_clusters` makes protocol clusters coincide with physical
  clusters (or nodes), so HydEE's logged inter-cluster traffic is exactly
  the traffic that crosses the oversubscribed fabric -- the placement under
  which containment pays off during congested recovery;
* :func:`misaligned_clusters` deliberately deals ranks round-robin across
  protocol clusters so every protocol cluster straddles every physical
  cluster -- the adversarial placement used to quantify how much alignment
  matters;
* :func:`placement_alignment` scores any clustering against a topology
  (1.0 = perfectly aligned).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.errors import ClusteringError
from repro.topology.topology import Topology

Clusters = List[List[int]]


def aligned_clusters(topology: Topology, granularity: str = "cluster") -> Clusters:
    """One protocol cluster per physical cluster (or per node).

    ``granularity`` is ``"cluster"`` (default) or ``"node"``.
    """
    if granularity == "cluster":
        groups = topology.ranks_by_cluster()
    elif granularity == "node":
        groups = topology.ranks_by_node()
    else:
        raise ClusteringError(
            f"unknown placement granularity {granularity!r}; "
            "expected 'cluster' or 'node'"
        )
    clusters = [sorted(group) for group in groups if group]
    if not clusters:
        raise ClusteringError("topology places no ranks")
    return clusters


def misaligned_clusters(
    topology: Topology, num_clusters: Optional[int] = None
) -> Clusters:
    """Deal ranks round-robin across ``num_clusters`` protocol clusters.

    With ``num_clusters`` defaulting to the physical cluster count, every
    protocol cluster contains one rank from each physical cluster (when the
    layout is regular), i.e. the placement that maximises the protocol's
    inter-physical-cluster logging traffic.
    """
    k = num_clusters if num_clusters is not None else topology.num_clusters
    if not (1 <= k <= topology.nprocs):
        raise ClusteringError(
            f"number of clusters must be in [1, {topology.nprocs}], got {k}"
        )
    clusters: Clusters = [[] for _ in range(k)]
    for rank in range(topology.nprocs):
        clusters[rank % k].append(rank)
    return clusters


def placement_alignment(
    clusters: Sequence[Sequence[int]], topology: Topology
) -> float:
    """Fraction of intra-protocol-cluster rank pairs that are physically
    co-located in the same physical cluster (1.0 = perfectly aligned)."""
    pairs = 0
    colocated = 0
    for cluster in clusters:
        members = list(cluster)
        for i, a in enumerate(members):
            for b in members[i + 1:]:
                pairs += 1
                if topology.cluster_of_rank(a) == topology.cluster_of_rank(b):
                    colocated += 1
    if pairs == 0:
        return 1.0
    return colocated / pairs
