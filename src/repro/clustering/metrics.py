"""Clustering quality metrics reported in Table I of the paper.

For a clustering of ``n`` processes into clusters of sizes ``s_1..s_k``:

* the **average ratio of processes to roll back for a single failure**
  (assuming failures uniformly distributed over processes) is
  ``sum(s_i^2) / n^2``: a failure hits cluster ``i`` with probability
  ``s_i / n`` and then rolls back ``s_i / n`` of the processes;
* the **logged fraction** is the inter-cluster volume divided by the total
  communication volume (only inter-cluster messages are logged by HydEE).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.clustering.comm_graph import CommunicationGraph
from repro.errors import ClusteringError


@dataclass
class ClusteringMetrics:
    """Quality figures for one clustering of one communication graph."""

    num_clusters: int
    cluster_sizes: List[int]
    rollback_fraction: float
    logged_bytes: float
    total_bytes: float

    @property
    def logged_fraction(self) -> float:
        if self.total_bytes <= 0:
            return 0.0
        return self.logged_bytes / self.total_bytes

    @property
    def largest_cluster(self) -> int:
        return max(self.cluster_sizes) if self.cluster_sizes else 0

    def as_row(self) -> Dict[str, object]:
        return {
            "num_clusters": self.num_clusters,
            "rollback_pct": 100.0 * self.rollback_fraction,
            "logged_pct": 100.0 * self.logged_fraction,
            "logged_bytes": self.logged_bytes,
            "total_bytes": self.total_bytes,
            "cluster_sizes": list(self.cluster_sizes),
        }


def rollback_fraction(cluster_sizes: Sequence[int], nprocs: int) -> float:
    """Expected fraction of processes rolled back by a single uniform failure."""
    if nprocs <= 0:
        raise ClusteringError("nprocs must be positive")
    return float(sum(s * s for s in cluster_sizes)) / float(nprocs * nprocs)


def evaluate_clustering(
    graph: CommunicationGraph, clusters: Sequence[Sequence[int]]
) -> ClusteringMetrics:
    """Compute the Table I metrics of ``clusters`` on ``graph``."""
    sizes = [len(c) for c in clusters]
    covered = sorted(r for c in clusters for r in c)
    if covered != list(range(graph.nprocs)):
        raise ClusteringError(
            f"clustering does not partition 0..{graph.nprocs - 1} "
            f"(covered {len(covered)} ranks)"
        )
    logged = graph.cut_bytes(clusters)
    return ClusteringMetrics(
        num_clusters=len(clusters),
        cluster_sizes=sizes,
        rollback_fraction=rollback_fraction(sizes, graph.nprocs),
        logged_bytes=logged,
        total_bytes=graph.total_bytes,
    )


def balance_ratio(cluster_sizes: Sequence[int]) -> float:
    """max/mean cluster size; 1.0 means perfectly balanced."""
    if not cluster_sizes:
        return 1.0
    mean = float(np.mean(cluster_sizes))
    return float(max(cluster_sizes)) / mean if mean > 0 else 1.0
