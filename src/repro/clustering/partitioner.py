"""Process-clustering algorithms (the tool of Ropars et al. [28]).

The goal is the trade-off described in Section V-B of the paper: split the
application's processes into clusters so that

* a single failure only rolls back a small fraction of the processes
  (favouring many small clusters), while
* the volume of inter-cluster traffic -- which HydEE has to log -- stays
  small (favouring few large clusters that capture the heavy channels).

Three partitioners are provided and composed by the high-level helpers:

``block_partition``
    contiguous equal blocks of ranks; a strong baseline for HPC codes whose
    heavy channels connect nearby ranks (stencils, multipartition sweeps).
``greedy_agglomerative``
    start from singleton clusters and repeatedly merge the pair of clusters
    exchanging the most data, subject to a balance cap; this mirrors the
    volume-driven agglomeration of the paper's tool.
``refine``
    Kernighan--Lin-style single-vertex moves that reduce the logged volume
    without violating the balance cap.

``cluster_application`` / ``choose_clustering`` wrap these for the common
cases (Table I harness, examples, experiments).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.clustering.comm_graph import CommunicationGraph
from repro.clustering.metrics import ClusteringMetrics, evaluate_clustering
from repro.errors import ClusteringError

Clusters = List[List[int]]


# --------------------------------------------------------------------------- helpers
def _as_graph(graph_or_matrix) -> CommunicationGraph:
    if isinstance(graph_or_matrix, CommunicationGraph):
        return graph_or_matrix
    return CommunicationGraph.from_matrix(np.asarray(graph_or_matrix))


def _validate_k(nprocs: int, num_clusters: int) -> None:
    if not (1 <= num_clusters <= nprocs):
        raise ClusteringError(
            f"number of clusters must be in [1, {nprocs}], got {num_clusters}"
        )


# --------------------------------------------------------------------------- block
def block_partition(nprocs: int, num_clusters: int) -> Clusters:
    """Split ranks into ``num_clusters`` contiguous, near-equal blocks."""
    _validate_k(nprocs, num_clusters)
    base = nprocs // num_clusters
    remainder = nprocs % num_clusters
    clusters: Clusters = []
    start = 0
    for cid in range(num_clusters):
        size = base + (1 if cid < remainder else 0)
        clusters.append(list(range(start, start + size)))
        start += size
    return clusters


# ------------------------------------------------------------------- agglomerative
def greedy_agglomerative(
    graph_or_matrix,
    num_clusters: int,
    balance_tolerance: float = 1.5,
) -> Clusters:
    """Merge the heaviest-communicating clusters until ``num_clusters`` remain.

    ``balance_tolerance`` caps cluster sizes at
    ``ceil(nprocs / num_clusters) * balance_tolerance``; the cap is relaxed
    progressively if no merge is possible under it.
    """
    graph = _as_graph(graph_or_matrix)
    nprocs = graph.nprocs
    _validate_k(nprocs, num_clusters)
    if num_clusters == nprocs:
        return [[r] for r in range(nprocs)]

    weights = graph.symmetric().astype(np.float64).copy()
    np.fill_diagonal(weights, 0.0)
    members: List[Optional[List[int]]] = [[r] for r in range(nprocs)]
    sizes = np.ones(nprocs, dtype=np.int64)
    alive = np.ones(nprocs, dtype=bool)
    target_size = math.ceil(nprocs / num_clusters)
    cap = max(2, int(target_size * balance_tolerance))
    remaining = nprocs

    while remaining > num_clusters:
        best_pair: Optional[Tuple[int, int]] = None
        best_weight = -1.0
        alive_idx = np.nonzero(alive)[0]
        sub = weights[np.ix_(alive_idx, alive_idx)]
        # Consider pairs in decreasing weight order until one fits the cap.
        order = np.argsort(sub, axis=None)[::-1]
        for flat in order:
            i_local, j_local = np.unravel_index(flat, sub.shape)
            if i_local >= j_local:
                continue
            weight = sub[i_local, j_local]
            i, j = int(alive_idx[i_local]), int(alive_idx[j_local])
            if sizes[i] + sizes[j] <= cap:
                best_pair = (i, j)
                best_weight = float(weight)
                break
        if best_pair is None:
            # No merge fits the balance cap: relax it.
            cap = int(cap * 1.3) + 1
            continue
        if best_weight <= 0.0:
            # Remaining clusters do not communicate: merge the two smallest.
            alive_sorted = sorted(alive_idx.tolist(), key=lambda c: sizes[c])
            best_pair = (alive_sorted[0], alive_sorted[1])
        i, j = best_pair
        members[i] = sorted(members[i] + members[j])  # type: ignore[operator]
        members[j] = None
        sizes[i] += sizes[j]
        alive[j] = False
        weights[i, :] += weights[j, :]
        weights[:, i] += weights[:, j]
        weights[i, i] = 0.0
        weights[j, :] = 0.0
        weights[:, j] = 0.0
        remaining -= 1

    return sorted(
        [sorted(m) for m in members if m is not None], key=lambda c: c[0]
    )


# ------------------------------------------------------------------------ refinement
def refine(
    graph_or_matrix,
    clusters: Sequence[Sequence[int]],
    max_passes: int = 4,
    balance_tolerance: float = 1.5,
) -> Clusters:
    """Kernighan--Lin-style refinement: greedily move single ranks to the
    cluster they communicate with the most, whenever that reduces the logged
    volume and respects the balance cap."""
    graph = _as_graph(graph_or_matrix)
    nprocs = graph.nprocs
    sym = graph.symmetric()
    assignment = np.full(nprocs, -1, dtype=np.int64)
    for cid, cluster in enumerate(clusters):
        for rank in cluster:
            assignment[rank] = cid
    if (assignment < 0).any():
        raise ClusteringError("refine: clusters do not cover every rank")
    num_clusters = len(clusters)
    sizes = np.bincount(assignment, minlength=num_clusters)
    cap = max(2, int(math.ceil(nprocs / num_clusters) * balance_tolerance))

    for _ in range(max_passes):
        moved = 0
        for rank in range(nprocs):
            current = assignment[rank]
            if sizes[current] <= 1:
                continue
            # Volume towards each cluster.
            towards = np.zeros(num_clusters)
            for peer in np.nonzero(sym[rank])[0]:
                towards[assignment[peer]] += sym[rank, peer]
            best = int(np.argmax(towards))
            if best == current:
                continue
            gain = towards[best] - towards[current]
            if gain > 0 and sizes[best] < cap:
                assignment[rank] = best
                sizes[current] -= 1
                sizes[best] += 1
                moved += 1
        if moved == 0:
            break

    refined: Clusters = [[] for _ in range(num_clusters)]
    for rank in range(nprocs):
        refined[assignment[rank]].append(rank)
    return sorted([sorted(c) for c in refined if c], key=lambda c: c[0])


# ------------------------------------------------------------------------- top level
@dataclass
class ClusteringResult:
    """A clustering together with its Table-I-style metrics."""

    clusters: Clusters
    metrics: ClusteringMetrics
    method: str


def partition(
    graph_or_matrix,
    num_clusters: int,
    method: str = "auto",
    balance_tolerance: float = 1.5,
) -> ClusteringResult:
    """Partition a communication graph into ``num_clusters`` clusters.

    ``method`` is one of ``"block"``, ``"greedy"``, ``"greedy+refine"`` or
    ``"auto"`` (try all and keep the one with the smallest logged volume).
    """
    graph = _as_graph(graph_or_matrix)
    _validate_k(graph.nprocs, num_clusters)
    candidates: List[ClusteringResult] = []

    def _add(name: str, clusters: Clusters) -> None:
        candidates.append(
            ClusteringResult(
                clusters=clusters, metrics=evaluate_clustering(graph, clusters), method=name
            )
        )

    if method in ("block", "auto"):
        _add("block", block_partition(graph.nprocs, num_clusters))
        _add(
            "block+refine",
            refine(graph, block_partition(graph.nprocs, num_clusters),
                   balance_tolerance=balance_tolerance),
        )
    if method in ("greedy", "greedy+refine", "auto"):
        greedy = greedy_agglomerative(graph, num_clusters, balance_tolerance=balance_tolerance)
        if method != "greedy":
            _add("greedy+refine", refine(graph, greedy, balance_tolerance=balance_tolerance))
        if method in ("greedy", "auto"):
            _add("greedy", greedy)
    if method == "auto" and balance_tolerance > 1.1:
        # Also consider a tightly balanced agglomeration: unbalanced clusters
        # reduce the logged volume but inflate the rollback fraction, which is
        # the other half of the paper's trade-off.
        tight = greedy_agglomerative(graph, num_clusters, balance_tolerance=1.1)
        _add("greedy-balanced", tight)
        _add("greedy-balanced+refine", refine(graph, tight, balance_tolerance=1.1))
    if not candidates:
        raise ClusteringError(f"unknown clustering method {method!r}")
    # Keep only candidates with the requested number of clusters.
    exact = [c for c in candidates if c.metrics.num_clusters == num_clusters]
    pool = exact or candidates
    # Pick the smallest logged volume; among near ties (within 15 %) prefer
    # the clustering with the smallest rollback fraction (better balanced).
    best_logged = min(c.metrics.logged_bytes for c in pool)
    tolerance_band = best_logged * 1.15 + 1.0
    near_best = [c for c in pool if c.metrics.logged_bytes <= tolerance_band]
    return min(near_best, key=lambda c: (c.metrics.rollback_fraction, c.metrics.logged_bytes))


def cluster_application(
    application,
    num_clusters: int,
    method: str = "auto",
    balance_tolerance: float = 1.5,
) -> Clusters:
    """Convenience wrapper: cluster a workload from its analytic matrix."""
    graph = CommunicationGraph.from_application(application)
    return partition(graph, num_clusters, method=method,
                     balance_tolerance=balance_tolerance).clusters


def sweep_cluster_counts(
    graph_or_matrix,
    counts: Sequence[int],
    method: str = "auto",
) -> List[ClusteringResult]:
    """Evaluate a range of cluster counts (the rollback/logging frontier)."""
    graph = _as_graph(graph_or_matrix)
    return [partition(graph, k, method=method) for k in counts]


def choose_clustering(
    graph_or_matrix,
    max_rollback_fraction: float = 0.25,
    candidate_counts: Optional[Sequence[int]] = None,
    method: str = "auto",
) -> ClusteringResult:
    """Pick the clustering that logs the least data while keeping the
    expected rollback fraction under ``max_rollback_fraction`` (the trade-off
    the paper's tool optimises).  Falls back to the smallest rollback
    fraction when no candidate satisfies the constraint."""
    graph = _as_graph(graph_or_matrix)
    if candidate_counts is None:
        n = graph.nprocs
        candidate_counts = sorted(
            {k for k in (2, 4, 5, 6, 8, 12, 16, 24, 32) if 2 <= k <= n}
        )
    results = sweep_cluster_counts(graph, candidate_counts, method=method)
    feasible = [r for r in results if r.metrics.rollback_fraction <= max_rollback_fraction]
    if feasible:
        return min(feasible, key=lambda r: r.metrics.logged_bytes)
    return min(results, key=lambda r: r.metrics.rollback_fraction)


def repartition_online(
    previous: Sequence[Sequence[int]],
    graph_or_matrix,
    num_clusters: Optional[int] = None,
    balance_tolerance: float = 1.5,
) -> ClusteringResult:
    """Dynamic re-clustering (the paper's future-work item).

    Starts from the previous clustering and refines it against the newly
    observed communication graph, so that the assignment tracks applications
    whose communication pattern drifts over time without being recomputed
    from scratch.
    """
    graph = _as_graph(graph_or_matrix)
    k = num_clusters or len(previous)
    if k != len(previous):
        return partition(graph, k, method="auto", balance_tolerance=balance_tolerance)
    refined = refine(graph, previous, balance_tolerance=balance_tolerance)
    return ClusteringResult(
        clusters=refined, metrics=evaluate_clustering(graph, refined), method="online-refine"
    )
