"""Communication graph construction.

The clustering tool of Ropars et al. [28] -- used by the paper to produce the
configurations of Table I -- takes as input a graph whose vertices are the
application processes and whose edge weights are the volumes of data
exchanged on each channel.  The paper's authors instrumented MPICH2 to
collect those volumes; this module builds the same graph either

* analytically, from a workload's :meth:`communication_matrix` (fast path
  used by the Table I harness),
* from a simulation trace (:class:`repro.simulator.trace.TraceRecorder`),
  which is the instrumented-library equivalent,
* or directly from a dense numpy matrix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

import networkx as nx
import numpy as np

from repro.errors import ClusteringError


@dataclass
class CommunicationGraph:
    """Symmetric channel-volume graph over ``nprocs`` processes."""

    #: directed volume matrix in bytes; entry [i, j] = bytes sent from i to j.
    volume: np.ndarray
    #: optional directed message-count matrix.
    messages: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        self.volume = np.asarray(self.volume, dtype=np.float64)
        if self.volume.ndim != 2 or self.volume.shape[0] != self.volume.shape[1]:
            raise ClusteringError("communication matrix must be square")
        if (self.volume < 0).any():
            raise ClusteringError("communication volumes must be non-negative")
        if self.messages is not None:
            self.messages = np.asarray(self.messages, dtype=np.float64)
            if self.messages.shape != self.volume.shape:
                raise ClusteringError("message-count matrix shape mismatch")

    # ------------------------------------------------------------------ props
    @property
    def nprocs(self) -> int:
        return self.volume.shape[0]

    @property
    def total_bytes(self) -> float:
        return float(self.volume.sum())

    def symmetric(self) -> np.ndarray:
        """Undirected volume matrix (sum of both directions)."""
        return self.volume + self.volume.T

    def channel_bytes(self, src: int, dst: int) -> float:
        return float(self.volume[src, dst])

    def heaviest_channels(self, k: int = 10) -> List[Tuple[int, int, float]]:
        sym = np.triu(self.symmetric(), k=1)
        flat = np.argsort(sym, axis=None)[::-1][:k]
        out = []
        for index in flat:
            i, j = np.unravel_index(index, sym.shape)
            if sym[i, j] <= 0:
                break
            out.append((int(i), int(j), float(sym[i, j])))
        return out

    # -------------------------------------------------------------- builders
    @classmethod
    def from_matrix(cls, matrix: np.ndarray) -> "CommunicationGraph":
        return cls(volume=np.asarray(matrix, dtype=np.float64))

    @classmethod
    def from_trace(cls, trace, nprocs: int) -> "CommunicationGraph":
        """Build from a :class:`TraceRecorder` (instrumented-library path)."""
        return cls(
            volume=trace.communication_matrix(nprocs, weight="bytes"),
            messages=trace.communication_matrix(nprocs, weight="messages"),
        )

    @classmethod
    def from_application(cls, application, weight: str = "bytes") -> "CommunicationGraph":
        """Build from a workload's analytic communication matrix."""
        matrix = application.communication_matrix(weight=weight)
        graph = cls(volume=np.asarray(matrix, dtype=np.float64))
        try:
            graph.messages = np.asarray(
                application.communication_matrix(weight="messages"), dtype=np.float64
            )
        except NotImplementedError:  # pragma: no cover - optional
            graph.messages = None
        return graph

    # ------------------------------------------------------------- networkx
    def to_networkx(self) -> nx.Graph:
        """Undirected weighted graph (weight = bytes in both directions)."""
        sym = self.symmetric()
        graph = nx.Graph()
        graph.add_nodes_from(range(self.nprocs))
        rows, cols = np.nonzero(np.triu(sym, k=1))
        for i, j in zip(rows.tolist(), cols.tolist()):
            graph.add_edge(i, j, weight=float(sym[i, j]))
        return graph

    # ------------------------------------------------------------------ misc
    def cut_bytes(self, clusters: Iterable[Iterable[int]]) -> float:
        """Bytes crossing cluster boundaries (i.e. the logged volume)."""
        assignment = np.full(self.nprocs, -1, dtype=np.int64)
        for cid, members in enumerate(clusters):
            for rank in members:
                assignment[rank] = cid
        if (assignment < 0).any():
            raise ClusteringError("clusters do not cover every rank")
        mask = assignment[:, None] != assignment[None, :]
        return float(self.volume[mask].sum())
