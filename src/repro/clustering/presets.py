"""Clustering presets matching Table I of the paper.

The paper runs the clustering tool of [28] on communication graphs collected
from the class D NAS benchmarks on 256 processes and reports the resulting
number of clusters.  These counts are reused by the Table I harness so that
the reproduction is evaluated with the same cluster counts as the paper.
"""

from __future__ import annotations

from typing import Dict

#: Number of clusters chosen by the paper's tool on 256 processes (Table I).
TABLE1_CLUSTER_COUNTS: Dict[str, int] = {
    "bt": 5,
    "cg": 16,
    "ft": 2,
    "lu": 8,
    "mg": 4,
    "sp": 6,
}

#: Values reported in Table I of the paper (for EXPERIMENTS.md comparisons).
TABLE1_PAPER_VALUES: Dict[str, Dict[str, float]] = {
    "bt": {"clusters": 5, "rollback_pct": 21.78, "logged_pct": 18.09,
           "logged_gb": 143.0, "total_gb": 791.0},
    "cg": {"clusters": 16, "rollback_pct": 6.25, "logged_pct": 18.98,
           "logged_gb": 440.0, "total_gb": 2318.0},
    "ft": {"clusters": 2, "rollback_pct": 50.0, "logged_pct": 50.19,
           "logged_gb": 431.0, "total_gb": 860.0},
    "lu": {"clusters": 8, "rollback_pct": 12.5, "logged_pct": 13.26,
           "logged_gb": 44.0, "total_gb": 337.0},
    "mg": {"clusters": 4, "rollback_pct": 25.0, "logged_pct": 19.63,
           "logged_gb": 13.0, "total_gb": 66.0},
    "sp": {"clusters": 6, "rollback_pct": 18.56, "logged_pct": 20.04,
           "logged_gb": 289.0, "total_gb": 1446.0},
}

#: Figure 6 failure-free overheads reported by the paper (normalized time).
FIGURE6_PAPER_OVERHEAD: Dict[str, Dict[str, float]] = {
    # Values read off Figure 6: native = 1.0 by construction; message logging
    # and HydEE stay within a few percent of native (HydEE at most 1.25 %).
    "bt": {"message_logging": 1.02, "hydee": 1.01},
    "cg": {"message_logging": 1.03, "hydee": 1.01},
    "ft": {"message_logging": 1.05, "hydee": 1.012},
    "lu": {"message_logging": 1.02, "hydee": 1.005},
    "mg": {"message_logging": 1.02, "hydee": 1.01},
    "sp": {"message_logging": 1.03, "hydee": 1.012},
}


def preset_cluster_count(benchmark: str) -> int:
    """Cluster count used by the paper for ``benchmark`` (case-insensitive)."""
    return TABLE1_CLUSTER_COUNTS[benchmark.lower()]
