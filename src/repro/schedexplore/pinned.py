"""Pinned exploration scenarios: declarative twins of the determinism pins.

These specs mirror the faulty scenarios of
``tests/integration/test_determinism_pins.py`` -- the runs whose observable
behaviour is already pinned byte-for-byte against a fixture -- so the
explorer, the CI smoke job and the benchmark all probe exactly the recovery
paths the regression suite protects: a HydEE partial rollback, a coordinated
global rollback and a full-message-logging localised replay, each with small
(16 KiB) checkpoints so recovery structure dominates.

All three run send-deterministic workloads on the flat network, so every
seeded interleaving must reproduce the FIFO baseline exactly -- state,
recovery trace *and* timing.  A divergence here is a real schedule-space
race in the simulator or a protocol, never an expected spread.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Union

from repro.errors import ConfigurationError
from repro.scenarios.spec import (
    ClusteringSpec,
    FailureSpec,
    ProtocolSpec,
    ScenarioSpec,
    WorkloadSpec,
)

_CLUSTERS16 = ((0, 1, 2, 3), (4, 5, 6, 7), (8, 9, 10, 11), (12, 13, 14, 15))

PINNED_SCENARIOS: Dict[str, ScenarioSpec] = {
    "hydee-stencil2d-single-failure": ScenarioSpec(
        name="hydee-stencil2d-single-failure",
        workload=WorkloadSpec(kind="stencil2d", nprocs=16, iterations=8),
        protocol=ProtocolSpec(
            name="hydee",
            options={"checkpoint_interval": 2, "checkpoint_size_bytes": 16 * 1024},
            clustering=ClusteringSpec(method="explicit", clusters=_CLUSTERS16),
        ),
        failures=(FailureSpec(ranks=(9,), at_iteration=5),),
    ),
    "coordinated-stencil2d": ScenarioSpec(
        name="coordinated-stencil2d",
        workload=WorkloadSpec(kind="stencil2d", nprocs=16, iterations=6),
        protocol=ProtocolSpec(
            name="coordinated",
            options={"checkpoint_interval": 2, "checkpoint_size_bytes": 16 * 1024},
        ),
        failures=(FailureSpec(ranks=(6,), at_iteration=4),),
    ),
    "message-logging-ring": ScenarioSpec(
        name="message-logging-ring",
        workload=WorkloadSpec(kind="ring", nprocs=8, iterations=6),
        protocol=ProtocolSpec(
            name="message-logging",
            options={"checkpoint_interval": 2, "checkpoint_size_bytes": 16 * 1024},
        ),
        failures=(FailureSpec(ranks=(3,), at_iteration=3),),
    ),
}


def available_pinned() -> List[str]:
    return sorted(PINNED_SCENARIOS)


def pinned_spec(
    name: str,
    seeds: Union[int, Sequence[int]] = 5,
    policy: str = "adversarial",
    shrink: bool = True,
) -> ScenarioSpec:
    """A pinned scenario tagged as a ``schedule-explore`` campaign job."""
    try:
        spec = PINNED_SCENARIOS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown pinned exploration scenario {name!r}; available: "
            f"{', '.join(available_pinned())}"
        ) from None
    tags: Dict[str, Any] = {
        "analysis": "schedule-explore",
        "explore_seeds": list(seeds) if not isinstance(seeds, int) else seeds,
        "explore_policy": policy,
        "explore_shrink": shrink,
    }
    return ScenarioSpec(
        name=spec.name,
        workload=spec.workload,
        protocol=spec.protocol,
        network=spec.network,
        failures=spec.failures,
        execution=spec.execution,
        config=spec.config,
        tags=tags,
    )
