"""The ``schedule-explore`` campaign job.

Registered in :data:`repro.campaign.ANALYSES` under ``"schedule-explore"``
and selected by tagging a scenario ``{"analysis": "schedule-explore"}``.
Exploration parameters ride in the same tags (and therefore in the spec
hash, so differently-parameterised explorations cache separately):

``explore_seeds``
    seed count (int) or explicit seed list; default 5.
``explore_policy``
    ``"random"`` or ``"adversarial"`` (default).
``explore_shrink``
    delta-debug witnesses before reporting (default true).

The payload is :meth:`ExplorationReport.to_payload` -- pure JSON and fully
deterministic for a given spec, so serial and ``--workers N`` campaigns
produce byte-identical records; the artifact is the live report.
"""

from __future__ import annotations

from typing import Any, List, Sequence, Union

from repro.campaign.jobs import JobOutcome, jsonify
from repro.scenarios.spec import ScenarioSpec
from repro.schedexplore.explorer import explore


def _seeds_tag(value: Any) -> Union[int, Sequence[int]]:
    if isinstance(value, bool):
        raise TypeError("explore_seeds must be an int or a list of ints")
    if isinstance(value, int):
        return value
    seeds: List[int] = [int(seed) for seed in value]
    return seeds


def schedule_explore_job(spec: ScenarioSpec) -> JobOutcome:
    """Explore ``spec``'s schedule space; payload = invariance verdict."""
    seeds = _seeds_tag(spec.tags.get("explore_seeds", 5))
    policy = str(spec.tags.get("explore_policy", "adversarial"))
    shrink = bool(spec.tags.get("explore_shrink", True))
    report = explore(spec, seeds=seeds, policy=policy, shrink=shrink)
    return jsonify(report.to_payload()), report
