"""Command-line schedule-space explorer: ``python -m repro.schedexplore``.

Subcommands
-----------

``explore``
    Run seeded interleavings of pinned scenarios (or a spec file) and report
    whether every observable is interleaving-invariant.  Exits non-zero on
    divergence; witnesses can be saved for replay::

        python -m repro.schedexplore explore --pinned all --seeds 3
        python -m repro.schedexplore explore --spec scenario.json \\
            --policy random --seeds 10 --witness-dir witnesses/

``replay WITNESS``
    Re-run a saved witness and check that it reproduces the same first
    divergence it recorded (exits non-zero when it does not)::

        python -m repro.schedexplore replay witnesses/stencil.witness.json

``list``
    Show the pinned scenarios and available policies.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional, Sequence

from repro.errors import ReproError
from repro.scenarios.spec import ScenarioSpec, load_specs
from repro.schedexplore.explorer import ExplorationReport, explore, replay_witness
from repro.schedexplore.pinned import PINNED_SCENARIOS, available_pinned
from repro.schedexplore.policies import POLICIES
from repro.schedexplore.witness import ScheduleWitness


def main(argv: Optional[Sequence[str]] = None) -> int:
    try:
        return _main(argv)
    except (ReproError, OSError, json.JSONDecodeError) as exc:
        print(f"repro-schedexplore: error: {exc}", file=sys.stderr)
        return 2


def _main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-schedexplore",
        description="Explore the simulator's schedule space for races.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    explore_parser = sub.add_parser(
        "explore", help="run seeded interleavings, check invariance"
    )
    explore_parser.add_argument(
        "--pinned", default=None, metavar="NAME",
        help=f"pinned scenario to explore, or 'all' ({', '.join(available_pinned())})",
    )
    explore_parser.add_argument(
        "--spec", default=None, metavar="FILE",
        help="JSON spec file (one scenario spec or a list)",
    )
    explore_parser.add_argument("--seeds", type=int, default=5,
                                help="number of seeded interleavings per scenario")
    explore_parser.add_argument("--policy", default="adversarial",
                                choices=sorted(set(POLICIES) - {"fifo"}))
    explore_parser.add_argument("--no-shrink", action="store_true",
                                help="report raw witnesses without delta-debugging")
    explore_parser.add_argument("--witness-dir", default=None, metavar="DIR",
                                help="save divergence witnesses to this directory")
    explore_parser.add_argument("--json", action="store_true", dest="as_json",
                                help="print full reports as JSON")

    replay_parser = sub.add_parser("replay", help="re-run a saved witness")
    replay_parser.add_argument("witness", help="witness JSON file")
    replay_parser.add_argument("--json", action="store_true", dest="as_json")

    sub.add_parser("list", help="list pinned scenarios and policies")

    args = parser.parse_args(argv)
    if args.command == "list":
        return _list()
    if args.command == "replay":
        return _replay(args)
    return _explore(args)


def _list() -> int:
    print("pinned scenarios:")
    for name in available_pinned():
        print(f"  {name:36s} {PINNED_SCENARIOS[name].describe()}")
    print("policies:", ", ".join(sorted(POLICIES)))
    return 0


def _gather_specs(args: argparse.Namespace) -> List[ScenarioSpec]:
    if (args.pinned is None) == (args.spec is None):
        raise ReproError("explore needs exactly one of --pinned or --spec")
    if args.spec is not None:
        with open(args.spec, encoding="utf-8") as fh:
            return list(load_specs(json.load(fh)))
    if args.pinned == "all":
        return [PINNED_SCENARIOS[name] for name in available_pinned()]
    if args.pinned not in PINNED_SCENARIOS:
        raise ReproError(
            f"unknown pinned scenario {args.pinned!r}; available: "
            f"{', '.join(available_pinned())} (or 'all')"
        )
    return [PINNED_SCENARIOS[args.pinned]]


def _explore(args: argparse.Namespace) -> int:
    specs = _gather_specs(args)
    divergent = 0
    reports = {}
    for spec in specs:
        report = explore(
            spec, seeds=args.seeds, policy=args.policy, shrink=not args.no_shrink
        )
        reports[spec.name] = report
        _print_report(spec, report)
        if not report.invariant:
            divergent += 1
            if args.witness_dir:
                os.makedirs(args.witness_dir, exist_ok=True)
                for number, witness in enumerate(report.witnesses):
                    path = os.path.join(
                        args.witness_dir, f"{spec.name}-{number}.witness.json"
                    )
                    witness.save(path)
                    print(f"  witness saved: {path}")
    if args.as_json:
        json.dump(
            {name: report.to_payload() for name, report in reports.items()},
            sys.stdout, indent=1, sort_keys=True,
        )
        print()
    print(
        f"{len(specs)} scenario(s), {divergent} divergent, "
        f"policy={args.policy}, seeds={args.seeds}"
    )
    return 1 if divergent else 0


def _print_report(spec: ScenarioSpec, report: ExplorationReport) -> None:
    payload = report.to_payload()
    verdict = "INVARIANT" if report.invariant else "DIVERGENT"
    timing = "state+time" if report.times_compared else "state only"
    print(
        f"{spec.name:36s} {verdict:9s} "
        f"interleavings={payload['interleavings']} "
        f"boundaries={payload['checkpoint_boundaries']} "
        f"ties<= {payload['tie_dispatches']['max']} "
        f"compared={timing}"
    )
    for witness in report.witnesses:
        divergence = witness.divergence
        print(
            f"  seed {witness.seed}: {divergence['kind']}"
            + (f"@{divergence['index']}" if divergence.get("index") is not None else "")
            + f" after shrink {len(witness.decisions)}/{witness.original_decisions}"
            " decisions"
        )


def _replay(args: argparse.Namespace) -> int:
    witness = ScheduleWitness.load(args.witness)
    outcome = replay_witness(witness)
    if args.as_json:
        json.dump(outcome, sys.stdout, indent=1, sort_keys=True)
        print()
    else:
        expected = outcome["expected"]
        print(
            f"witness {args.witness}: "
            + ("reproduced" if outcome["reproduced"] else "NOT reproduced")
            + f" ({expected['kind']}, {outcome['decisions']} decisions)"
        )
    return 0 if outcome["reproduced"] else 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
