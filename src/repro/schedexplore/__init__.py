"""Schedule-space race detection.

The simulator is deterministic by construction: equal-time events dispatch
in insertion order.  But the *model* does not constrain that order -- it is
an artefact -- so any observable behaviour that depends on it is a race the
determinism story papers over.  This package explores that schedule space:
seeded policies reorder equal-time event groups
(:mod:`~repro.schedexplore.policies`), canonical fingerprints pin the state
at every checkpoint boundary (:mod:`~repro.schedexplore.fingerprint`), the
explorer compares interleavings against the FIFO baseline
(:mod:`~repro.schedexplore.explorer`) and packages any divergence as a
minimal, replayable witness (:mod:`~repro.schedexplore.witness`).

Run it as a campaign job (``{"analysis": "schedule-explore"}``,
:mod:`~repro.schedexplore.job`) or from the command line::

    PYTHONPATH=src python -m repro.schedexplore explore --pinned all --seeds 3
"""

from repro.schedexplore.explorer import (
    ExplorationReport,
    InterleavingRun,
    explore,
    explore_factory,
    first_divergence,
    replay_witness,
    run_interleaving,
)
from repro.schedexplore.fingerprint import (
    FingerprintRecorder,
    fingerprint_state,
    fingerprint_value,
    normalized_trace_digest,
    stable_digest,
    state_digest,
)
from repro.schedexplore.policies import (
    POLICIES,
    AdversarialPolicy,
    FifoPolicy,
    RandomPolicy,
    ReplayPolicy,
    SchedulePolicy,
    make_policy,
)
from repro.schedexplore.witness import ScheduleWitness, same_divergence, shrink_witness

__all__ = [
    "AdversarialPolicy",
    "ExplorationReport",
    "FifoPolicy",
    "FingerprintRecorder",
    "InterleavingRun",
    "POLICIES",
    "RandomPolicy",
    "ReplayPolicy",
    "SchedulePolicy",
    "ScheduleWitness",
    "explore",
    "explore_factory",
    "fingerprint_state",
    "fingerprint_value",
    "first_divergence",
    "make_policy",
    "normalized_trace_digest",
    "replay_witness",
    "run_interleaving",
    "same_divergence",
    "shrink_witness",
    "stable_digest",
    "state_digest",
]
