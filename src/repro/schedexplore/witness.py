"""Replayable schedule witnesses and greedy delta-debug shrinking.

When an interleaving diverges from the FIFO baseline, the explorer packages
the policy's recorded decisions -- ``{tie index: engine seq}``, the complete
description of how that run departed from canonical order -- together with
the scenario and the observed first divergence into a :class:`
ScheduleWitness`.  The witness is a plain JSON document: re-running the
scenario under a :class:`~repro.schedexplore.policies.ReplayPolicy` built
from its decisions reproduces the divergent schedule deterministically, on
any machine, serial or inside a worker pool.

A fresh witness from a random policy typically contains hundreds of
decisions, almost all irrelevant.  :func:`shrink_witness` greedily drops one
decision at a time (replaying the rest, FIFO at the dropped tie) and keeps
each drop that preserves the *same first divergence*, iterating to a fixed
point.  The result is a minimal-ish reorder -- frequently a single swapped
pair -- that still triggers the bug, which is the artefact a human debugs.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional


@dataclass
class ScheduleWitness:
    """A replayable divergent schedule."""

    #: policy that found the divergence (``random``/``adversarial``/...).
    policy: str
    #: seed the finding policy ran with.
    seed: int
    #: tie index -> engine seq dispatched there (non-FIFO choices only).
    decisions: Dict[int, int]
    #: first observed divergence: {"kind", "index"?, "baseline", "observed"}.
    divergence: Dict[str, Any]
    #: scenario spec (:meth:`ScenarioSpec.to_dict`), when spec-driven.
    scenario: Optional[Dict[str, Any]] = None
    #: decision count of the unshrunk witness (0 = never shrunk).
    original_decisions: int = 0
    version: int = 1
    metadata: Dict[str, Any] = field(default_factory=dict)

    # ---------------------------------------------------------------- i/o
    def to_dict(self) -> Dict[str, Any]:
        return {
            "version": self.version,
            "policy": self.policy,
            "seed": self.seed,
            "decisions": {str(key): value for key, value in sorted(self.decisions.items())},
            "divergence": self.divergence,
            "scenario": self.scenario,
            "original_decisions": self.original_decisions,
            "metadata": self.metadata,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ScheduleWitness":
        return cls(
            policy=str(data["policy"]),
            seed=int(data["seed"]),
            decisions={int(k): int(v) for k, v in data["decisions"].items()},
            divergence=dict(data["divergence"]),
            scenario=data.get("scenario"),
            original_decisions=int(data.get("original_decisions", 0)),
            version=int(data.get("version", 1)),
            metadata=dict(data.get("metadata", {})),
        )

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=1, sort_keys=True)
            fh.write("\n")

    @classmethod
    def load(cls, path: str) -> "ScheduleWitness":
        with open(os.fspath(path), encoding="utf-8") as fh:
            return cls.from_dict(json.load(fh))


def same_divergence(a: Optional[Dict[str, Any]], b: Optional[Dict[str, Any]]) -> bool:
    """Whether two divergence records describe the same first divergence.

    Matching is by kind and position (boundary index), not by the observed
    hash: a shrunk schedule may corrupt state *differently* at the same
    dispatch point, and that still witnesses the same race.
    """
    if a is None or b is None:
        return False
    return a.get("kind") == b.get("kind") and a.get("index") == b.get("index")


def shrink_witness(
    witness: ScheduleWitness,
    diverges: Callable[[Dict[int, int]], Optional[Dict[str, Any]]],
    max_rounds: int = 4,
) -> ScheduleWitness:
    """Greedy delta-debug: drop decisions whose removal keeps the divergence.

    ``diverges(decisions)`` re-runs the scenario under a replay of
    ``decisions`` and returns the first-divergence record, or ``None`` when
    the run matches the baseline.  One round tries dropping each decision in
    turn (highest tie index first: late reorders are usually consequences,
    not causes); rounds repeat until a fixed point or ``max_rounds``.  The
    returned witness's divergence is re-verified against the final decision
    set, so replaying the shrunk witness reproduces exactly what it claims.
    """
    reference = witness.divergence
    current = dict(witness.decisions)
    for _ in range(max_rounds):
        dropped_any = False
        for key in sorted(current, reverse=True):
            trial = {k: v for k, v in current.items() if k != key}
            observed = diverges(trial)
            if observed is not None and same_divergence(observed, reference):
                current = trial
                reference = observed
                dropped_any = True
        if not dropped_any:
            break
    return ScheduleWitness(
        policy=witness.policy,
        seed=witness.seed,
        decisions=current,
        divergence=reference,
        scenario=witness.scenario,
        original_decisions=witness.original_decisions or len(witness.decisions),
        metadata=dict(witness.metadata),
    )
