"""Schedule policies: seeded tie-break choosers for the engine.

The engine's dispatch order is fully determined except for one degree of
freedom: when several events are admissible at the *same* simulation time,
their relative order is an artefact of insertion sequence, not of the model
(the network never constrains it).  A policy decides that order.  Four are
provided:

* :class:`FifoPolicy` -- always the canonical ``(time, seq)`` order; bit-
  identical to running without a policy (the explorer's baseline).
* :class:`RandomPolicy` -- uniform seeded shuffle of every tie.
* :class:`AdversarialPolicy` -- seeded, but biased toward dispatching
  recovery-session and guard-window machinery (rollbacks, restarts, control
  deliveries, failure strikes, drain probes) ahead of application progress,
  and toward anti-FIFO order otherwise.  Order-sensitivity bugs cluster
  around recovery interleavings; this policy spends its reorderings there.
* :class:`ReplayPolicy` -- re-applies a recorded decision sequence, the
  replay half of a schedule witness (:mod:`repro.schedexplore.witness`).

Every policy records the non-FIFO choices it makes as ``{tie index: chosen
engine seq}``; that mapping *is* the replayable schedule witness, and
dropping entries from it (falling back to FIFO at those ties) is how
witnesses shrink.  All randomness comes from :func:`repro.faults.
distributions.derive_rng` -- private SHA-256-keyed streams, never the global
RNG.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, List, Mapping, Optional

from repro.errors import ConfigurationError
from repro.faults.distributions import derive_rng

# Queue-entry field indexes; identical in the pure and compiled engine cores
# (entries are plain lists in either build).
from repro.simulator._engine_core import _CALLBACK, _SEQ

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simulator._engine_core import SimulationEngine


class SchedulePolicy:
    """Base policy: canonical FIFO order, plus decision recording.

    Subclasses override :meth:`_select`; :meth:`choose` wraps it with the
    bookkeeping every policy shares -- counting tie dispatches and recording
    each non-FIFO choice by the chosen entry's engine ``seq`` (stable across
    runs, unlike the index, which depends on what else is in the group).
    """

    name = "fifo"

    def __init__(self) -> None:
        #: chooser invocations with more than one candidate.
        self.tie_dispatches = 0
        #: tie index -> engine seq chosen there (only non-FIFO choices).
        self.decisions: Dict[int, int] = {}

    def choose(self, time: float, group: List[List[Any]]) -> int:
        call = self.tie_dispatches
        self.tie_dispatches += 1
        index = self._select(call, time, group)
        if index != 0:
            self.decisions[call] = group[index][_SEQ]
        return index

    def _select(self, call: int, time: float, group: List[List[Any]]) -> int:
        return 0

    def install(
        self,
        engine: "SimulationEngine",
        on_time_drained: Optional[Callable[[float], None]] = None,
    ) -> None:
        engine.set_schedule_policy(self.choose, on_time_drained)


class FifoPolicy(SchedulePolicy):
    """The canonical order; reproduces the policy-free engine exactly."""


class RandomPolicy(SchedulePolicy):
    """Uniform seeded shuffle of every equal-time group."""

    name = "random"

    def __init__(self, seed: int = 0) -> None:
        super().__init__()
        self.seed = seed
        self._rng = derive_rng("schedexplore", self.name, seed)

    def _select(self, call: int, time: float, group: List[List[Any]]) -> int:
        return self._rng.randrange(len(group))


#: callback qualname fragments marking recovery / guard-window machinery.
_ADVERSARY_MARKERS = (
    "recover",
    "rollback",
    "restart",
    "replay",
    "fail",
    "strike",
    "_dispatch_control",
    "_drain_then_fire",
    "fire",
    "gate",
)


class AdversarialPolicy(SchedulePolicy):
    """Seeded chooser biased toward recovery and guard-window events.

    With probability ``bias`` a tie containing recovery-flavoured callbacks
    (classified by qualname) dispatches one of *them* first; a tie without
    any dispatches in anti-FIFO order (newest seq first), the exact reversal
    of what every test normally exercises.  The remaining probability mass is
    a uniform draw, so the policy still explores arbitrary orders.
    """

    name = "adversarial"

    def __init__(self, seed: int = 0, bias: float = 0.8) -> None:
        super().__init__()
        self.seed = seed
        self.bias = bias
        self._rng = derive_rng("schedexplore", self.name, seed)
        self._marked: Dict[int, bool] = {}

    def _is_marked(self, callback: Any) -> bool:
        function = getattr(callback, "__func__", callback)
        cached = self._marked.get(id(function))
        if cached is None:
            qualname = str(getattr(function, "__qualname__", "")).lower()
            cached = any(marker in qualname for marker in _ADVERSARY_MARKERS)
            self._marked[id(function)] = cached
        return cached

    def _select(self, call: int, time: float, group: List[List[Any]]) -> int:
        draw = self._rng.random()
        if draw < self.bias:
            marked = [
                index
                for index, entry in enumerate(group)
                if self._is_marked(entry[_CALLBACK])
            ]
            if marked:
                return marked[self._rng.randrange(len(marked))]
            return len(group) - 1
        return self._rng.randrange(len(group))


class ReplayPolicy(SchedulePolicy):
    """Re-applies a recorded ``{tie index: seq}`` decision mapping.

    At each tie the recorded seq is dispatched if it is present in the
    group; otherwise -- the tie was never recorded, or earlier divergence
    from the recording shifted the schedule so the seq is elsewhere -- the
    policy falls back to FIFO.  That graceful degradation is what makes
    witness shrinking possible: dropping a decision is exactly "replay the
    rest, FIFO there".
    """

    name = "replay"

    def __init__(self, decisions: Mapping[int, int]) -> None:
        super().__init__()
        self.recorded = {int(key): int(value) for key, value in decisions.items()}

    def _select(self, call: int, time: float, group: List[List[Any]]) -> int:
        seq = self.recorded.get(call)
        if seq is not None:
            for index, entry in enumerate(group):
                if entry[_SEQ] == seq:
                    return index
        return 0


#: policy name -> seeded factory.
POLICIES: Dict[str, Callable[[int], SchedulePolicy]] = {
    "fifo": lambda seed: FifoPolicy(),
    "random": RandomPolicy,
    "adversarial": AdversarialPolicy,
}


def make_policy(name: str, seed: int = 0) -> SchedulePolicy:
    """Instantiate a named exploration policy with a seed."""
    try:
        factory = POLICIES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown schedule policy {name!r}; available: "
            f"{', '.join(sorted(POLICIES))}"
        ) from None
    return factory(seed)
