"""Adversarial interleaving explorer: the dynamic race detector.

For one scenario, the explorer runs a FIFO baseline plus N seeded
interleavings, each reordering only what the model leaves unconstrained
(same-timestamp event groups), and checks that everything the paper's
correctness argument calls interleaving-invariant actually is:

* the state fingerprint at every checkpoint-writing timestamp,
* the final state fingerprint,
* the normalized recovery trace (rollback-adjusted per-rank send sequences),
* completion status -- and, on uncontended networks, the makespan itself.

A send-deterministic workload under a correct protocol passes every seed; a
schedule-dependent one (or a protocol bug) produces a divergence, which is
captured as a replayable :class:`~repro.schedexplore.witness.ScheduleWitness`
and shrunk to a minimal reorder.

Two entry points: :func:`explore` takes a declarative
:class:`~repro.scenarios.spec.ScenarioSpec`; :func:`explore_factory` takes a
bare ``() -> Simulation`` factory, which is what tests use to probe fixture
workloads that are not registered scenario kinds.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from repro.errors import DeadlockError, SimulationError
from repro.scenarios.build import build
from repro.scenarios.spec import ScenarioSpec
from repro.schedexplore.fingerprint import (
    FingerprintRecorder,
    normalized_trace_digest,
)
from repro.schedexplore.policies import (
    FifoPolicy,
    ReplayPolicy,
    SchedulePolicy,
    make_policy,
)
from repro.schedexplore.witness import ScheduleWitness, same_divergence, shrink_witness

if False:  # pragma: no cover - typing only
    from repro.simulator.simulation import Simulation

SimFactory = Callable[[], "Simulation"]


@dataclass
class InterleavingRun:
    """Observable outcome of one interleaving."""

    label: str
    status: str
    makespan: float
    events_processed: int
    tie_dispatches: int
    decisions: Dict[int, int]
    boundary_fingerprints: List[str]
    final_fingerprint: str
    trace_digest: Optional[str]


@dataclass
class ExplorationReport:
    """Outcome of exploring one scenario's schedule space."""

    baseline: InterleavingRun
    runs: List[InterleavingRun] = field(default_factory=list)
    witnesses: List[ScheduleWitness] = field(default_factory=list)
    #: whether timing was part of the invariant (flat network).
    times_compared: bool = True

    @property
    def invariant(self) -> bool:
        return not self.witnesses

    @property
    def interleavings(self) -> int:
        return 1 + len(self.runs)

    def to_payload(self) -> Dict[str, Any]:
        """Pure-JSON summary (campaign-cacheable, order-deterministic)."""
        makespans = [self.baseline.makespan] + [run.makespan for run in self.runs]
        ties = [run.tie_dispatches for run in self.runs]
        return {
            "interleavings": self.interleavings,
            "invariant": self.invariant,
            "divergences": len(self.witnesses),
            "times_compared": self.times_compared,
            "status": self.baseline.status,
            "final_fingerprint": self.baseline.final_fingerprint,
            "checkpoint_boundaries": len(self.baseline.boundary_fingerprints),
            "trace_digest": self.baseline.trace_digest,
            "events_processed": self.baseline.events_processed,
            "tie_dispatches": {
                "baseline": self.baseline.tie_dispatches,
                "min": min(ties) if ties else 0,
                "max": max(ties) if ties else 0,
            },
            "makespan": {
                "baseline": self.baseline.makespan,
                "min": min(makespans),
                "max": max(makespans),
                "spread": max(makespans) - min(makespans),
                "all": makespans,
            },
            "witnesses": [witness.to_dict() for witness in self.witnesses],
        }


# ------------------------------------------------------------------ running
def run_interleaving(
    sim_factory: SimFactory,
    policy: SchedulePolicy,
    include_times: bool = True,
    label: str = "",
) -> InterleavingRun:
    """Build a fresh simulation, run it under ``policy``, observe everything."""
    sim = sim_factory()
    recorder = FingerprintRecorder(sim, include_times=include_times)
    policy.install(sim.engine, recorder.on_time_drained)
    try:
        result = sim.run()
        status = result.status
        makespan = result.makespan
    except DeadlockError:
        status = "deadlock"
        makespan = sim.engine.now
    except SimulationError as exc:
        status = f"error:{exc}"
        makespan = sim.engine.now
    return InterleavingRun(
        label=label or policy.name,
        status=status,
        makespan=makespan,
        events_processed=sim.engine.events_processed,
        tie_dispatches=policy.tie_dispatches,
        decisions=dict(policy.decisions),
        boundary_fingerprints=recorder.fingerprints(),
        final_fingerprint=recorder.final(),
        trace_digest=normalized_trace_digest(sim),
    )


def first_divergence(
    baseline: InterleavingRun, run: InterleavingRun, include_times: bool = True
) -> Optional[Dict[str, Any]]:
    """Earliest observable difference between two interleavings, or None."""

    def record(kind: str, index: Optional[int], expect: Any, got: Any) -> Dict[str, Any]:
        return {
            "kind": kind,
            "index": index,
            "baseline": expect,
            "observed": got,
        }

    base_fps = baseline.boundary_fingerprints
    run_fps = run.boundary_fingerprints
    for index, (expect, got) in enumerate(zip(base_fps, run_fps)):
        if expect != got:
            return record("checkpoint-fingerprint", index, expect, got)
    if len(base_fps) != len(run_fps):
        return record(
            "checkpoint-count", min(len(base_fps), len(run_fps)), len(base_fps), len(run_fps)
        )
    if baseline.status != run.status:
        return record("status", None, baseline.status, run.status)
    if baseline.final_fingerprint != run.final_fingerprint:
        return record(
            "final-fingerprint", None, baseline.final_fingerprint, run.final_fingerprint
        )
    if baseline.trace_digest != run.trace_digest:
        return record("recovery-trace", None, baseline.trace_digest, run.trace_digest)
    if include_times and baseline.makespan != run.makespan:
        return record("makespan", None, baseline.makespan, run.makespan)
    return None


# ---------------------------------------------------------------- exploring
def explore_factory(
    sim_factory: SimFactory,
    seeds: Union[int, Sequence[int]] = 10,
    policy: str = "adversarial",
    include_times: bool = True,
    shrink: bool = True,
    shrink_rounds: int = 4,
    scenario: Optional[Dict[str, Any]] = None,
) -> ExplorationReport:
    """Explore the schedule space of whatever ``sim_factory`` builds.

    ``seeds`` is a count (seeds ``0..n-1``) or an explicit sequence.  Every
    divergence found is packaged as a witness; with ``shrink=True`` each is
    delta-debugged down to a minimal decision set before being reported.
    """
    seed_list = list(range(seeds)) if isinstance(seeds, int) else list(seeds)
    baseline = run_interleaving(
        sim_factory, FifoPolicy(), include_times=include_times, label="fifo-baseline"
    )

    def diverges(decisions: Dict[int, int]) -> Optional[Dict[str, Any]]:
        replay = run_interleaving(
            sim_factory, ReplayPolicy(decisions), include_times=include_times
        )
        return first_divergence(baseline, replay, include_times=include_times)

    report = ExplorationReport(baseline=baseline, times_compared=include_times)
    for seed in seed_list:
        run = run_interleaving(
            sim_factory,
            make_policy(policy, seed),
            include_times=include_times,
            label=f"{policy}-{seed}",
        )
        report.runs.append(run)
        divergence = first_divergence(baseline, run, include_times=include_times)
        if divergence is None:
            continue
        witness = ScheduleWitness(
            policy=policy,
            seed=seed,
            decisions=dict(run.decisions),
            divergence=divergence,
            scenario=scenario,
            metadata={"label": run.label, "tie_dispatches": run.tie_dispatches},
        )
        if shrink:
            witness = shrink_witness(witness, diverges, max_rounds=shrink_rounds)
        report.witnesses.append(witness)
    return report


def prepare_spec(spec: ScenarioSpec) -> ScenarioSpec:
    """Normalise a spec for exploration: exact execution, full tracing.

    The explorer needs the per-event discrete loop (policies do not apply to
    analytically fast-forwarded epochs) and recorded trace events (for the
    normalized recovery-trace digest).
    """
    config = dict(spec.config)
    config["record_trace_events"] = True
    config["execution"] = "exact"
    return dataclasses.replace(spec, execution="exact", config=config)


def spec_is_uncontended(spec: ScenarioSpec) -> bool:
    """Whether the spec's network serialises nothing (flat topology).

    Only link contention makes event *times* schedule-dependent; everywhere
    else timing joins the invariant.
    """
    topology = spec.network.topology
    return topology is None or topology.preset == "flat"


def explore(
    spec: ScenarioSpec,
    seeds: Union[int, Sequence[int]] = 10,
    policy: str = "adversarial",
    shrink: bool = True,
    shrink_rounds: int = 4,
) -> ExplorationReport:
    """Explore a declarative scenario's schedule space."""
    prepared = prepare_spec(spec)
    return explore_factory(
        lambda: build(prepared),
        seeds=seeds,
        policy=policy,
        include_times=spec_is_uncontended(prepared),
        shrink=shrink,
        shrink_rounds=shrink_rounds,
        scenario=prepared.to_dict(),
    )


# ------------------------------------------------------------------- replay
def replay_witness(
    witness: ScheduleWitness, sim_factory: Optional[SimFactory] = None
) -> Dict[str, Any]:
    """Re-run a witness and report whether it reproduces its divergence.

    Uses the witness's embedded scenario unless an explicit factory is
    given.  Returns ``{"reproduced": bool, "divergence": ..., "expected":
    ...}`` -- ``reproduced`` means the replay hit the *same first
    divergence* (kind and position) the witness recorded.
    """
    if sim_factory is None:
        if witness.scenario is None:
            raise SimulationError(
                "witness has no embedded scenario; pass sim_factory explicitly"
            )
        spec = prepare_spec(ScenarioSpec.from_dict(witness.scenario))
        sim_factory = lambda: build(spec)  # noqa: E731
        include_times = spec_is_uncontended(spec)
    else:
        include_times = witness.divergence.get("kind") != "makespan" or True
    baseline = run_interleaving(
        sim_factory, FifoPolicy(), include_times=include_times, label="fifo-baseline"
    )
    replay = run_interleaving(
        sim_factory,
        ReplayPolicy(witness.decisions),
        include_times=include_times,
        label="witness-replay",
    )
    divergence = first_divergence(baseline, replay, include_times=include_times)
    return {
        "reproduced": same_divergence(divergence, witness.divergence),
        "divergence": divergence,
        "expected": witness.divergence,
        "decisions": len(witness.decisions),
    }
