"""Canonical state fingerprinting for schedule-space exploration.

A fingerprint is a SHA-256 digest over a *canonical* encoding of simulation
state: container contents are fed to the hash in a sorted, type-tagged form
so that two states hash equal exactly when they are structurally equal --
independent of dict insertion order, tuple-vs-list representation or set
iteration order, all of which legitimately vary between interleavings.

Two identities assigned by the engine are deliberately stripped wherever a
:class:`~repro.simulator.messages.Message` appears (protocol logs, channel
state): the global ``msg_id`` counter value and the transport timestamps.
Both depend on the order in which same-time events executed, which is
precisely the degree of freedom the explorer perturbs; everything else about
a message -- endpoints, tag, size, payload, piggybacked protocol data -- is
content and must be interleaving-invariant.

Objects the encoder does not know are rejected when their ``repr`` looks
address-dependent (contains ``0x``): a fingerprint that silently hashed
``<object at 0x7f...>`` would differ between *identical* runs and report
phantom divergences.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
from typing import TYPE_CHECKING, Any, Dict, List, Optional

import numpy as np

from repro.simulator.messages import Message

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simulator.simulation import Simulation


def _feed(h: "hashlib._Hash", obj: Any) -> None:
    """Feed the canonical encoding of ``obj`` into hash ``h``."""
    if obj is None:
        h.update(b"N")
    elif obj is True:
        h.update(b"T")
    elif obj is False:
        h.update(b"F")
    elif isinstance(obj, int):
        h.update(b"i%d" % obj)
    elif isinstance(obj, float):
        # float() first: np.float64 subclasses float, and its repr is
        # "np.float64(1.5)" under numpy >= 2, which would hash a structurally
        # equal value differently.
        h.update(b"f")
        h.update(repr(float(obj)).encode("ascii"))
    elif isinstance(obj, str):
        data = obj.encode("utf-8")
        h.update(b"s%d:" % len(data))
        h.update(data)
    elif isinstance(obj, bytes):
        h.update(b"b%d:" % len(obj))
        h.update(obj)
    elif isinstance(obj, Message):
        # Engine-assigned identity (msg_id, send/deliver times) excluded.
        h.update(b"M(")
        _feed(h, (obj.source, obj.dest, obj.tag, obj.size_bytes))
        _feed(h, obj.kind.value)
        _feed(h, repr(obj.payload))
        _feed(h, obj.piggyback)
        _feed(h, (obj.piggyback_bytes, obj.inter_cluster, obj.replayed))
        h.update(b")")
    elif isinstance(obj, enum.Enum):
        h.update(b"e")
        _feed(h, obj.value)
    elif isinstance(obj, (tuple, list)):
        h.update(b"(")
        for item in obj:
            _feed(h, item)
        h.update(b")")
    elif isinstance(obj, dict):
        h.update(b"{")
        for _, key, value in sorted(
            (_encoding(key), key, value) for key, value in obj.items()
        ):
            _feed(h, key)
            h.update(b"=")
            _feed(h, value)
        h.update(b"}")
    elif isinstance(obj, (set, frozenset)):
        h.update(b"<")
        for encoded in sorted(_encoding(item) for item in obj):
            h.update(encoded)
        h.update(b">")
    elif isinstance(obj, np.integer):
        _feed(h, int(obj))
    elif isinstance(obj, np.floating):
        _feed(h, float(obj))
    elif isinstance(obj, np.ndarray):
        # No type tag: an array is its (nested) sequence of values, exactly
        # like the tuple-vs-list case above.
        _feed(h, obj.tolist())
    elif dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        h.update(b"D")
        _feed(h, type(obj).__name__)
        h.update(b"(")
        for field in dataclasses.fields(obj):
            _feed(h, field.name)
            h.update(b"=")
            _feed(h, getattr(obj, field.name))
        h.update(b")")
    else:
        text = repr(obj)
        if "0x" in text:
            raise TypeError(
                f"cannot canonically fingerprint {type(obj).__name__}: its repr "
                f"is address-dependent ({text[:60]!r}); add an explicit encoding"
            )
        h.update(b"r")
        _feed(h, text)


def _encoding(obj: Any) -> bytes:
    """Standalone canonical encoding of ``obj`` (used to sort dict/set items)."""
    h = hashlib.sha256()
    _feed(h, obj)
    return h.digest()


def fingerprint_value(obj: Any) -> str:
    """SHA-256 hex digest of the canonical encoding of ``obj``."""
    h = hashlib.sha256()
    _feed(h, obj)
    return h.hexdigest()


# ---------------------------------------------------------------- simulation
def state_digest(sim: "Simulation", include_times: bool = True) -> Dict[str, Any]:
    """The fingerprinted view of a simulation's current state.

    ``include_times`` adds the simulation clock to the digest.  Under a flat
    (uncontended) network, reordering same-time events never moves any event
    time, so the clock is part of the invariant; under link contention the
    serialisation order on a shared link *does* shift timings, and callers
    compare state-only digests while reporting the timing spread separately.
    """
    application = sim.application
    ranks: Dict[int, Dict[str, Any]] = {}
    for rank, proc in sorted(sim.ranks.items()):
        ranks[rank] = {
            "iterations": proc.completed_iterations,
            "state": proc.state.value,
            "incarnation": proc.incarnation,
            "result": proc.result,
            "app": None
            if proc.app_state is None
            else application.snapshot_state(proc.app_state),
        }
    # Deliberately absent: cumulative traffic volumes (channel volumes,
    # app_messages/app_bytes, logged-message totals, per-rank
    # sends_initiated).  Those meter *attempted* work: when a rollback
    # notification ties with an iteration boundary, the tie-break decides how
    # many doomed sends the victim squeezed in before rewinding, so the
    # totals are schedule-dependent even though every recovered state and
    # every effective send sequence is not.  The invariant core below is the
    # paper's claim; wasted work is reported as a spread, not an invariant.
    digest: Dict[str, Any] = {
        "ranks": ranks,
        "protocol": sim.protocol.schedule_fingerprint(),
        "storage": {
            "writes": sim.storage.writes,
            "bytes_written": sim.storage.bytes_written,
        },
        # Control chatter (messages_sent/bytes_sent) is deliberately absent
        # too: rollback notifications and log requests scale with the doomed
        # work a tie-break allowed, like the traffic volumes above.
        "counters": {
            "failures_injected": sim.stats.failures_injected,
            "ranks_rolled_back": sim.stats.ranks_rolled_back,
        },
    }
    if include_times:
        digest["time"] = sim.engine.now
    return digest


def fingerprint_state(sim: "Simulation", include_times: bool = True) -> str:
    """SHA-256 fingerprint of :func:`state_digest`."""
    return fingerprint_value(state_digest(sim, include_times=include_times))


def stable_digest(sim: "Simulation", include_times: bool = True) -> Dict[str, Any]:
    """The *committed-state* view, safe to compare at any quiescent point.

    Boundary samples can land mid-recovery, where live rank progress is
    legitimately schedule-dependent (a doomed iteration got further in one
    interleaving than another before its rollback arrived, and reconvergence
    is only guaranteed by completion).  What must match at *every* boundary
    regardless is the committed recovery line: what stable storage holds,
    which checkpoint each rank would restart from, and how many failures
    have struck.
    """
    digest: Dict[str, Any] = {
        "recovery_line": sim.protocol.recovery_line_fingerprint(),
        "storage": {
            "writes": sim.storage.writes,
            "bytes_written": sim.storage.bytes_written,
        },
        "failures_injected": sim.stats.failures_injected,
    }
    if include_times:
        digest["time"] = sim.engine.now
    return digest


class FingerprintRecorder:
    """Records state fingerprints at checkpoint boundaries during a run.

    Installed as the engine's ``on_time_drained`` observer (see
    :meth:`~repro.simulator._engine_core.SimulationEngine.
    set_schedule_policy`): whenever the clock is about to advance past a
    timestamp at which stable storage gained checkpoints, the quiescent state
    is fingerprinted.  The resulting sequence -- one entry per
    checkpoint-writing timestamp, in time order -- is what the explorer
    compares across interleavings; the hook only reads state, it never
    schedules.
    """

    def __init__(self, sim: "Simulation", include_times: bool = True) -> None:
        self.sim = sim
        self.include_times = include_times
        #: one record per boundary: {"time", "writes", "fingerprint"}.
        self.boundaries: List[Dict[str, Any]] = []
        self._last_writes = sim.storage.writes

    def on_time_drained(self, time: float) -> None:
        writes = self.sim.storage.writes
        if writes != self._last_writes:
            self._last_writes = writes
            self.boundaries.append(
                {
                    "time": time,
                    "writes": writes,
                    # Boundary samples hash the committed view only: a
                    # boundary can land mid-recovery, where live rank
                    # progress legitimately depends on the schedule (see
                    # stable_digest).  The clock stays out of the boundary
                    # hash even on flat networks -- whether a doomed
                    # checkpoint squeaked in before its rollback shifts
                    # *when* the Nth write lands, not what the recovery
                    # line says -- so timing is only compared where it must
                    # reconverge: the final state and the makespan.
                    "fingerprint": fingerprint_value(
                        stable_digest(self.sim, include_times=False)
                    ),
                }
            )

    def fingerprints(self) -> List[str]:
        return [entry["fingerprint"] for entry in self.boundaries]

    def final(self) -> str:
        """Fingerprint the completed run's state."""
        return fingerprint_state(self.sim, include_times=self.include_times)


def normalized_trace_digest(sim: "Simulation") -> Optional[str]:
    """Digest of the run's *logical* recovery trace, or None without events.

    Per-rank effective send sequences (rollback-adjusted, Definition 3 of the
    paper: destination, tag, size and payload -- no ids, no times) plus the
    per-rank rollback counts.  Two interleavings of a send-deterministic
    workload must digest identically even when their raw event timelines
    interleave differently.
    """
    trace = sim.trace
    if not trace.record_events:
        return None
    payload = {
        "sends": {
            rank: [
                (sig.dest, sig.tag, sig.size_bytes, sig.payload_repr)
                for sig in trace.effective_send_sequence(rank)
            ]
            for rank in sorted(trace.send_sequences)
        },
        "restarts": {
            rank: len(marks) for rank, marks in sorted(trace.restart_marks.items())
        },
    }
    return fingerprint_value(payload)
