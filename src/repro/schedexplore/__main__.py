"""``python -m repro.schedexplore`` entry point."""

from repro.schedexplore.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
