"""Baseline fault-tolerance protocols.

These are the comparison points used in the paper's evaluation and related
work discussion:

* :class:`repro.ftprotocols.no_ft.NoFaultToleranceProtocol` -- native MPICH2
  (no piggybacking, no logging, no checkpoints); the reference for Figures 5
  and 6.
* :class:`repro.ftprotocols.coordinated.CoordinatedCheckpointProtocol` --
  global coordinated checkpointing; every rank rolls back after any failure.
* :class:`repro.ftprotocols.message_logging.FullMessageLoggingProtocol` --
  pessimistic sender-based message logging of *all* messages with reliable
  determinant (event) logging; perfect containment, high overhead.
* :class:`repro.ftprotocols.hybrid_event_logging.HybridEventLoggingProtocol`
  -- cluster-based hybrid protocol in the piecewise-deterministic model
  ([8], [22], [32]): coordinated checkpoints inside clusters, message logging
  between clusters, *plus* reliable event logging of every delivery.

HydEE itself lives in :mod:`repro.core.protocol`.

Attributes are resolved lazily (PEP 562) because
:class:`HybridEventLoggingProtocol` subclasses HydEE, whose module in turn
imports the shared :mod:`repro.ftprotocols.base` machinery; lazy resolution
keeps that dependency acyclic regardless of which package is imported first.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

__all__ = [
    "ClusteredProtocolBase",
    "ProtocolStatistics",
    "NoFaultToleranceProtocol",
    "CoordinatedCheckpointProtocol",
    "FullMessageLoggingProtocol",
    "HybridEventLoggingProtocol",
    "available_protocols",
    "make_protocol",
]

_EXPORTS = {
    "ClusteredProtocolBase": ("repro.ftprotocols.base", "ClusteredProtocolBase"),
    "ProtocolStatistics": ("repro.ftprotocols.base", "ProtocolStatistics"),
    "NoFaultToleranceProtocol": ("repro.ftprotocols.no_ft", "NoFaultToleranceProtocol"),
    "CoordinatedCheckpointProtocol": (
        "repro.ftprotocols.coordinated",
        "CoordinatedCheckpointProtocol",
    ),
    "FullMessageLoggingProtocol": (
        "repro.ftprotocols.message_logging",
        "FullMessageLoggingProtocol",
    ),
    "HybridEventLoggingProtocol": (
        "repro.ftprotocols.hybrid_event_logging",
        "HybridEventLoggingProtocol",
    ),
    "available_protocols": ("repro.ftprotocols.registry", "available_protocols"),
    "make_protocol": ("repro.ftprotocols.registry", "make_protocol"),
}

if TYPE_CHECKING:  # pragma: no cover - static typing only
    from repro.ftprotocols.base import ClusteredProtocolBase, ProtocolStatistics
    from repro.ftprotocols.coordinated import CoordinatedCheckpointProtocol
    from repro.ftprotocols.hybrid_event_logging import HybridEventLoggingProtocol
    from repro.ftprotocols.message_logging import FullMessageLoggingProtocol
    from repro.ftprotocols.no_ft import NoFaultToleranceProtocol
    from repro.ftprotocols.registry import available_protocols, make_protocol


def __getattr__(name: str):
    try:
        module_name, attr = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module 'repro.ftprotocols' has no attribute {name!r}") from None
    import importlib

    module = importlib.import_module(module_name)
    value = getattr(module, attr)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(__all__))
