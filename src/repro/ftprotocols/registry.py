"""Protocol registry: build any protocol by name.

Used by the experiment harnesses and the examples so that command-line
options such as ``--protocol hydee`` map onto protocol objects uniformly.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List

from repro.core.config import HydEEConfig
from repro.core.protocol import HydEEProtocol
from repro.errors import ConfigurationError
from repro.ftprotocols.coordinated import CoordinatedCheckpointProtocol
from repro.ftprotocols.hybrid_event_logging import HybridEventLoggingProtocol
from repro.ftprotocols.message_logging import FullMessageLoggingProtocol
from repro.ftprotocols.no_ft import NoFaultToleranceProtocol
from repro.simulator.protocol_api import ProtocolHooks


def _make_hydee(**kwargs: Any) -> HydEEProtocol:
    config = kwargs.pop("config", None)
    if config is not None and not isinstance(config, HydEEConfig):
        raise ConfigurationError("config must be a HydEEConfig")
    return HydEEProtocol(config=config, **kwargs) if config is None else HydEEProtocol(config)


def _make_hydee_log_all(**kwargs: Any) -> HydEEProtocol:
    """The "Message Logging" series of Figure 6: HydEE mechanisms, all
    message payloads logged (clusters are irrelevant to the logged volume)."""
    kwargs.setdefault("log_all_messages", True)
    return HydEEProtocol(config=HydEEConfig(**kwargs))


_FACTORIES: Dict[str, Callable[..., ProtocolHooks]] = {
    "native": lambda **kw: NoFaultToleranceProtocol(**kw),
    "mpich2-native": lambda **kw: NoFaultToleranceProtocol(**kw),
    "hydee": _make_hydee,
    "hydee-log-all": _make_hydee_log_all,
    "coordinated": lambda **kw: CoordinatedCheckpointProtocol(**kw),
    "message-logging": lambda **kw: FullMessageLoggingProtocol(**kw),
    "hybrid-event-logging": lambda **kw: HybridEventLoggingProtocol(**kw),
}


def available_protocols() -> List[str]:
    """Names accepted by :func:`make_protocol`."""
    return sorted(_FACTORIES)


def make_protocol(name: str, **kwargs: Any) -> ProtocolHooks:
    """Instantiate a protocol by name with protocol-specific keyword options."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown protocol {name!r}; available: {', '.join(available_protocols())}"
        ) from None
    return factory(**kwargs)
