"""Global coordinated checkpointing (Chandy-Lamport style, blocking variant).

The classic small-scale solution discussed in Sections II and VI of the
paper: all ranks form a single cluster, checkpoints are globally coordinated,
and *every* rank rolls back to the last global checkpoint when any rank
fails.  Failure-free overhead is essentially the checkpoint I/O; the failure
cost is a full-application rollback, which is exactly the scalability problem
hybrid protocols address.

Implementation: a thin specialisation of
:class:`repro.ftprotocols.base.ClusteredProtocolBase` with a single cluster
containing every rank and no logging/piggybacking at all.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Optional

from repro.ftprotocols.base import ClusteredProtocolBase
from repro.simulator.protocol_api import add_metric


class CoordinatedCheckpointProtocol(ClusteredProtocolBase):
    """Single-cluster coordinated checkpointing with global rollback."""

    name = "coordinated-checkpointing"

    def __init__(
        self,
        checkpoint_interval: Optional[int] = None,
        checkpoint_size_bytes: int = 16 * 1024 * 1024,
    ) -> None:
        super().__init__(
            clusters=None,
            checkpoint_interval=checkpoint_interval,
            checkpoint_size_bytes=checkpoint_size_bytes,
        )
        self.rollback_events: list[Dict[str, Any]] = []

    def on_failure(self, failed_ranks: Iterable[int], time: float) -> None:
        """Any failure rolls the whole application back to the last global
        checkpoint (or to the initial state when none exists)."""
        info = self.rollback_clusters([0])
        self.pstats.recoveries += 1
        self.rollback_events.append(
            {
                "time": time,
                "failed_ranks": sorted(failed_ranks),
                "ranks_rolled_back": len(info.ranks),
                "restore_iteration": info.restore_iterations.get(0, 0),
            }
        )

    def schedule_fingerprint(self) -> Dict[str, Any]:
        """Global-rollback history, without the strike timestamps.

        The ``time`` field of a rollback event is the failure injection
        instant, which is part of the scenario (not of the schedule) under a
        flat network but drifts under link contention; the state half --
        who failed, how far the application was rolled back -- must be
        identical across interleavings either way.
        """
        info = super().schedule_fingerprint()
        info["rollback_events"] = [
            {
                "failed_ranks": event["failed_ranks"],
                "ranks_rolled_back": event["ranks_rolled_back"],
                "restore_iteration": event["restore_iteration"],
            }
            for event in self.rollback_events
        ]
        return info

    def extra_metrics(self) -> Dict[str, Any]:
        info = super().extra_metrics()
        add_metric(info, "rollback_events", list(self.rollback_events))
        return info
