"""Pessimistic sender-based message logging of every message.

The classical alternative to checkpoint-based protocols (Section II-B and
related work of the paper): every message payload is copied into the sender's
memory, every delivery produces a determinant that is logged reliably before
the execution proceeds, and process checkpoints are purely local
(uncoordinated).  After a failure only the failed process rolls back
("perfect failure containment"); the messages it had received since its last
checkpoint are replayed from the senders' logs, and the duplicate messages it
re-sends while re-executing are discarded by their receivers.

Cost model:

* the payload copy costs the (mostly overlapped) memcpy time of the network
  model, like HydEE's logging;
* determinant logging costs ``determinant_latency_s`` per delivery, modelling
  the synchronous write to reliable storage that pessimistic protocols
  require (the paper cites [29] for the magnitude of this cost);
* every message carries a small piggybacked per-channel sequence number used
  for duplicate suppression during recovery.

Recovery ordering note: the real protocol replays messages in the order
recorded by the determinants.  The workloads in this repository are
send-deterministic and receive on FIFO channels, so per-channel FIFO replay
-- which is what the implementation below does -- yields exactly the order
the determinants would dictate; determinants are still counted and priced.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Optional

from repro.core.message_log import SenderLog
from repro.errors import ProtocolError
from repro.ftprotocols.base import ClusteredProtocolBase
from repro.simulator.messages import Message
from repro.simulator.protocol_api import SendDecision, add_metric


class _RankLogState:
    """Per-rank state of the full message-logging protocol."""

    __slots__ = ("send_seq", "recv_seq", "log", "determinants", "arrived_seq", "stash")

    def __init__(self) -> None:
        #: next sequence number per destination channel.
        self.send_seq: Dict[int, int] = {}
        #: last delivered sequence number per source channel.
        self.recv_seq: Dict[int, int] = {}
        self.log = SenderLog()
        self.determinants = 0
        #: last sequence number *released to the rank* per source channel.
        #: Tracks arrivals (>= recv_seq, which only advances at match time)
        #: so a duplicate of an arrived-but-unmatched message is still caught.
        self.arrived_seq: Dict[int, int] = {}
        #: early arrivals held back per source until the channel gap fills
        #: (a replayed predecessor still in flight).  Transient: never
        #: checkpointed -- on restore the replay covers these seqs afresh.
        self.stash: Dict[int, Dict[int, Message]] = {}

    def snapshot(self) -> Dict[str, Any]:
        return {
            "send_seq": dict(self.send_seq),
            "recv_seq": dict(self.recv_seq),
            "log": self.log.snapshot(),
            "determinants": self.determinants,
        }

    def restore(self, payload: Optional[Dict[str, Any]]) -> None:
        if payload is None:
            self.send_seq = {}
            self.recv_seq = {}
            self.log = SenderLog()
            self.determinants = 0
        else:
            self.send_seq = dict(payload["send_seq"])
            self.recv_seq = dict(payload["recv_seq"])
            self.log = SenderLog.from_snapshot(payload["log"])
            self.determinants = int(payload["determinants"])
        # Arrival tracking restarts from the recovery line: everything after
        # the checkpointed recv_seq is replayed from the senders' logs.
        self.arrived_seq = dict(self.recv_seq)
        self.stash = {}


class FullMessageLoggingProtocol(ClusteredProtocolBase):
    """Pessimistic sender-based message logging with determinant logging."""

    name = "message-logging"
    ff_send_hook = True

    def __init__(
        self,
        checkpoint_interval: Optional[int] = None,
        checkpoint_size_bytes: int = 16 * 1024 * 1024,
        determinant_latency_s: float = 1.0e-6,
        piggyback_bytes: int = 8,
        nprocs_hint: Optional[int] = None,
    ) -> None:
        # One cluster per rank: checkpoints are local and uncoordinated.
        clusters = None if nprocs_hint is None else [[r] for r in range(nprocs_hint)]
        super().__init__(
            clusters=clusters,
            checkpoint_interval=checkpoint_interval,
            checkpoint_size_bytes=checkpoint_size_bytes,
        )
        self._singleton_clusters = clusters is not None
        self.determinant_latency_s = determinant_latency_s
        self.piggyback_bytes = piggyback_bytes
        self.rank_state: Dict[int, _RankLogState] = {}

    # ------------------------------------------------------------- lifecycle
    def attach(self, sim) -> None:
        if not self._singleton_clusters:
            # Build the one-cluster-per-rank partition now that nprocs is known.
            self._clusters_spec = [[r] for r in range(sim.nprocs)]
        super().attach(sim)

    def _init_rank_state(self, rank: int) -> None:
        self.rank_state[rank] = _RankLogState()

    # ------------------------------------------------------------------ sends
    def on_app_send(self, rank: int, message: Message) -> SendDecision:
        state = self.rank_state[rank]
        seq = state.send_seq.get(message.dest, 0) + 1
        state.send_seq[message.dest] = seq
        message.piggyback["seq"] = seq
        message.piggyback_bytes = self.piggyback_bytes
        message.inter_cluster = True  # every channel crosses a (singleton) cluster
        state.log.add(message.dest, seq, 0, message)
        self.pstats.logged_messages += 1
        self.pstats.logged_bytes += message.size_bytes
        self.pstats.piggyback_bytes += self.piggyback_bytes
        self.sim.stats.logged_messages += 1
        self.sim.stats.logged_bytes += message.size_bytes
        extra_cpu = self.sim.network.memcpy_time(message.size_bytes)
        return SendDecision.send(extra_cpu)

    # --------------------------------------------------------------- delivery
    def on_message_arrival(self, rank: int, message: Message):
        """Enforce per-channel delivery in sequence order.

        Discards duplicates re-sent by a recovering process, and -- the racy
        half of recovery -- holds back a message that arrives *ahead* of an
        undelivered predecessor on its channel.  A replayed message transmits
        from a protocol event that can tie with the sender's next live send;
        if the tie-break puts the live send on the wire first, seq ``k+1``
        arrives before replayed seq ``k``.  FIFO channels are part of the
        system model (Section II-A), so the receiver restores the order: the
        early message waits in a stash and is released, together with any
        consecutive successors, the moment the gap fills.
        """
        seq = message.piggyback.get("seq")
        if seq is None:
            return True
        state = self.rank_state[rank]
        source = message.source
        seq = int(seq)
        last = state.arrived_seq.get(source, state.recv_seq.get(source, 0))
        if seq <= last:
            return False  # duplicate (possibly of an arrived-but-unmatched one)
        if seq > last + 1:
            state.stash.setdefault(source, {})[seq] = message
            return ()  # held back, not suppressed
        state.arrived_seq[source] = seq
        pending = state.stash.get(source)
        if not pending:
            return True
        batch = [message]
        nxt = seq + 1
        while nxt in pending:
            batch.append(pending.pop(nxt))
            state.arrived_seq[source] = nxt
            nxt += 1
        if not pending:
            del state.stash[source]
        return batch

    def on_app_deliver(self, rank: int, message: Message) -> float:
        state = self.rank_state[rank]
        seq = int(message.piggyback.get("seq", 0))
        if seq:
            state.recv_seq[message.source] = max(state.recv_seq.get(message.source, 0), seq)
        state.determinants += 1
        self.pstats.determinants_logged += 1
        self.pstats.determinant_bytes += 24
        # Pessimistic protocols block the delivery until the determinant is
        # safely logged; charge that latency to the receiver.
        return self.determinant_latency_s

    # ------------------------------------------------------------ checkpoints
    def _checkpoint_payload(self, rank: int) -> Dict[str, Any]:
        return self.rank_state[rank].snapshot()

    def _restore_from_payload(self, rank: int, payload: Optional[Dict[str, Any]]) -> None:
        self.rank_state[rank].restore(payload)

    def _extra_checkpoint_bytes(self, rank: int) -> int:
        return self.rank_state[rank].log.current_bytes

    # ---------------------------------------------------------------- failure
    def on_failure(self, failed_ranks: Iterable[int], time: float) -> None:
        failed = sorted(set(failed_ranks))
        # Purge not-yet-delivered messages from the failed ranks so the copies
        # they re-send while re-executing are the only ones left.
        self.sim.purge_undelivered_from(set(failed))
        # Each failed rank rolls back alone (its singleton cluster).
        info = self.rollback_clusters(self.clusters_of_ranks(failed))
        self.pstats.recoveries += 1

        # Replay, from every sender's log, the messages the restarted ranks
        # had already delivered or that were in flight towards them.  A short
        # delay models the recovering process requesting its logs.  Each
        # (sender -> victim) channel's backlog replays inside a single event:
        # one transmit loop pins the channel's replay order to log order, so
        # per-channel FIFO holds no matter how same-time events interleave
        # (per-entry events would leave the order at the mercy of the
        # dispatch tie-break -- an out-of-order replay the schedule explorer
        # catches as a recovery race).
        request_delay = 2 * self.sim.control.latency_s
        for failed_rank in info.ranks:
            restored = self.rank_state[failed_rank]
            for sender, sender_state in self.rank_state.items():
                if sender == failed_rank:
                    continue
                after = restored.recv_seq.get(sender, 0)
                entries = sender_state.log.entries_for(failed_rank, after_date=after)
                if not entries:
                    continue
                for entry in entries:
                    self.sim.control.send(
                        failed_rank, sender, "log_request", {"seq": entry.date}, size_bytes=16
                    )
                    self.pstats.replayed_messages += 1
                self.sim.engine.schedule(
                    request_delay, self._replay_channel, list(entries)
                )

    def _replay_channel(self, entries) -> None:
        """Transmit one channel's replay backlog in log (determinant) order."""
        for entry in entries:
            self.sim.replay_message(entry.message)

    def _dispatch_control(self, cm) -> None:
        # log_request messages only exist for traffic accounting.
        if cm.kind != "log_request":
            raise ProtocolError(f"message-logging: unexpected control message {cm.kind!r}")

    # ------------------------------------------------------------ inspection
    def schedule_fingerprint(self) -> Dict[str, Any]:
        """Per-channel sequence state and sender logs (interleaving-invariant)."""
        info = super().schedule_fingerprint()
        info["rank_state"] = {
            rank: state.snapshot() for rank, state in self.rank_state.items()
        }
        return info

    def memory_usage_bytes(self) -> Dict[int, int]:
        return {rank: st.log.current_bytes for rank, st in self.rank_state.items()}

    def extra_metrics(self) -> Dict[str, Any]:
        info = super().extra_metrics()
        add_metric(info, "determinant_latency_s", self.determinant_latency_s)
        add_metric(info, "log_memory_bytes", sum(self.memory_usage_bytes().values()))
        return info
