"""Hybrid cluster-based protocol *with* event logging.

This is the family of protocols HydEE is compared against in Section VI
([8] Bouteiller et al., [22] Meneses et al., [32] Yang et al.): coordinated
checkpointing inside clusters, sender-based logging of inter-cluster message
payloads between clusters -- exactly like HydEE -- but, because they assume
the piecewise-deterministic execution model instead of send-determinism, they
additionally have to log a determinant for **every** delivered message on
reliable storage.

For the failure-free comparison (which is what the paper evaluates) the only
behavioural difference with HydEE is therefore the determinant logging cost,
charged here on every delivery.  The recovery path reuses HydEE's machinery:
the set of processes that roll back and the set of messages replayed from the
logs are identical; the real protocols order redeliveries with the
determinants where HydEE uses phases, which is not observable for
send-deterministic workloads.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.core.config import HydEEConfig
from repro.core.protocol import HydEEProtocol
from repro.simulator.messages import Message
from repro.simulator.protocol_api import add_metric


class HybridEventLoggingProtocol(HydEEProtocol):
    """HydEE-style hybrid protocol plus reliable determinant logging."""

    name = "hybrid-event-logging"

    def __init__(
        self,
        config: Optional[HydEEConfig] = None,
        determinant_latency_s: float = 1.0e-6,
        **kwargs: Any,
    ) -> None:
        super().__init__(config=config, **kwargs)
        self.determinant_latency_s = determinant_latency_s

    def on_app_deliver(self, rank: int, message: Message) -> float:
        overhead = super().on_app_deliver(rank, message)
        self.pstats.determinants_logged += 1
        self.pstats.determinant_bytes += 24
        return overhead + self.determinant_latency_s

    def extra_metrics(self) -> Dict[str, Any]:
        info = super().extra_metrics()
        add_metric(info, "determinant_latency_s", self.determinant_latency_s)
        return info
