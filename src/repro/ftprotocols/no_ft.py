"""Native execution without fault tolerance (the MPICH2 baseline).

This protocol piggybacks nothing, logs nothing and never checkpoints; it is
the reference against which Figures 5 and 6 normalise HydEE's overhead.  A
failure is fatal: the simulation reports the affected ranks and, by default,
raises, because a pure MPI application cannot survive a fail-stop failure.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable

from repro.errors import ProtocolError
from repro.simulator.protocol_api import ProtocolHooks, add_metric


class NoFaultToleranceProtocol(ProtocolHooks):
    """No piggybacking, no logging, no checkpointing, no recovery."""

    name = "mpich2-native"

    def __init__(self, abort_on_failure: bool = True) -> None:
        super().__init__()
        self.abort_on_failure = abort_on_failure
        self.failed_ranks: list[int] = []

    def on_failure(self, failed_ranks: Iterable[int], time: float) -> None:
        self.failed_ranks.extend(sorted(failed_ranks))
        if self.abort_on_failure:
            raise ProtocolError(
                f"rank(s) {sorted(failed_ranks)} failed at t={time:.6f}s and the application "
                "runs without fault tolerance; the execution cannot continue"
            )

    def extra_metrics(self) -> Dict[str, Any]:
        info = dict(super().extra_metrics())
        add_metric(info, "failed_ranks", list(self.failed_ranks))
        return info
