"""Shared machinery for cluster-based rollback-recovery protocols.

The paper's hybrid protocols (HydEE and the piecewise-deterministic hybrids
it is compared against) share a common skeleton:

* application processes are partitioned into **clusters**;
* **coordinated checkpointing** is used inside each cluster (all members
  checkpoint at the same application iteration boundary, after draining the
  intra-cluster channels);
* on a failure, the failed processes' clusters **roll back** together to
  their last coordinated checkpoint while other clusters keep running.

:class:`ClusteredProtocolBase` implements that skeleton on top of the
simulator's protocol hooks and leaves protocol-specific behaviour (what is
logged, what is piggybacked, how recovery is ordered) to subclasses through a
small set of overridable methods.

Global coordinated checkpointing is the special case of a single cluster
containing every rank; uncoordinated local checkpointing (used by the full
message-logging baseline) is the special case of one cluster per rank.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    TYPE_CHECKING, Any, Callable, Dict, Iterable, List, Optional, Sequence,
    Set, Tuple
)

from repro.errors import ConfigurationError, ProtocolError
from repro.simulator.engine import Condition
from repro.simulator.ops import ComputeOp, WaitConditionOp
from repro.simulator.protocol_api import ControlMessage, ProtocolHooks, add_metric
from repro.simulator.stable_storage import CheckpointRecord

if TYPE_CHECKING:  # pragma: no cover
    from repro.simulator.simulation import Simulation


@dataclass
class ProtocolStatistics:
    """Counters shared by all protocols (reported in experiment tables)."""

    logged_messages: int = 0
    logged_bytes: int = 0
    determinants_logged: int = 0
    determinant_bytes: int = 0
    piggyback_bytes: int = 0
    checkpoints: int = 0
    checkpoint_bytes: int = 0
    rollbacks: int = 0
    ranks_rolled_back: int = 0
    recoveries: int = 0
    replayed_messages: int = 0
    suppressed_orphans: int = 0
    gc_reclaimed_bytes: int = 0

    def as_dict(self) -> Dict[str, Any]:
        return dict(self.__dict__)


@dataclass
class RollbackInfo:
    """Result of rolling back a set of clusters."""

    clusters: List[int]
    ranks: List[int]
    restore_iterations: Dict[int, int]
    time: float


def normalize_clusters(clusters: Optional[Sequence[Sequence[int]]], nprocs: int) -> List[List[int]]:
    """Validate a clustering and return it as a list of sorted rank lists.

    ``None`` means a single cluster containing every rank.  The clustering
    must be a partition of ``range(nprocs)``.
    """
    if clusters is None:
        return [list(range(nprocs))]
    seen: Set[int] = set()
    result: List[List[int]] = []
    for cluster in clusters:
        members = sorted(int(r) for r in cluster)
        if not members:
            raise ConfigurationError("empty clusters are not allowed")
        for rank in members:
            if rank < 0 or rank >= nprocs:
                raise ConfigurationError(f"cluster rank {rank} outside 0..{nprocs - 1}")
            if rank in seen:
                raise ConfigurationError(f"rank {rank} appears in more than one cluster")
            seen.add(rank)
        result.append(members)
    if len(seen) != nprocs:
        missing = sorted(set(range(nprocs)) - seen)
        raise ConfigurationError(f"clustering does not cover ranks {missing[:8]}...")
    return result


class ClusteredProtocolBase(ProtocolHooks):
    """Cluster bookkeeping + coordinated checkpointing + cluster rollback."""

    name = "clustered-base"

    def __init__(
        self,
        clusters: Optional[Sequence[Sequence[int]]] = None,
        checkpoint_interval: Optional[int] = None,
        checkpoint_size_bytes: int = 16 * 1024 * 1024,
    ) -> None:
        super().__init__()
        self._clusters_spec = clusters
        self.checkpoint_interval = checkpoint_interval
        self.checkpoint_size_bytes = checkpoint_size_bytes

        self.clusters: List[List[int]] = []
        self._cluster_of: Dict[int, int] = {}
        self.pstats = ProtocolStatistics()

        # Coordinated-checkpoint coordination state.  Keys include a per
        # cluster "generation" (bumped at every rollback) so that a cluster
        # re-executing an iteration after a rollback coordinates a fresh
        # barrier instead of reusing the one from the first execution.
        self._ckpt_arrivals: Dict[Tuple[int, int, int], Set[int]] = {}
        self._ckpt_conditions: Dict[Tuple[int, int, int], Condition] = {}
        self._ckpt_saved: Dict[Tuple[int, int, int], Set[int]] = {}
        self._latest_checkpoint: Dict[int, CheckpointRecord] = {}
        self._cluster_generation: Dict[int, int] = {}

    # ------------------------------------------------------------- lifecycle
    def attach(self, sim: "Simulation") -> None:
        super().attach(sim)
        self.clusters = normalize_clusters(self._clusters_spec, sim.nprocs)
        self._cluster_of = {
            rank: cid for cid, members in enumerate(self.clusters) for rank in members
        }
        # Clusters are static for the life of a simulation; the frozen member
        # sets serve the completeness checks at checkpoint boundaries without
        # rebuilding a set per rank per boundary.
        self._member_sets = [frozenset(members) for members in self.clusters]
        sim.control.set_handler(self._dispatch_control)
        for rank in range(sim.nprocs):
            self._init_rank_state(rank)

    # ------------------------------------------------------------ clustering
    @property
    def num_clusters(self) -> int:
        return len(self.clusters)

    def cluster_of(self, rank: int) -> int:
        return self._cluster_of[rank]

    def members(self, cluster_id: int) -> List[int]:
        return self.clusters[cluster_id]

    def same_cluster(self, a: int, b: int) -> bool:
        return self._cluster_of[a] == self._cluster_of[b]

    def is_inter_cluster(self, source: int, dest: int) -> bool:
        return self._cluster_of[source] != self._cluster_of[dest]

    def ranks_outside_cluster(self, rank: int) -> List[int]:
        cid = self._cluster_of[rank]
        return [r for r in range(self.sim.nprocs) if self._cluster_of[r] != cid]

    # ------------------------------------------------ coordinated checkpoints
    def on_iteration_boundary(self, rank: int, iteration: int, state: Any):
        if not self.checkpoint_interval:
            return None
        if iteration % self.checkpoint_interval != 0:
            return None
        return self._coordinated_checkpoint(rank, iteration, state)

    def _coordinated_checkpoint(self, rank: int, iteration: int, state: Any):
        """Generator run inline by the rank driver at a checkpoint boundary."""
        cluster_id = self.cluster_of(rank)
        generation = self._cluster_generation.get(cluster_id, 0)
        key = (cluster_id, generation, iteration)
        members = self._member_sets[cluster_id]
        condition = self._ckpt_conditions.get(key)
        if condition is None:
            condition = Condition(name=f"ckpt-c{cluster_id}-g{generation}-it{iteration}")
            self._ckpt_conditions[key] = condition
            self._ckpt_arrivals[key] = set()
        arrivals = self._ckpt_arrivals[key]
        arrivals.add(rank)
        if arrivals == members:
            # Last member reached the boundary: wait for intra-cluster
            # channels to drain, then release everyone.
            self._drain_then_fire(cluster_id, condition)
        yield WaitConditionOp(condition=condition)

        # Sanity check of the blocking coordinated-checkpoint assumption: no
        # intra-cluster message may still be undelivered at this point,
        # otherwise the saved cluster cut would not be consistent.
        proc = self.sim.ranks[rank]
        for message in proc.unexpected:
            if not self.is_inter_cluster(message.source, rank):
                raise ProtocolError(
                    f"rank {rank}: intra-cluster message from {message.source} is still "
                    "undelivered at a coordinated checkpoint boundary; the application "
                    "must complete intra-cluster receives before the boundary"
                )

        # The checkpoint *content* is the consistent cut at the drain point:
        # capture it now, before the write window, during which inter-cluster
        # arrivals may still mutate transient protocol state.
        sends_at = proc.sends_initiated
        payload = self._checkpoint_payload(rank)
        size_bytes = self._checkpoint_size(rank, state)
        cost = self.sim.storage.write_cost(size_bytes)
        if cost > 0:
            yield ComputeOp(seconds=cost)
        # Durability coincides with the *end* of the write, not its start: a
        # failure striking at the boundary instant therefore always preempts
        # the wave (the restarted generators never reach this commit), instead
        # of racing the save events for the recovery line.  The cut itself was
        # captured above, so the committed state is still the drain-point cut.
        record = self.sim.storage.save(
            rank=rank,
            iteration=iteration,
            app_state=state,
            time=self.sim.engine.now,
            sends_at_checkpoint=sends_at,
            protocol_state=payload,
            size_bytes=size_bytes,
        )
        self._latest_checkpoint[rank] = record
        self.pstats.checkpoints += 1
        self.pstats.checkpoint_bytes += record.size_bytes
        self.sim.stats.rank(rank).checkpoints += 1
        self._after_checkpoint(rank, record)
        saved = self._ckpt_saved.setdefault(key, set())
        saved.add(rank)
        if saved == members:
            # The coordinated checkpoint of the whole cluster is now durable:
            # it becomes the cluster's recovery line, which is the moment
            # log garbage collection and similar cleanups become safe.
            self._on_cluster_checkpoint_complete(cluster_id, iteration)

    def fast_forward_checkpoint(self, rank: int, iteration: int, state: Any, time: float) -> None:
        """Batch bookkeeping for a coordinated checkpoint inside a
        fast-forwarded epoch (:mod:`repro.simulator.hybrid`).

        The fast-forward driver reaches an iteration boundary with every
        cluster member already synchronised, so the barrier, the channel
        drain and the write-cost compute event of
        :meth:`_coordinated_checkpoint` are unnecessary (the calibrated
        per-checkpoint rate already accounts for their duration); everything
        observable -- the stored record, the protocol counters, the
        per-cluster recovery-line hooks -- is identical.  ``time`` is the
        rank's projected clock at the boundary.
        """
        sim = self.sim
        proc = sim.ranks[rank]
        if proc.unexpected:
            for message in proc.unexpected:
                if not self.is_inter_cluster(message.source, rank):
                    raise ProtocolError(
                        f"rank {rank}: intra-cluster message from {message.source} is still "
                        "undelivered at a coordinated checkpoint boundary; the application "
                        "must complete intra-cluster receives before the boundary"
                    )
        record = sim.storage.save(
            rank=rank,
            iteration=iteration,
            app_state=state,
            time=time,
            sends_at_checkpoint=proc.sends_initiated,
            protocol_state=self._checkpoint_payload(rank),
            size_bytes=self._checkpoint_size(rank, state),
        )
        self._latest_checkpoint[rank] = record
        self.pstats.checkpoints += 1
        self.pstats.checkpoint_bytes += record.size_bytes
        rank_stats = sim.stats.rank(rank)
        rank_stats.checkpoints += 1
        cost = sim.storage.write_cost(record.size_bytes)
        if cost > 0:
            # Exact mode pays the write as a ComputeOp; keep the compute-time
            # counter (and the wasted-work analyses built on it) comparable.
            rank_stats.compute_time += cost
        self._after_checkpoint(rank, record)
        cluster_id = self._cluster_of[rank]
        generation = self._cluster_generation.get(cluster_id, 0)
        key = (cluster_id, generation, iteration)
        saved = self._ckpt_saved.setdefault(key, set())
        saved.add(rank)
        if saved == self._member_sets[cluster_id]:
            self._on_cluster_checkpoint_complete(cluster_id, iteration)

    def fast_forward_cluster_checkpoint(
        self, cluster_id: int, iteration: int, states: Dict[int, Any],
        time_of: Callable[[int], float],
    ) -> None:
        """Coordinated checkpoint of one whole cluster inside a
        fast-forwarded epoch.

        The batched driver (:meth:`repro.simulator.hybrid.HybridDirector`'s
        interval loop) reaches the boundary with every member synchronised in
        the same call, so the per-member completion set that
        :meth:`fast_forward_checkpoint` maintains is redundant: each member
        saves in cluster order and the cluster-complete hook fires once at
        the end.  ``time_of(rank)`` returns the member's projected clock at
        the boundary.
        """
        sim = self.sim
        ranks = sim.ranks
        storage = sim.storage
        stats = sim.stats
        pstats = self.pstats
        latest = self._latest_checkpoint
        for rank in self.members(cluster_id):
            proc = ranks[rank]
            if proc.unexpected:
                for message in proc.unexpected:
                    if not self.is_inter_cluster(message.source, rank):
                        raise ProtocolError(
                            f"rank {rank}: intra-cluster message from {message.source} is still "
                            "undelivered at a coordinated checkpoint boundary; the application "
                            "must complete intra-cluster receives before the boundary"
                        )
            state = states[rank]
            record = storage.save(
                rank=rank,
                iteration=iteration,
                app_state=state,
                time=time_of(rank),
                sends_at_checkpoint=proc.sends_initiated,
                protocol_state=self._checkpoint_payload(rank),
                size_bytes=self._checkpoint_size(rank, state),
            )
            latest[rank] = record
            pstats.checkpoints += 1
            pstats.checkpoint_bytes += record.size_bytes
            rank_stats = stats.rank(rank)
            rank_stats.checkpoints += 1
            cost = storage.write_cost(record.size_bytes)
            if cost > 0:
                rank_stats.compute_time += cost
            self._after_checkpoint(rank, record)
        self._on_cluster_checkpoint_complete(cluster_id, iteration)

    def _drain_then_fire(self, cluster_id: int, condition: Condition) -> None:
        members = set(self.members(cluster_id))
        if self.sim.transport.in_flight_within(members) == 0:
            condition.fire()
        else:
            self.sim.engine.schedule(
                self.sim.network.min_latency(), self._drain_then_fire, cluster_id, condition
            )

    def _checkpoint_size(self, rank: int, state: Any) -> int:
        return self.checkpoint_size_bytes + self._extra_checkpoint_bytes(rank)

    # -------------------------------------------------------------- rollback
    def rollback_clusters(self, cluster_ids: Iterable[int]) -> RollbackInfo:
        """Roll every member of the given clusters back to its last coordinated
        checkpoint (or to the initial state when no checkpoint exists)."""
        cluster_ids = sorted(set(cluster_ids))
        ranks: List[int] = []
        for cid in cluster_ids:
            ranks.extend(self.members(cid))
        rank_set = set(ranks)

        # Messages in flight to/from the rolled back ranks are lost; messages
        # already received by other ranks but not yet delivered to their
        # application are purged (their senders will regenerate them).
        self.sim.drop_in_flight(rank_set)
        self.sim.purge_undelivered_from(rank_set)

        restore_iterations: Dict[int, int] = {}
        for cid in cluster_ids:
            self._cluster_generation[cid] = self._cluster_generation.get(cid, 0) + 1
            members = self.members(cid)
            iteration = self.sim.storage.latest_common_iteration(members)
            restore_iterations[cid] = 0 if iteration is None else iteration
            for rank in members:
                if iteration is None:
                    app_state = None
                    sends_at = 0
                    payload: Optional[Dict[str, Any]] = None
                    restart_iteration = 0
                else:
                    record = self.sim.storage.checkpoint_at(rank, iteration)
                    app_state = record.restore_app_state()
                    sends_at = record.sends_at_checkpoint
                    payload = record.protocol_state
                    restart_iteration = record.iteration
                self._restore_from_payload(rank, payload)
                self.sim.restart_rank(
                    rank,
                    iteration=restart_iteration,
                    app_state=app_state,
                    sends_at_checkpoint=sends_at,
                )
        self.pstats.rollbacks += 1
        self.pstats.ranks_rolled_back += len(ranks)
        return RollbackInfo(
            clusters=cluster_ids,
            ranks=sorted(ranks),
            restore_iterations=restore_iterations,
            time=self.sim.engine.now,
        )

    def clusters_of_ranks(self, ranks: Iterable[int]) -> List[int]:
        return sorted({self._cluster_of[r] for r in ranks})

    # ------------------------------------------------- subclass extension API
    def _init_rank_state(self, rank: int) -> None:
        """Create protocol-private per-rank state (called at attach time)."""

    def _checkpoint_payload(self, rank: int) -> Dict[str, Any]:
        """Protocol state to embed in a checkpoint (Algorithm 1 line 21)."""
        return {}

    def _restore_from_payload(self, rank: int, payload: Optional[Dict[str, Any]]) -> None:
        """Restore protocol state from a checkpoint payload (None = initial)."""

    def _extra_checkpoint_bytes(self, rank: int) -> int:
        """Extra checkpoint volume contributed by the protocol (e.g. logs)."""
        return 0

    def _after_checkpoint(self, rank: int, record: CheckpointRecord) -> None:
        """Hook run after a rank's checkpoint is saved."""

    def _on_cluster_checkpoint_complete(self, cluster_id: int, iteration: int) -> None:
        """Hook run once *every* member of ``cluster_id`` has saved its
        checkpoint for ``iteration`` (the cluster's new recovery line).

        Garbage collection of sender-based logs must wait for this point: an
        individual member's checkpoint is not a valid recovery line as long
        as some other member of the cluster could force a rollback to an
        older coordinated checkpoint.
        """

    def _dispatch_control(self, message: ControlMessage) -> None:
        """Deliver a control-plane message to the protocol (override)."""
        raise ProtocolError(
            f"{self.name}: unexpected control message {message.kind!r} "
            "(protocol did not install a control handler)"
        )

    # ------------------------------------------------------- schedule explore
    #: pstats counters that meter *attempted* work, including work later
    #: rolled back.  When a rollback notification ties with an iteration
    #: boundary, the tie-break decides how many doomed sends the victim got
    #: in before rewinding -- so these totals are schedule-dependent by
    #: nature even though the recovered state is not, and they stay out of
    #: the interleaving-invariance fingerprint.
    _WASTED_WORK_COUNTERS = (
        "logged_messages",
        "logged_bytes",
        "determinants_logged",
        "determinant_bytes",
        "piggyback_bytes",
        "gc_reclaimed_bytes",
        # Recovery-session chatter: how many log entries needed replaying
        # and how many duplicates receivers swatted depends on how far
        # doomed work got before the rollback landed.
        "replayed_messages",
        "suppressed_orphans",
    )

    def schedule_fingerprint(self) -> Dict[str, Any]:
        """Structural counters + recovery-line bookkeeping (interleaving-invariant)."""
        info = dict(super().schedule_fingerprint())
        info["pstats"] = {
            key: value
            for key, value in self.pstats.as_dict().items()
            if key not in self._WASTED_WORK_COUNTERS
        }
        info["cluster_generations"] = dict(self._cluster_generation)
        info["latest_checkpoint_iteration"] = {
            rank: record.iteration for rank, record in self._latest_checkpoint.items()
        }
        return info

    def recovery_line_fingerprint(self) -> Dict[str, Any]:
        """The committed recovery line: checkpoint coordinates per rank, plus
        the per-cluster line a rollback would actually restore (the largest
        iteration *every* member has durably checkpointed)."""
        info = dict(super().recovery_line_fingerprint())
        info["cluster_generations"] = dict(self._cluster_generation)
        info["latest_checkpoint_iteration"] = {
            rank: record.iteration for rank, record in self._latest_checkpoint.items()
        }
        info["cluster_lines"] = {
            cid: self.sim.storage.latest_common_iteration(members)
            for cid, members in enumerate(self.clusters)
        }
        return info

    # ------------------------------------------------------------ accounting
    def extra_metrics(self) -> Dict[str, Any]:
        """Cluster layout + the shared :class:`ProtocolStatistics` counters.

        Counter names are published unprefixed (``protocol.logged_messages``
        instead of the old ``pstats_logged_messages`` spillover); a subclass
        publishing a name already claimed here raises
        :class:`~repro.errors.ConfigurationError` via :func:`add_metric`.
        """
        info = dict(super().extra_metrics())
        add_metric(info, "clusters", len(self.clusters))
        add_metric(info, "checkpoint_interval", self.checkpoint_interval)
        for key, value in self.pstats.as_dict().items():
            add_metric(info, key, value)
        return info
