"""Deterministic per-link bandwidth sharing (FIFO busy-until tracking).

Each shared link serializes the transfers that cross it: a message reserves
every link of its path in order, waiting for the link's previous transfer
to finish before occupying it for ``wire_bytes / effective_bandwidth``
seconds.  Reservations are made at *send* time in engine callback order, so
ties are broken by the engine's deterministic event sequence -- two runs
with identical inputs reserve identical windows, and serial vs N-worker
campaigns (one simulation per process) stay byte-identical.

The model is intentionally simple: store-and-forward per link, no packet
interleaving.  It is not a cycle-accurate fabric model -- the goal is a
deterministic, monotone congestion signal (heavier shared-link traffic =>
later arrivals) that makes inter- vs intra-cluster locality visible to the
experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Sequence, Tuple

from repro.topology.topology import Link


@dataclass
class LinkUsage:
    """Accumulated traffic counters for one link."""

    tier: str
    messages: int = 0
    bytes: int = 0
    busy_s: float = 0.0
    wait_s: float = 0.0


class ContentionModel:
    """Per-link busy-until tracking with FIFO serialization.

    State is per simulation run: the transport resets the model when it
    attaches, so reusing a network model across simulations starts clean.
    """

    def __init__(self) -> None:
        self._busy_until: Dict[str, float] = {}
        self._usage: Dict[str, LinkUsage] = {}
        #: total time messages spent queued behind busy links.
        self.total_wait_s: float = 0.0

    def reset(self) -> None:
        self._busy_until.clear()
        self._usage.clear()
        self.total_wait_s = 0.0

    def reserve(
        self, path: Sequence[Link], wire_bytes: int, start: float
    ) -> Tuple[float, float]:
        """Walk ``path`` from ``start``; returns ``(finish_time, wait_time)``.

        Each link is held for its serialization time once the previous
        transfer on it completes (FIFO per link); the link's propagation
        latency is added after the transfer.  ``wait_time`` is the summed
        queueing delay behind busy links (the congestion signal).
        """
        # Hot path: one call per message on contended topologies; dict
        # handles are hoisted so the per-link work is a couple of lookups.
        busy_until = self._busy_until
        usage_map = self._usage
        t = start
        waited = 0.0
        for link in path:
            name = link.name
            busy = busy_until.get(name, 0.0)
            begin = busy if busy > t else t
            wait = begin - t
            serialization = wire_bytes / link.effective_bandwidth_bytes_per_s
            busy_until[name] = begin + serialization
            usage = usage_map.get(name)
            if usage is None:
                usage = usage_map[name] = LinkUsage(tier=link.tier)
            usage.messages += 1
            usage.bytes += wire_bytes
            usage.busy_s += serialization
            usage.wait_s += wait
            waited += wait
            t = begin + serialization + link.latency_s
        self.total_wait_s += waited
        return t, waited

    # ------------------------------------------------------------- reporting
    def link_stats(self, makespan: Optional[float] = None) -> Dict[str, Dict[str, Any]]:
        """Per-link counters (plus utilization when ``makespan`` is given),
        keyed by link name in sorted order for deterministic records."""
        stats: Dict[str, Dict[str, Any]] = {}
        for name in sorted(self._usage):
            usage = self._usage[name]
            entry: Dict[str, Any] = {
                "tier": usage.tier,
                "messages": usage.messages,
                "bytes": usage.bytes,
                "busy_s": usage.busy_s,
                "wait_s": usage.wait_s,
            }
            if makespan is not None and makespan > 0:
                entry["utilization"] = usage.busy_s / makespan
            stats[name] = entry
        return stats

    def tier_stats(self) -> Dict[str, Dict[str, Any]]:
        """Counters aggregated by link tier (node-local / intra / inter)."""
        tiers: Dict[str, Dict[str, Any]] = {}
        for usage in self._usage.values():
            entry = tiers.setdefault(
                usage.tier, {"messages": 0, "bytes": 0, "busy_s": 0.0, "wait_s": 0.0}
            )
            entry["messages"] += usage.messages
            entry["bytes"] += usage.bytes
            entry["busy_s"] += usage.busy_s
            entry["wait_s"] += usage.wait_s
        return {tier: tiers[tier] for tier in sorted(tiers)}
