"""Hierarchical interconnect topologies (ranks -> nodes -> clusters).

The paper's evaluation runs over a flat Myrinet 10G fabric where every rank
pair effectively owns a private link, so inter- and intra-cluster traffic
are physically indistinguishable.  Real machines are hierarchical: ranks
share a node, nodes share a cluster switch, and clusters share an
oversubscribed inter-cluster fabric.  This module describes that hierarchy
as plain data so the simulator can route each message over its link path
and charge deterministic per-link bandwidth sharing
(:mod:`repro.topology.contention`).

A :class:`Topology` maps every rank to a node and every node to a physical
cluster, and owns the directed :class:`Link` objects between them.  Routes
are fixed by the hierarchy:

* same rank            -- no links (loopback);
* same node            -- the node's local link (memory/NIC loopback);
* same cluster         -- source node uplink, destination node downlink;
* different clusters   -- node uplink, source cluster uplink, destination
  cluster downlink, node downlink.

The cluster up/downlinks carry the ``oversubscription`` factor: an
oversubscription of ``k`` divides the link's effective bandwidth by ``k``,
which is where inter-cluster congestion during recovery comes from.

The degenerate :func:`flat_topology` has no links at all, so routing over
it reproduces the flat point-to-point models exactly (every pair keeps its
private, uncontended channel).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError

#: link tier names (coarse physical locality classes).
TIER_NODE_LOCAL = "node-local"
TIER_INTRA_CLUSTER = "intra-cluster"
TIER_INTER_CLUSTER = "inter-cluster"

LINK_TIERS = (TIER_NODE_LOCAL, TIER_INTRA_CLUSTER, TIER_INTER_CLUSTER)


@dataclass(frozen=True)
class Link:
    """One directed physical link with latency, bandwidth and oversubscription.

    ``oversubscription`` divides the nominal bandwidth: a factor of 4 means
    four endpoints' worth of traffic funnel through one link's capacity, the
    standard way fat-tree fabrics are thinned towards the core.
    """

    name: str
    tier: str
    latency_s: float
    bandwidth_bytes_per_s: float
    oversubscription: float = 1.0

    def __post_init__(self) -> None:
        if self.tier not in LINK_TIERS:
            raise ConfigurationError(
                f"unknown link tier {self.tier!r}; expected one of {LINK_TIERS}"
            )
        if self.bandwidth_bytes_per_s <= 0:
            raise ConfigurationError(f"link {self.name}: bandwidth must be positive")
        if self.oversubscription < 1.0:
            raise ConfigurationError(
                f"link {self.name}: oversubscription must be >= 1 "
                f"(got {self.oversubscription})"
            )
        if self.latency_s < 0:
            raise ConfigurationError(f"link {self.name}: latency must be >= 0")

    @property
    def effective_bandwidth_bytes_per_s(self) -> float:
        """Bandwidth actually available to one message (after oversubscription)."""
        return self.bandwidth_bytes_per_s / self.oversubscription


class Topology:
    """Rank placement plus the link hierarchy between nodes and clusters.

    ``node_of_rank[r]`` is the node hosting rank ``r``;
    ``cluster_of_node[n]`` is the physical cluster of node ``n``.  The five
    link families (node local/up/down, cluster up/down) are optional: a
    topology with no links routes every pair over a private channel (the
    flat degenerate case).
    """

    def __init__(
        self,
        name: str,
        node_of_rank: Sequence[int],
        cluster_of_node: Sequence[int],
        node_local: Optional[Sequence[Link]] = None,
        node_up: Optional[Sequence[Link]] = None,
        node_down: Optional[Sequence[Link]] = None,
        cluster_up: Optional[Sequence[Link]] = None,
        cluster_down: Optional[Sequence[Link]] = None,
    ) -> None:
        self.name = name
        self.node_of_rank: Tuple[int, ...] = tuple(int(n) for n in node_of_rank)
        self.cluster_of_node: Tuple[int, ...] = tuple(int(c) for c in cluster_of_node)
        if not self.node_of_rank:
            raise ConfigurationError("a topology needs at least one rank")
        num_nodes = max(self.node_of_rank) + 1
        if len(self.cluster_of_node) < num_nodes:
            raise ConfigurationError(
                f"cluster_of_node covers {len(self.cluster_of_node)} nodes, "
                f"but ranks are placed on {num_nodes}"
            )
        self._node_local = list(node_local or [])
        self._node_up = list(node_up or [])
        self._node_down = list(node_down or [])
        self._cluster_up = list(cluster_up or [])
        self._cluster_down = list(cluster_down or [])
        if any((self._node_local, self._node_up, self._node_down,
                self._cluster_up, self._cluster_down)):
            # Either no links at all (the flat degenerate case) or complete
            # families: routing indexes them by node/cluster id, so a partial
            # family would surface as an IndexError mid-simulation.
            num_clusters = max(self.cluster_of_node[:num_nodes]) + 1
            for family, links, needed in (
                ("node_local", self._node_local, num_nodes),
                ("node_up", self._node_up, num_nodes),
                ("node_down", self._node_down, num_nodes),
                ("cluster_up", self._cluster_up, num_clusters),
                ("cluster_down", self._cluster_down, num_clusters),
            ):
                if len(links) < needed:
                    raise ConfigurationError(
                        f"topology {name!r}: link family {family!r} has "
                        f"{len(links)} links but needs one per "
                        f"{'node' if 'node' in family else 'cluster'} ({needed})"
                    )
        #: every link by name (stable insertion order, for stats reporting).
        self.links: Dict[str, Link] = {}
        for group in (self._node_local, self._node_up, self._node_down,
                      self._cluster_up, self._cluster_down):
            for link in group:
                if link.name in self.links:
                    raise ConfigurationError(f"duplicate link name {link.name!r}")
                self.links[link.name] = link
        self._route_cache: Dict[Tuple[int, int], Tuple[Link, ...]] = {}

    # ---------------------------------------------------------------- layout
    @property
    def nprocs(self) -> int:
        return len(self.node_of_rank)

    @property
    def num_nodes(self) -> int:
        return max(self.node_of_rank) + 1

    @property
    def num_clusters(self) -> int:
        return max(self.cluster_of_node[: self.num_nodes]) + 1

    @property
    def has_shared_links(self) -> bool:
        """True when messages can contend (any link exists)."""
        return bool(self.links)

    def cluster_of_rank(self, rank: int) -> int:
        return self.cluster_of_node[self.node_of_rank[rank]]

    def ranks_by_node(self) -> List[List[int]]:
        nodes: List[List[int]] = [[] for _ in range(self.num_nodes)]
        for rank, node in enumerate(self.node_of_rank):
            nodes[node].append(rank)
        return nodes

    def ranks_by_cluster(self) -> List[List[int]]:
        clusters: List[List[int]] = [[] for _ in range(self.num_clusters)]
        for rank in range(self.nprocs):
            clusters[self.cluster_of_rank(rank)].append(rank)
        return clusters

    # --------------------------------------------------------------- routing
    def route(self, source: int, dest: int) -> Tuple[Link, ...]:
        """Ordered link path a message from ``source`` to ``dest`` occupies."""
        key = (source, dest)
        cached = self._route_cache.get(key)
        if cached is not None:
            return cached
        path = self._compute_route(source, dest)
        self._route_cache[key] = path
        return path

    def _compute_route(self, source: int, dest: int) -> Tuple[Link, ...]:
        if not self.links or source == dest:
            return ()
        node_s = self.node_of_rank[source]
        node_d = self.node_of_rank[dest]
        if node_s == node_d:
            return (self._node_local[node_s],)
        cluster_s = self.cluster_of_node[node_s]
        cluster_d = self.cluster_of_node[node_d]
        if cluster_s == cluster_d:
            return (self._node_up[node_s], self._node_down[node_d])
        return (
            self._node_up[node_s],
            self._cluster_up[cluster_s],
            self._cluster_down[cluster_d],
            self._node_down[node_d],
        )

    def describe(self) -> Dict[str, Any]:
        """Plain-data summary (carried into campaign records / stats)."""
        return {
            "name": self.name,
            "nprocs": self.nprocs,
            "nodes": self.num_nodes,
            "clusters": self.num_clusters,
            "links": len(self.links),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"Topology({self.name!r}, nprocs={self.nprocs}, "
            f"nodes={self.num_nodes}, clusters={self.num_clusters}, "
            f"links={len(self.links)})"
        )


# ------------------------------------------------------------------ builders
def flat_topology(nprocs: int) -> Topology:
    """The degenerate single-tier topology: every pair owns a private link.

    Routing over it is a no-op, so a flat topology reproduces the flat
    point-to-point network models exactly.
    """
    if nprocs < 1:
        raise ConfigurationError("flat_topology needs nprocs >= 1")
    return Topology(
        name="flat",
        node_of_rank=range(nprocs),
        cluster_of_node=[0] * nprocs,
    )


def hierarchical_topology(
    nprocs: int,
    ranks_per_node: int = 4,
    nodes_per_cluster: int = 4,
    oversubscription: float = 1.0,
    node_local_latency_s: float = 0.3e-6,
    node_local_bandwidth_bytes_per_s: float = 6.0e9,
    intra_latency_s: float = 0.8e-6,
    intra_bandwidth_bytes_per_s: float = 1.2e9,
    inter_latency_s: float = 1.6e-6,
    inter_bandwidth_bytes_per_s: float = 1.2e9,
    name: str = "hierarchical",
) -> Topology:
    """Three-tier topology: ranks on nodes, nodes in clusters, shared fabric.

    ``oversubscription`` applies to the cluster up/downlinks (the
    inter-cluster fabric); node up/downlinks model the NIC into the cluster
    switch and the node-local link models shared-memory transfers.
    """
    if nprocs < 1:
        raise ConfigurationError("hierarchical_topology needs nprocs >= 1")
    if ranks_per_node < 1 or nodes_per_cluster < 1:
        raise ConfigurationError(
            "ranks_per_node and nodes_per_cluster must be >= 1 "
            f"(got {ranks_per_node}, {nodes_per_cluster})"
        )
    node_of_rank = [rank // ranks_per_node for rank in range(nprocs)]
    num_nodes = node_of_rank[-1] + 1
    cluster_of_node = [node // nodes_per_cluster for node in range(num_nodes)]
    num_clusters = cluster_of_node[-1] + 1

    node_local = [
        Link(f"node{n}:local", TIER_NODE_LOCAL,
             node_local_latency_s, node_local_bandwidth_bytes_per_s)
        for n in range(num_nodes)
    ]
    node_up = [
        Link(f"node{n}:up", TIER_INTRA_CLUSTER,
             intra_latency_s, intra_bandwidth_bytes_per_s)
        for n in range(num_nodes)
    ]
    node_down = [
        Link(f"node{n}:down", TIER_INTRA_CLUSTER,
             intra_latency_s, intra_bandwidth_bytes_per_s)
        for n in range(num_nodes)
    ]
    cluster_up = [
        Link(f"cluster{c}:up", TIER_INTER_CLUSTER,
             inter_latency_s, inter_bandwidth_bytes_per_s, oversubscription)
        for c in range(num_clusters)
    ]
    cluster_down = [
        Link(f"cluster{c}:down", TIER_INTER_CLUSTER,
             inter_latency_s, inter_bandwidth_bytes_per_s, oversubscription)
        for c in range(num_clusters)
    ]
    return Topology(
        name=name,
        node_of_rank=node_of_rank,
        cluster_of_node=cluster_of_node,
        node_local=node_local,
        node_up=node_up,
        node_down=node_down,
        cluster_up=cluster_up,
        cluster_down=cluster_down,
    )


def _fat_tree_2level(nprocs: int, **params: Any) -> Topology:
    params.setdefault("ranks_per_node", 4)
    params.setdefault("nodes_per_cluster", 4)
    params.setdefault("oversubscription", 2.0)
    return hierarchical_topology(nprocs, name="fat-tree-2level", **params)


def _cluster_per_node(nprocs: int, **params: Any) -> Topology:
    """Every node is its own physical cluster: all cross-node traffic rides
    the (oversubscribable) inter-cluster fabric."""
    if "nodes_per_cluster" in params:
        raise ConfigurationError(
            "the 'cluster-per-node' preset fixes nodes_per_cluster=1; "
            "use the 'hierarchical' preset to set it"
        )
    params.setdefault("ranks_per_node", 4)
    params.setdefault("oversubscription", 2.0)
    return hierarchical_topology(
        nprocs, nodes_per_cluster=1, name="cluster-per-node", **params
    )


def _flat(nprocs: int, **params: Any) -> Topology:
    if params:
        raise ConfigurationError(
            f"the 'flat' topology preset takes no parameters (got {sorted(params)})"
        )
    return flat_topology(nprocs)


#: preset name -> builder(nprocs, **params).
TOPOLOGY_PRESETS: Dict[str, Callable[..., Topology]] = {
    "flat": _flat,
    "hierarchical": hierarchical_topology,
    "fat-tree-2level": _fat_tree_2level,
    "cluster-per-node": _cluster_per_node,
}


def available_presets() -> List[str]:
    return sorted(TOPOLOGY_PRESETS)


def build_topology(preset: str, nprocs: int, **params: Any) -> Topology:
    """Instantiate a preset topology for ``nprocs`` ranks."""
    try:
        builder = TOPOLOGY_PRESETS[preset]
    except KeyError:
        raise ConfigurationError(
            f"unknown topology preset {preset!r}; available: "
            f"{', '.join(available_presets())}"
        ) from None
    try:
        return builder(nprocs, **params)
    except TypeError as exc:
        raise ConfigurationError(
            f"invalid parameters for topology preset {preset!r}: {exc}"
        ) from None
