"""Topology-aware network substrate: rank placement, link tiers, contention.

:class:`Topology` describes the physical hierarchy (ranks on nodes, nodes
in clusters, per-link latency/bandwidth/oversubscription);
:class:`ContentionModel` serializes concurrent transfers on shared links
deterministically.  :class:`repro.simulator.network.RoutedNetworkModel`
combines both with a flat endpoint model, and
:class:`repro.scenarios.spec.TopologySpec` makes topologies declarative and
sweepable.
"""

from repro.topology.contention import ContentionModel, LinkUsage
from repro.topology.topology import (
    LINK_TIERS,
    TIER_INTER_CLUSTER,
    TIER_INTRA_CLUSTER,
    TIER_NODE_LOCAL,
    TOPOLOGY_PRESETS,
    Link,
    Topology,
    available_presets,
    build_topology,
    flat_topology,
    hierarchical_topology,
)

__all__ = [
    "Link",
    "Topology",
    "ContentionModel",
    "LinkUsage",
    "LINK_TIERS",
    "TIER_NODE_LOCAL",
    "TIER_INTRA_CLUSTER",
    "TIER_INTER_CLUSTER",
    "TOPOLOGY_PRESETS",
    "available_presets",
    "build_topology",
    "flat_topology",
    "hierarchical_topology",
]
