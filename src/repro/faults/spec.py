"""Declarative stochastic fault models: :class:`FaultModelSpec`.

A :class:`FaultModelSpec` describes *how failures are drawn* instead of
listing them by hand: a seeded inter-arrival distribution
(:mod:`repro.faults.distributions`), the spatial scope of each failure
(single rank, whole node, whole physical cluster -- the latter two drawn
from the scenario's :class:`~repro.topology.topology.Topology`), the time
horizon inside which failures may strike, and the ``(seed, replica)`` pair
that makes every draw replayable.

The spec is frozen, JSON-round-trippable and sweepable like every other
piece of a :class:`~repro.scenarios.spec.ScenarioSpec` (e.g. sweep
``fault_model.params.mtbf_s`` or ``fault_model.seed``).  It is *plan, not
outcome*: the concrete :class:`~repro.faults.trace.FailureTrace` is
generated ahead of simulation in :func:`repro.faults.trace.generate_trace`
and materialised into plain :class:`~repro.simulator.failures.FailureEvent`
objects at :func:`repro.scenarios.build.build` time.

Seeding contract
----------------
Every random stream is derived from the spec's own content -- the canonical
JSON of the fault model (which contains ``seed`` and ``replica``), the rank
count and the failing unit's label -- via SHA-256, never from global RNG
state.  Two consequences:

* the same spec always generates byte-identical traces, in any process, so
  serial and ``--workers N`` Monte Carlo campaigns stay byte-identical;
* bumping ``replica`` (what :func:`repro.faults.montecarlo.replica_specs`
  does) re-seeds every stream, so replicas are independent draws that are
  each individually cacheable by spec hash.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional

from repro.errors import ConfigurationError

#: spatial scope of one drawn failure (what fails together, concurrently).
SCOPES = ("rank", "node", "cluster")

#: distribution kinds accepted by :attr:`FaultModelSpec.distribution`.
#: ``exponential``/``weibull``/``fixed``/``replay`` draw per-unit
#: inter-arrival times (see :mod:`repro.faults.distributions`); ``trace``
#: replays a recorded :class:`~repro.faults.trace.FailureTrace` verbatim
#: (from ``params["events"]`` inline or ``params["path"]`` on disk).
DISTRIBUTION_KINDS = ("exponential", "weibull", "fixed", "replay", "trace")

#: distribution kinds that draw failures inside ``[0, horizon_s]`` and
#: therefore require the horizon to be set.
_HORIZON_KINDS = ("exponential", "weibull", "fixed", "replay")


def _freeze_mapping(value: Optional[Mapping[str, Any]]) -> Dict[str, Any]:
    return dict(value) if value else {}


@dataclass(frozen=True)
class FaultModelSpec:
    """How a scenario's failures are drawn (instead of listed by hand).

    Attributes
    ----------
    distribution:
        One of :data:`DISTRIBUTION_KINDS`.
    params:
        Distribution parameters: ``mtbf_s`` (per-unit mean time between
        failures; exponential/weibull/fixed), ``shape`` (weibull),
        ``intervals`` (replay), ``events``/``path`` (trace), and the
        optional ``mtbf_scale`` mapping of unit label to MTBF multiplier
        (per-node MTBF scaling, e.g. ``{"3": 0.5}`` halves unit 3's MTBF).
    scope:
        What fails together per drawn event: one ``rank``, a whole
        ``node``, or a whole physical ``cluster``.  Node and cluster scope
        need a ``network.topology`` in the scenario.
    horizon_s:
        Failures are drawn inside ``[0, horizon_s]`` simulated seconds.
    max_failures:
        Keep only the first N drawn failures (after merging all units).
    seed / replica:
        Base seed and Monte Carlo replica index; both are part of the spec
        hash, so every replica is a distinct, individually cached scenario.
    """

    distribution: str = "exponential"
    params: Dict[str, Any] = field(default_factory=dict)
    scope: str = "rank"
    horizon_s: Optional[float] = None
    max_failures: Optional[int] = None
    seed: int = 0
    replica: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "params", _freeze_mapping(self.params))
        if self.distribution not in DISTRIBUTION_KINDS:
            raise ConfigurationError(
                f"unknown fault distribution {self.distribution!r}; "
                f"expected one of {DISTRIBUTION_KINDS}"
            )
        if self.scope not in SCOPES:
            raise ConfigurationError(
                f"unknown fault scope {self.scope!r}; expected one of {SCOPES}"
            )
        if self.horizon_s is not None:
            if not isinstance(self.horizon_s, (int, float)) \
                    or isinstance(self.horizon_s, bool) \
                    or not math.isfinite(self.horizon_s) or self.horizon_s <= 0:
                raise ConfigurationError(
                    f"fault model horizon_s must be a positive finite number, "
                    f"got {self.horizon_s!r}"
                )
        elif self.distribution in _HORIZON_KINDS:
            raise ConfigurationError(
                f"fault distribution {self.distribution!r} draws failures in "
                "[0, horizon_s]: set horizon_s (simulated seconds)"
            )
        if self.max_failures is not None and (
            not isinstance(self.max_failures, int)
            or isinstance(self.max_failures, bool)
            or self.max_failures < 1
        ):
            raise ConfigurationError(
                f"fault model max_failures must be an integer >= 1, "
                f"got {self.max_failures!r}"
            )
        for name in ("seed", "replica"):
            value = getattr(self, name)
            if not isinstance(value, int) or isinstance(value, bool) or value < 0:
                raise ConfigurationError(
                    f"fault model {name} must be a non-negative integer, got {value!r}"
                )
        scale = self.params.get("mtbf_scale")
        if scale is not None:
            if not isinstance(scale, Mapping):
                raise ConfigurationError(
                    "fault model mtbf_scale must map unit labels to factors, "
                    f"got {type(scale).__name__}"
                )
            normalized: Dict[str, Any] = {}
            for key, factor in scale.items():
                if not isinstance(factor, (int, float)) or isinstance(factor, bool) \
                        or not math.isfinite(factor) or factor <= 0:
                    raise ConfigurationError(
                        f"fault model mtbf_scale[{key!r}] must be a positive "
                        f"finite number, got {factor!r}"
                    )
                # JSON object keys are strings, and json.dumps coerces int
                # keys silently -- normalise here so the spec hash and the
                # generation-time lookup always agree.
                normalized[str(key)] = factor
            params = dict(self.params)
            params["mtbf_scale"] = normalized
            object.__setattr__(self, "params", params)
        # Eager parameter validation: a missing/mistyped mtbf_s must fail at
        # spec construction, not replicas-deep inside a campaign worker.
        if self.distribution == "trace":
            # Value-is-None, not key-presence: a template with the unused
            # source left as an explicit null must behave like an absent key
            # (and generate-time code tests None-ness the same way).
            if (self.params.get("events") is None) == (self.params.get("path") is None):
                raise ConfigurationError(
                    "fault distribution 'trace' needs exactly one of "
                    "params['events'] (inline entries) or params['path'] "
                    "(a saved FailureTrace file)"
                )
        else:
            from repro.faults.distributions import make_distribution

            make_distribution(self.distribution, self.params)

    # -------------------------------------------------------------- json i/o
    def to_dict(self) -> Dict[str, Any]:
        return {
            "distribution": self.distribution,
            "params": dict(self.params),
            "scope": self.scope,
            "horizon_s": self.horizon_s,
            "max_failures": self.max_failures,
            "seed": self.seed,
            "replica": self.replica,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultModelSpec":
        return cls(**dict(data))

    def canonical_json(self) -> str:
        """Deterministic serialisation of the whole spec."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    def stream_key(self) -> str:
        """The root of every RNG stream key: the *generation-relevant* spec.

        ``max_failures`` is excluded -- it truncates the merged trace after
        drawing, so a capped trace is always a prefix of the uncapped one
        (same seed, same draws).
        """
        data = self.to_dict()
        data.pop("max_failures", None)
        return json.dumps(data, sort_keys=True, separators=(",", ":"))

    def describe(self) -> str:
        parts = [self.distribution, f"scope={self.scope}"]
        mtbf = self.params.get("mtbf_s")
        if mtbf is not None:
            parts.append(f"mtbf={mtbf:g}s")
        parts.append(f"seed={self.seed}/r{self.replica}")
        return " ".join(parts)
