"""Replayable failure traces: generated ahead of simulation, frozen as data.

A :class:`FailureTrace` is the concrete outcome of a
:class:`~repro.faults.spec.FaultModelSpec` for one scenario: an ordered
list of timed group failures (:class:`TraceEntry`), JSON-round-trippable so
a drawn trace can be archived, diffed, shipped in a bug report and replayed
verbatim later (``distribution="trace"`` with ``params["path"]``).

Generation is a pure function of spec content
(:func:`generate_trace`):

* the failing *units* come from the spec's ``scope`` -- every rank, every
  node, or every physical cluster of the scenario's PR-2
  :class:`~repro.topology.topology.Topology` (node/cluster scope is how
  spatially-correlated concurrent failures are expressed: the whole unit
  fails at one instant);
* each unit runs an independent seeded renewal process
  (:mod:`repro.faults.distributions`), its MTBF optionally scaled by the
  ``mtbf_scale`` map, drawing failure times inside ``[0, horizon_s]``;
* the per-unit draws are merged in deterministic ``(time, ranks)`` order
  and truncated to ``max_failures``.

The trace materialises into plain
:class:`~repro.simulator.failures.FailureEvent` objects at scenario build
time (:meth:`FailureTrace.to_failure_events`), so the simulator itself
never sees the stochastic layer.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.faults.distributions import derive_rng, make_distribution
from repro.fslock import atomic_write_json
from repro.faults.spec import FaultModelSpec
from repro.simulator.failures import FailureEvent, validate_failure_group
from repro.topology import Topology

#: hard cap on generated entries -- a fault model whose MTBF is tiny next to
#: its horizon is a configuration bug, not a workload.
MAX_TRACE_ENTRIES = 100_000

TRACE_VERSION = 1


@dataclass(frozen=True)
class TraceEntry:
    """One timed group failure: ``ranks`` fail together at ``time``."""

    time: float
    ranks: Tuple[int, ...]
    #: provenance label of the failing unit (``"rank:3"``, ``"node:1"``,
    #: ``"cluster:0"``, or ``"trace"`` for replayed entries).
    unit: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "ranks", tuple(int(r) for r in self.ranks))
        validate_failure_group("trace entry", self.ranks, self.time)
        if self.time is None:
            raise ConfigurationError("a trace entry needs a time")

    def to_dict(self) -> Dict[str, Any]:
        return {"time": self.time, "ranks": list(self.ranks), "unit": self.unit}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TraceEntry":
        return cls(
            time=float(data["time"]),
            ranks=tuple(data["ranks"]),
            unit=str(data.get("unit", "")),
        )


class FailureTrace:
    """An ordered, JSON-round-trippable list of timed group failures."""

    def __init__(
        self,
        entries: Sequence[TraceEntry],
        metadata: Optional[Mapping[str, Any]] = None,
    ) -> None:
        self.entries: Tuple[TraceEntry, ...] = tuple(entries)
        #: free-form provenance (the generating fault-model dict, nprocs...).
        self.metadata: Dict[str, Any] = dict(metadata or {})

    # ------------------------------------------------------------- container
    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[TraceEntry]:
        return iter(self.entries)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FailureTrace):
            return NotImplemented
        return self.entries == other.entries and self.metadata == other.metadata

    def __repr__(self) -> str:
        return f"FailureTrace({len(self.entries)} failures)"

    @property
    def failure_times(self) -> List[float]:
        return [entry.time for entry in self.entries]

    @property
    def total_rank_failures(self) -> int:
        """Rank-failures summed over entries (group failures count each rank)."""
        return sum(len(entry.ranks) for entry in self.entries)

    # -------------------------------------------------------------- json i/o
    def to_dict(self) -> Dict[str, Any]:
        return {
            "version": TRACE_VERSION,
            "metadata": dict(self.metadata),
            "entries": [entry.to_dict() for entry in self.entries],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FailureTrace":
        version = data.get("version", TRACE_VERSION)
        if version != TRACE_VERSION:
            raise ConfigurationError(
                f"unsupported failure-trace version {version!r} "
                f"(this build reads version {TRACE_VERSION})"
            )
        entries = [TraceEntry.from_dict(e) for e in data.get("entries", ())]
        return cls(entries, metadata=data.get("metadata"))

    def to_json(self, **dumps_kwargs: Any) -> str:
        return json.dumps(self.to_dict(), **dumps_kwargs)

    @classmethod
    def from_json(cls, text: str) -> "FailureTrace":
        return cls.from_dict(json.loads(text))

    def save(self, path: str) -> None:
        atomic_write_json(path, self.to_dict())

    @classmethod
    def load(cls, path: str) -> "FailureTrace":
        with open(path, encoding="utf-8") as fh:
            return cls.from_dict(json.load(fh))

    # ------------------------------------------------------------ simulation
    def to_failure_events(self) -> List[FailureEvent]:
        """Materialise into the simulator's plain failure events."""
        return [
            FailureEvent(ranks=list(entry.ranks), time=entry.time)
            for entry in self.entries
        ]


# ------------------------------------------------------------------- units
def failure_units(
    fault: FaultModelSpec, nprocs: int, topology: Optional[Topology] = None
) -> List[Tuple[str, Tuple[int, ...]]]:
    """The independently-failing units of a scenario: ``(label, ranks)``.

    ``rank`` scope works with or without a topology (each rank is its own
    unit); ``node`` and ``cluster`` scope group the ranks that share a
    physical node / cluster of the scenario's topology and therefore
    require one.
    """
    if fault.scope == "rank":
        return [(f"rank:{rank}", (rank,)) for rank in range(nprocs)]
    if topology is None:
        raise ConfigurationError(
            f"fault scope {fault.scope!r} groups ranks by physical "
            f"{fault.scope}: the scenario needs a network.topology"
        )
    if topology.nprocs != nprocs:
        raise ConfigurationError(
            f"fault model topology covers {topology.nprocs} ranks, "
            f"scenario has {nprocs}"
        )
    if fault.scope == "node":
        groups = topology.ranks_by_node()
        label = "node"
    else:
        groups = topology.ranks_by_cluster()
        label = "cluster"
    return [
        (f"{label}:{index}", tuple(ranks))
        for index, ranks in enumerate(groups)
        if ranks
    ]


# --------------------------------------------------------------- generation
def generate_trace(
    fault: FaultModelSpec, nprocs: int, topology: Optional[Topology] = None
) -> FailureTrace:
    """Draw the failure trace a fault model describes, ahead of simulation.

    Pure function of spec content: every RNG stream is keyed by the fault
    model's :meth:`~repro.faults.spec.FaultModelSpec.stream_key` (which
    includes ``seed`` and ``replica``), the rank count and the unit label
    -- never by global RNG state.
    """
    if nprocs < 1:
        raise ConfigurationError("a fault model needs nprocs >= 1")
    metadata = {"fault_model": fault.to_dict(), "nprocs": nprocs}
    if fault.distribution == "trace":
        entries = _replayed_entries(fault, nprocs)
        return FailureTrace(_finish(entries, fault), metadata=metadata)

    spec_key = fault.stream_key()
    # mtbf_scale was validated and key-normalised by FaultModelSpec.
    scale = fault.params.get("mtbf_scale") or {}
    base = make_distribution(fault.distribution, fault.params)
    horizon = float(fault.horizon_s)

    entries: List[TraceEntry] = []
    for label, ranks in failure_units(fault, nprocs, topology):
        # mtbf_scale accepts the full label ("node:3") or its bare index
        # ("3"), whichever reads better in the sweep at hand.
        factor = scale.get(label, scale.get(label.split(":", 1)[-1], 1.0))
        # scaled() also rewinds stateful distributions (replay), so every
        # unit samples a private, freshly-wound copy.
        distribution = base.scaled(float(factor))
        rng = derive_rng("repro.faults.trace", spec_key, nprocs, label)
        now = 0.0
        while True:
            step = distribution.sample(rng)
            if step is None:
                break
            now += step
            if now > horizon:
                break
            entries.append(TraceEntry(time=now, ranks=ranks, unit=label))
            if len(entries) > MAX_TRACE_ENTRIES:
                raise ConfigurationError(
                    f"fault model draws more than {MAX_TRACE_ENTRIES} failures "
                    f"inside horizon {horizon:g}s; raise mtbf_s or lower the "
                    "horizon (this is a configuration error, not a workload)"
                )
    return FailureTrace(_finish(entries, fault), metadata=metadata)


def _finish(entries: List[TraceEntry], fault: FaultModelSpec) -> List[TraceEntry]:
    """Deterministic merge order + the max_failures truncation."""
    entries = sorted(entries, key=lambda e: (e.time, e.ranks))
    if fault.max_failures is not None:
        entries = entries[: fault.max_failures]
    return entries


def _replayed_entries(fault: FaultModelSpec, nprocs: int) -> List[TraceEntry]:
    """Entries of a ``distribution="trace"`` model: replayed verbatim.

    ``params["events"]`` holds inline ``{"time", "ranks"}`` entries;
    ``params["path"]`` names a :meth:`FailureTrace.save` file.  Exactly one
    must be present.  Note that only ``events`` is covered by the spec hash
    -- a path is a pointer, and editing the file behind an unchanged path
    will not invalidate cached campaign records.
    """
    events = fault.params.get("events")
    path = fault.params.get("path")
    if (events is None) == (path is None):
        raise ConfigurationError(
            "fault distribution 'trace' needs exactly one of params['events'] "
            "(inline entries) or params['path'] (a saved FailureTrace file)"
        )
    if path is not None:
        source = FailureTrace.load(path).entries
    else:
        source = tuple(
            TraceEntry(
                time=float(e["time"]), ranks=tuple(e["ranks"]),
                unit=str(e.get("unit", "trace")),
            )
            if isinstance(e, Mapping)
            else TraceEntry(time=float(e[0]), ranks=tuple(e[1]), unit="trace")
            for e in events
        )
    out: List[TraceEntry] = []
    for entry in source:
        if not entry.ranks:
            raise ConfigurationError("a replayed failure entry needs ranks")
        bad = [r for r in entry.ranks if r < 0 or r >= nprocs]
        if bad:
            raise ConfigurationError(
                f"replayed failure at t={entry.time:g} names ranks {bad} "
                f"outside 0..{nprocs - 1}"
            )
        if fault.horizon_s is not None and entry.time > fault.horizon_s:
            continue
        out.append(entry)
    return out
