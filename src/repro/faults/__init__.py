"""Stochastic fault-model subsystem: seeded, replayable failure injection.

Layers (bottom up):

* :mod:`repro.faults.distributions` -- seeded inter-arrival distributions
  (exponential, Weibull, fixed-interval, replay) with per-unit MTBF
  scaling; every stream is derived from spec content via SHA-256, never
  from global RNG state.
* :mod:`repro.faults.spec` -- :class:`FaultModelSpec`, the frozen,
  sweepable, JSON-round-trippable description that rides on
  :class:`~repro.scenarios.spec.ScenarioSpec` (mutually exclusive with an
  explicit ``failures`` list).
* :mod:`repro.faults.trace` -- :class:`FailureTrace`: the concrete timed
  group failures a spec draws, generated ahead of simulation with
  topology-aware node/cluster scopes and materialised into
  :class:`~repro.simulator.failures.FailureEvent` objects at build time.
* :mod:`repro.faults.montecarlo` -- N-replica Monte Carlo campaigns over
  the existing parallel campaign runner, aggregated into ``faults.*``
  mean/stddev/CI metrics.  (Imported lazily: the campaign layer sits above
  the scenario layer, which itself imports this package.)
"""

from repro.faults.distributions import (
    DISTRIBUTIONS,
    ExponentialInterArrival,
    FixedInterArrival,
    InterArrivalDistribution,
    ReplayInterArrival,
    WeibullInterArrival,
    derive_rng,
    derive_seed,
    make_distribution,
)
from repro.faults.spec import DISTRIBUTION_KINDS, SCOPES, FaultModelSpec
from repro.faults.trace import (
    FailureTrace,
    TraceEntry,
    failure_units,
    generate_trace,
)

#: names resolved lazily from :mod:`repro.faults.montecarlo` (it imports the
#: campaign layer, which imports the scenario layer, which imports this
#: package -- an eager import here would be circular).
_MONTECARLO_EXPORTS = (
    "MonteCarloResult",
    "aggregate_metrics",
    "montecarlo_job",
    "replica_job",
    "replica_specs",
    "run_montecarlo",
)


def __getattr__(name: str):
    if name in _MONTECARLO_EXPORTS:
        from repro.faults import montecarlo

        return getattr(montecarlo, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "FaultModelSpec",
    "DISTRIBUTION_KINDS",
    "SCOPES",
    "FailureTrace",
    "TraceEntry",
    "generate_trace",
    "failure_units",
    "InterArrivalDistribution",
    "ExponentialInterArrival",
    "WeibullInterArrival",
    "FixedInterArrival",
    "ReplayInterArrival",
    "DISTRIBUTIONS",
    "make_distribution",
    "derive_rng",
    "derive_seed",
    *_MONTECARLO_EXPORTS,
]
