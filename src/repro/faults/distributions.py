"""Seeded inter-arrival distributions for stochastic fault models.

Each distribution answers one question -- *how long until this unit's next
failure?* -- and is sampled with an explicit :class:`random.Random` stream
(built by :func:`derive_rng` from SHA-256 of the caller's key material),
never from module-level/global RNG state.  That is what makes fault traces
replayable: the same spec content always produces the same draws, in any
process, in any worker count.

The catalogue mirrors the failure models used by MTBF studies of HPC
systems (and the inhomogeneous-Poisson-process simulation style of
Hohmann's IPPP package, arXiv:1901.10754):

* ``exponential`` -- memoryless Poisson process with per-unit ``mtbf_s``;
* ``weibull``     -- Weibull renewal process (``shape`` < 1 bursty infant
  mortality, ``shape`` > 1 wear-out); parameterised by its *mean* so the
  sweep axis stays "MTBF", not the scale parameter;
* ``fixed``       -- deterministic interval (every ``mtbf_s`` seconds);
* ``replay``      -- replays an explicit, finite inter-arrival sequence
  (``intervals``), exhausting afterwards.

Per-node MTBF scaling: :meth:`InterArrivalDistribution.scaled` returns a
copy with the mean multiplied by a unit-specific factor (see
``mtbf_scale`` in :class:`~repro.faults.spec.FaultModelSpec`).
"""

from __future__ import annotations

import hashlib
import math
import random
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple

from repro.errors import ConfigurationError


def derive_seed(*parts: Any) -> int:
    """A 64-bit seed from SHA-256 over the string forms of ``parts``.

    Deterministic across processes and platforms (no ``hash()``
    randomisation), so any RNG stream keyed this way is replayable.
    """
    material = "|".join(str(part) for part in parts)
    digest = hashlib.sha256(material.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def derive_rng(*parts: Any) -> random.Random:
    """A private :class:`random.Random` stream keyed by ``parts``."""
    return random.Random(derive_seed(*parts))


def _require_positive(name: str, value: Any) -> float:
    if not isinstance(value, (int, float)) or isinstance(value, bool) \
            or not math.isfinite(value) or value <= 0:
        raise ConfigurationError(
            f"fault distribution parameter {name!r} must be a positive finite "
            f"number, got {value!r}"
        )
    return float(value)


class InterArrivalDistribution:
    """One unit's time-to-next-failure distribution (seeded, replayable)."""

    kind = "base"

    #: mean inter-arrival time (the unit's MTBF), in simulated seconds.
    mean_s: float = math.inf

    def sample(self, rng: random.Random) -> Optional[float]:
        """Draw the next inter-arrival time; ``None`` = process exhausted."""
        raise NotImplementedError

    def scaled(self, factor: float) -> "InterArrivalDistribution":
        """Copy of this distribution with the MTBF multiplied by ``factor``."""
        raise NotImplementedError


class ExponentialInterArrival(InterArrivalDistribution):
    """Memoryless (Poisson) failure process with mean ``mtbf_s``."""

    kind = "exponential"

    def __init__(self, mtbf_s: float) -> None:
        self.mean_s = _require_positive("mtbf_s", mtbf_s)

    def sample(self, rng: random.Random) -> Optional[float]:
        return rng.expovariate(1.0 / self.mean_s)

    def scaled(self, factor: float) -> "ExponentialInterArrival":
        return ExponentialInterArrival(self.mean_s * factor)


class WeibullInterArrival(InterArrivalDistribution):
    """Weibull renewal process parameterised by its mean (``mtbf_s``).

    The scale parameter is recovered as ``mtbf_s / gamma(1 + 1/shape)`` so
    sweeping ``mtbf_s`` sweeps the actual mean time between failures
    whatever the shape.
    """

    kind = "weibull"

    def __init__(self, mtbf_s: float, shape: float = 1.5) -> None:
        self.mean_s = _require_positive("mtbf_s", mtbf_s)
        self.shape = _require_positive("shape", shape)
        self.scale_s = self.mean_s / math.gamma(1.0 + 1.0 / self.shape)

    def sample(self, rng: random.Random) -> Optional[float]:
        return rng.weibullvariate(self.scale_s, self.shape)

    def scaled(self, factor: float) -> "WeibullInterArrival":
        return WeibullInterArrival(self.mean_s * factor, self.shape)


class FixedInterArrival(InterArrivalDistribution):
    """Deterministic failure every ``mtbf_s`` seconds (no randomness)."""

    kind = "fixed"

    def __init__(self, mtbf_s: float) -> None:
        self.mean_s = _require_positive("mtbf_s", mtbf_s)

    def sample(self, rng: random.Random) -> Optional[float]:
        return self.mean_s

    def scaled(self, factor: float) -> "FixedInterArrival":
        return FixedInterArrival(self.mean_s * factor)


class ReplayInterArrival(InterArrivalDistribution):
    """Replays an explicit inter-arrival sequence, then exhausts.

    Stateful: each :meth:`sample` consumes the next interval.  Use one
    instance per unit (``scaled`` returns a fresh, rewound copy, so the
    per-unit scaling path does the right thing).
    """

    kind = "replay"

    def __init__(self, intervals: Sequence[float]) -> None:
        if not intervals:
            raise ConfigurationError(
                "fault distribution 'replay' needs a non-empty 'intervals' list"
            )
        self.intervals: Tuple[float, ...] = tuple(
            _require_positive("intervals[]", v) for v in intervals
        )
        self.mean_s = sum(self.intervals) / len(self.intervals)
        self._next = 0

    def sample(self, rng: random.Random) -> Optional[float]:
        if self._next >= len(self.intervals):
            return None
        value = self.intervals[self._next]
        self._next += 1
        return value

    def scaled(self, factor: float) -> "ReplayInterArrival":
        return ReplayInterArrival([v * factor for v in self.intervals])


#: distribution kind -> factory(params dict) (the ``trace`` kind is not an
#: inter-arrival process; :func:`repro.faults.trace.generate_trace` replays
#: it verbatim).
DISTRIBUTIONS: Dict[str, Any] = {
    "exponential": lambda params: ExponentialInterArrival(params.get("mtbf_s")),
    "weibull": lambda params: WeibullInterArrival(
        params.get("mtbf_s"), params.get("shape", 1.5)
    ),
    "fixed": lambda params: FixedInterArrival(params.get("mtbf_s")),
    "replay": lambda params: ReplayInterArrival(params.get("intervals", ())),
}


def make_distribution(kind: str, params: Mapping[str, Any]) -> InterArrivalDistribution:
    """Instantiate the inter-arrival distribution named ``kind``."""
    try:
        factory = DISTRIBUTIONS[kind]
    except KeyError:
        raise ConfigurationError(
            f"unknown inter-arrival distribution {kind!r}; available: "
            f"{', '.join(sorted(DISTRIBUTIONS))}"
        ) from None
    made: InterArrivalDistribution = factory(dict(params))
    return made
