"""Monte Carlo fault campaigns: N seeded replicas through the campaign runner.

A Monte Carlo campaign takes one scenario with a
:class:`~repro.faults.spec.FaultModelSpec` and fans out N *replicas*:
copies of the spec that differ only in ``fault_model.replica``.  Because
the replica index is part of the spec (and of every RNG stream key), each
replica

* draws an independent failure trace, byte-identically in any process --
  serial and ``--workers N`` campaigns produce the same records and the
  same store files;
* has its own spec hash, so completed replicas cache individually and a
  re-run with more replicas only executes the new ones.

Replicas run the ``montecarlo-replica`` job (the ``simulate`` payload plus
``sim.total_compute_time``, the counter wasted-work analyses need);
:func:`aggregate_metrics` folds their per-replica metric trees into
mean/stddev/CI statistics under the ``faults.`` namespace
(``faults.sim.makespan.mean``, ``faults.sim.recovery_time.ci95``, ...).

Two entry points:

* :func:`run_montecarlo` -- library API: expand, run (optionally fanned
  out over worker processes and cached in a store), aggregate;
* :func:`montecarlo_job` -- the registered ``montecarlo`` campaign job,
  for spec files: one spec tagged ``{"analysis": "montecarlo",
  "replicas": N}`` runs its replicas in-process and stores the aggregate.
"""

from __future__ import annotations

import dataclasses
import math
import os
import shutil
import tempfile
from contextlib import nullcontext
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.campaign.store import ResultsStore
from repro.errors import ConfigurationError
from repro.results.metrics import MetricSet
from repro.results.run import RunResult, make_payload
from repro.scenarios.spec import ScenarioSpec
from repro.simulator.calibration import CalibrationCache, activated

#: metric namespaces folded into ``faults.*`` statistics (link-level trees
#: are per-topology detail, not Monte Carlo observables).
AGGREGATE_NAMESPACES = ("sim", "protocol")

DEFAULT_REPLICAS = 20


# ----------------------------------------------------------------- replicas
def replica_specs(
    base: ScenarioSpec,
    replicas: int,
    analysis: str = "montecarlo-replica",
    execution: Optional[str] = None,
) -> List[ScenarioSpec]:
    """The N replica scenarios of ``base`` (``fault_model.replica`` = 0..N-1).

    Each replica keeps the base tags (so experiment filters keep matching),
    gains ``replica``/``mc_base`` provenance tags, and runs ``analysis``
    (the per-replica job) instead of the base spec's own analysis.

    Replicas default to ``execution="hybrid"`` (fast-forward failure-free
    epochs, see :mod:`repro.simulator.hybrid`) when the base spec left the
    mode at ``"exact"``: Monte Carlo campaigns aggregate makespan/byte
    statistics, which is exactly what the hybrid mode preserves, and each
    replica still falls back to exact execution on its own if calibration
    fails.  Pass ``execution="exact"`` to force full DES everywhere; a base
    spec that sets a mode explicitly keeps it.
    """
    if base.fault_model is None:
        raise ConfigurationError(
            f"scenario {base.name!r} has no fault_model: Monte Carlo replicas "
            "re-draw a stochastic fault model, there is nothing to re-draw"
        )
    if replicas < 1:
        raise ConfigurationError(f"a Monte Carlo campaign needs replicas >= 1, got {replicas}")
    # The campaign identity must not depend on how many replicas were
    # requested or how the campaign was launched (direct call vs the
    # 'montecarlo' job tag): strip both before hashing, or growing a
    # campaign would re-key -- and re-simulate -- every replica.
    base_tags = dict(base.tags)
    base_tags.pop("replicas", None)
    base_tags.pop("analysis", None)
    base_hash = dataclasses.replace(base, tags=base_tags).spec_hash()
    resolved = execution or ("hybrid" if base.execution == "exact" else base.execution)
    specs: List[ScenarioSpec] = []
    for index in range(replicas):
        tags = dict(base.tags)
        tags.pop("replicas", None)
        tags.update({"analysis": analysis, "replica": index, "mc_base": base_hash})
        specs.append(
            dataclasses.replace(
                base,
                name=f"{base.name}#r{index}",
                fault_model=dataclasses.replace(base.fault_model, replica=index),
                execution=resolved,
                tags=tags,
            )
        )
    return specs


# -------------------------------------------------------------- aggregation
def _numeric(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def aggregate_metrics(runs: Sequence[RunResult]) -> MetricSet:
    """Fold per-replica metric trees into ``faults.*`` statistics.

    Every numeric ``sim.*`` / ``protocol.*`` leaf present in *all* completed
    replicas gains ``.mean``, ``.std`` (sample stddev), ``.ci95`` (normal
    95% half-width), ``.min`` and ``.max`` under ``faults.<path>``.
    Replicas that did not complete are excluded from the statistics but
    counted in ``faults.replicas`` vs ``faults.completed_replicas``.
    """
    metrics = MetricSet()
    completed = [run for run in runs if run.completed]
    metrics.set("faults.replicas", len(runs))
    metrics.set("faults.completed_replicas", len(completed))
    if not completed:
        return metrics

    paths = None
    for run in completed:
        run_paths = {
            path
            for path in run.metrics
            if path.split(".", 1)[0] in AGGREGATE_NAMESPACES
            and _numeric(run.metric(path))
        }
        paths = run_paths if paths is None else (paths & run_paths)
    for path in sorted(paths or ()):
        values = [float(run.metric(path)) for run in completed]
        n = len(values)
        mean = sum(values) / n
        if n > 1:
            std = math.sqrt(sum((v - mean) ** 2 for v in values) / (n - 1))
        else:
            std = 0.0
        metrics.set(f"faults.{path}.mean", mean)
        metrics.set(f"faults.{path}.std", std)
        metrics.set(f"faults.{path}.ci95", 1.96 * std / math.sqrt(n))
        metrics.set(f"faults.{path}.min", min(values))
        metrics.set(f"faults.{path}.max", max(values))
    return metrics


@dataclass
class MonteCarloResult:
    """Outcome of :func:`run_montecarlo`: replicas + their aggregate."""

    base: ScenarioSpec
    runs: Tuple[RunResult, ...]
    metrics: MetricSet
    cache_hits: int = 0
    executed: int = 0

    @property
    def replicas(self) -> int:
        return len(self.runs)

    @property
    def completed_replicas(self) -> int:
        return sum(1 for run in self.runs if run.completed)

    def metric(self, path: str, default: Any = None) -> Any:
        """Aggregate lookup (``faults.sim.makespan.mean``, ...)."""
        return self.metrics.get(path, default)


def prewarm_calibration(base: ScenarioSpec, cache: CalibrationCache) -> bool:
    """Calibrate the shared hybrid warm-up model for ``base``, once.

    Runs the *failure-free* variant of the scenario (same workload,
    protocol, network, and config -- only the failure sources stripped, so
    it shares the replicas' :meth:`~repro.scenarios.spec.ScenarioSpec.
    calibration_key`) in hybrid mode and stores its exported calibration in
    ``cache``.  Replicas that later find the entry skip their own DES
    warm-up entirely (:meth:`repro.simulator.hybrid.HybridDirector.
    _cached_calibration`); the two-probe check still re-verifies the model
    against real per-message iterations before every batched advance.

    Returns ``True`` when the cache holds a usable entry afterwards.  A
    scenario whose failure-free run cannot calibrate (static fallback, too
    few iterations, ...) returns ``False`` and replicas warm up themselves
    exactly as before -- the pre-warm is a pure fast path, never a
    behaviour change.
    """
    from repro.scenarios.build import build

    key = base.calibration_key()
    if cache.get(key) is not None:
        return True
    free = dataclasses.replace(
        base,
        name=f"{base.name}#calibration",
        failures=(),
        fault_model=None,
        execution="hybrid",
        tags={},
    )
    sim = build(free)
    sim.run()
    entry = sim.hybrid_calibration
    if not entry:
        return False
    cache.put(key, entry)
    cache.save()
    return True


def _calibration_cache(
    base: ScenarioSpec, store: Optional[ResultsStore], workers: int
) -> Tuple[Optional[CalibrationCache], Optional[str]]:
    """The campaign's calibration cache (and a temp dir to clean up).

    The cache file lives alongside the results store
    (``<store>.calibration.json``) so a re-run of a stored campaign skips
    even the pre-warm.  A multi-worker campaign without a store still needs
    a *file* -- worker processes inherit the cache through the
    ``REPRO_CALIBRATION_CACHE`` environment variable -- so one is
    materialised in a temporary directory and discarded with it; a serial
    in-memory campaign keeps the cache purely in memory.
    """
    if store is not None and store.path:
        root, _ext = os.path.splitext(store.path)
        return CalibrationCache(root + ".calibration.json"), None
    if workers > 1:
        tmpdir = tempfile.mkdtemp(prefix="repro-calibration-")
        return CalibrationCache(os.path.join(tmpdir, "calibration.json")), tmpdir
    return CalibrationCache(), None


def run_montecarlo(
    base: ScenarioSpec,
    replicas: int = DEFAULT_REPLICAS,
    workers: int = 1,
    store: Optional[ResultsStore] = None,
    force: bool = False,
    execution: Optional[str] = None,
) -> MonteCarloResult:
    """Fan N replicas of ``base`` through the campaign runner and aggregate.

    Replicas are embarrassingly parallel (``workers``) and individually
    cached by spec hash (``store``); the aggregate is recomputed from the
    records, so a fully-cached campaign aggregates without simulating.
    ``execution`` pins the replica execution mode (see
    :func:`replica_specs`, which defaults replicas to ``"hybrid"``).

    Hybrid campaigns share one warm-up calibration: the failure-free
    variant of ``base`` is calibrated *before* the fan-out
    (:func:`prewarm_calibration`) and every replica reads the resulting
    cache entry, keeping serial and ``--workers N`` campaigns
    byte-identical while skipping N-1 redundant DES warm-ups.
    """
    from repro.campaign.runner import run_campaign

    specs = replica_specs(base, replicas, execution=execution)
    cache = tmpdir = None
    if specs and specs[0].execution == "hybrid":
        cache, tmpdir = _calibration_cache(base, store, workers)
        if not prewarm_calibration(specs[0], cache):
            cache = None
    try:
        with activated(cache) if cache is not None else nullcontext():
            outcome = run_campaign(
                specs,
                workers=workers,
                store=store,
                force=force,
            )
    finally:
        if tmpdir is not None:
            shutil.rmtree(tmpdir, ignore_errors=True)
    runs = tuple(RunResult.from_record(record) for record in outcome.records)
    return MonteCarloResult(
        base=base,
        runs=runs,
        metrics=aggregate_metrics(runs),
        cache_hits=outcome.cache_hits,
        executed=outcome.executed,
    )


# --------------------------------------------------------------------- jobs
def replica_job(spec: ScenarioSpec) -> Tuple[Dict[str, Any], Any]:
    """Per-replica campaign job: simulate plus the wasted-work counter.

    The payload is the run's full metric tree with
    ``sim.total_compute_time`` added (re-executed compute is what failure
    *containment* saves; the plain ``simulate`` payload cannot grow this
    metric without invalidating pre-fault-model caches).

    A replica whose drawn trace trips a *runtime* protocol corner case
    (e.g. a strike landing exactly as a recovery session winds down) is
    recorded as a deterministic ``error:`` record instead of tearing down
    the whole campaign: Monte Carlo statistics must not silently select
    for calm replicas, so the aggregate reports such replicas as not
    completed.  Misconfiguration (:class:`ConfigurationError`) is the same
    in every replica and propagates loudly instead.
    """
    from repro.campaign.jobs import jsonify
    from repro.errors import ProtocolError, SimulationError
    from repro.scenarios.build import build

    try:
        result = build(spec).run()
    except (SimulationError, ProtocolError) as exc:
        payload = make_payload(
            f"error:{type(exc).__name__}", None, {"error": str(exc)}
        )
        return jsonify(payload), None
    metrics = MetricSet()
    metrics.merge(result.metrics)
    metrics.set("sim.total_compute_time", result.stats.total_compute_time)
    payload = make_payload(result.status, metrics, {"rank_states": result.rank_states})
    return jsonify(payload), result


def montecarlo_job(spec: ScenarioSpec) -> Tuple[Dict[str, Any], Any]:
    """The registered ``montecarlo`` job: aggregate N in-process replicas.

    The spec's ``tags["replicas"]`` (default ``20``) fixes the replica
    count.  Replicas run serially inside this job -- the campaign runner
    already fans the *montecarlo specs themselves* out over workers, and
    nested pools would not be deterministic-by-construction.
    """
    from repro.campaign.jobs import jsonify

    replicas = spec.tags.get("replicas", DEFAULT_REPLICAS)
    if not isinstance(replicas, int) or isinstance(replicas, bool) or replicas < 1:
        raise ConfigurationError(
            f"montecarlo scenario {spec.name!r}: tags['replicas'] must be a "
            f"positive integer, got {replicas!r}"
        )
    result = run_montecarlo(spec, replicas=replicas, workers=1)
    data = {
        "replicas": [
            {"name": run.name, "spec_hash": run.spec_hash, "status": run.status}
            for run in result.runs
        ],
    }
    payload = make_payload("completed", result.metrics, data)
    return jsonify(payload), result
