"""Campaign runner: execute scenario specs serially or in parallel.

The campaign layer turns lists of :class:`~repro.scenarios.spec.ScenarioSpec`
objects into results: it dispatches each spec to its registered job
(:mod:`repro.campaign.jobs`), fans work out over ``multiprocessing``
workers when asked, caches completed records by spec hash in a JSON
:class:`~repro.campaign.store.ResultsStore`, and aggregates everything into
a :class:`~repro.campaign.runner.CampaignResult` ordered like the input.

Quick use::

    from repro.scenarios import ScenarioSpec, WorkloadSpec, sweep
    from repro.campaign import ResultsStore, run_campaign

    base = ScenarioSpec(name="sweep", workload=WorkloadSpec("stencil2d", 16, 6))
    specs = sweep(base, {"workload.nprocs": [16, 64], "protocol.name": ["none", "hydee-log-all"]})
    outcome = run_campaign(specs, workers=4, store=ResultsStore("results.json"))
    print(outcome.summary_table())

The same campaign is available from the shell as ``python -m repro.campaign``
(or the ``repro-campaign`` console script).
"""

from repro.campaign.jobs import (
    ANALYSES,
    analysis_of,
    jsonify,
    register_analysis,
    resolve_analysis,
    simulate,
)
from repro.campaign.runner import CampaignResult, run_campaign, run_spec
from repro.campaign.store import ResultsStore

__all__ = [
    "ANALYSES",
    "CampaignResult",
    "ResultsStore",
    "analysis_of",
    "jsonify",
    "register_analysis",
    "resolve_analysis",
    "run_campaign",
    "run_spec",
    "simulate",
]
