"""Command-line campaign runner: ``python -m repro.campaign`` / ``repro-campaign``.

Subcommands
-----------

``run SPECFILE``
    Execute every scenario in a JSON spec file (one spec object or a list),
    optionally fanned out over worker processes and cached in a results
    store::

        repro-campaign run specs.json --workers 4 --store results.json

``list SPECFILE``
    Show the scenarios and their cache hashes without running anything.

``query STORE [STORE...]``
    Query cached results without re-running anything.  Version-1 stores are
    migrated transparently on load (pass ``--migrate`` to rewrite them as
    version 2 on disk)::

        repro-campaign query results.json --table table1
        repro-campaign query results.json --where protocol=hydee \\
            --select tags.benchmark sim.makespan
        repro-campaign query results.json \\
            --pivot tags.oversubscription tags.protocol sim.makespan

``demo``
    Write an example sweep (stencil/ring x protocol grid) to a spec file to
    get started::

        repro-campaign demo --out specs.json
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional, Sequence

from repro.campaign.runner import run_campaign
from repro.campaign.store import ResultsStore
from repro.errors import ReproError
from repro.fslock import atomic_write_json
from repro.scenarios.spec import ProtocolSpec, ScenarioSpec, WorkloadSpec, load_specs
from repro.scenarios.sweep import sweep


def _read_specs(path: str) -> List[ScenarioSpec]:
    with open(path, encoding="utf-8") as fh:
        return list(load_specs(json.load(fh)))


def _demo_specs() -> List[ScenarioSpec]:
    base = ScenarioSpec(
        name="demo",
        workload=WorkloadSpec(kind="stencil2d", nprocs=16, iterations=6),
        protocol=ProtocolSpec(name="none"),
    )
    return sweep(
        base,
        {
            "workload.kind": ["stencil2d", "ring"],
            "workload.nprocs": [8, 16],
            "protocol.name": ["none", "hydee-log-all"],
        },
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    try:
        return _main(argv)
    except (ReproError, OSError, json.JSONDecodeError, TypeError) as exc:
        # User errors (bad paths, malformed spec files, unknown names) get a
        # one-line message, not a traceback.
        print(f"repro-campaign: error: {exc}", file=sys.stderr)
        return 2


def _main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-campaign", description="Run declarative scenario campaigns."
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser("run", help="execute the scenarios in a spec file")
    run_parser.add_argument("specfile", help="JSON file with one spec or a list of specs")
    run_parser.add_argument("--workers", type=int, default=1,
                            help="worker processes (1 = serial)")
    run_parser.add_argument("--store", default=None,
                            help="JSON results store (cache) path")
    run_parser.add_argument("--force", action="store_true",
                            help="re-execute scenarios even when cached")
    run_parser.add_argument("--json", action="store_true", dest="as_json",
                            help="print the records as JSON instead of a table")

    list_parser = sub.add_parser("list", help="list the scenarios in a spec file")
    list_parser.add_argument("specfile")

    query_parser = sub.add_parser(
        "query", help="query cached results stores (auto-migrates v1 files)"
    )
    query_parser.add_argument("stores", nargs="*",
                              help="one or more results-store JSON files "
                                   "(optional with --list-tables)")
    query_parser.add_argument("--where", action="append", default=[],
                              metavar="PATH=VALUE",
                              help="filter on a spec field / tag / metric "
                                   "(repeatable; e.g. protocol=hydee, "
                                   "tags.benchmark=cg, sim.ranks_rolled_back=4)")
    query_parser.add_argument("--select", nargs="+", default=None, metavar="PATH",
                              help="print these dotted-path fields, one row per run")
    query_parser.add_argument("--table", default=None,
                              help="rebuild a registered analysis table "
                                   "(see --list-tables)")
    query_parser.add_argument("--pivot", nargs=3, default=None,
                              metavar=("INDEX", "COLUMN", "VALUE"),
                              help="pivot runs: INDEX rows x COLUMN columns of VALUE")
    query_parser.add_argument("--format", choices=("text", "csv", "json"),
                              default="text", dest="fmt")
    query_parser.add_argument("--list-tables", action="store_true",
                              help="list the registered table schemas and exit")
    query_parser.add_argument("--migrate", action="store_true",
                              help="rewrite loaded v1 stores as version 2 in place")

    demo_parser = sub.add_parser("demo", help="write an example spec file")
    demo_parser.add_argument("--out", default="campaign-specs.json")

    args = parser.parse_args(argv)

    if args.command == "query":
        return _query(args)

    if args.command == "demo":
        specs = _demo_specs()
        atomic_write_json(args.out, [s.to_dict() for s in specs])
        print(f"wrote {len(specs)} scenarios to {args.out}")
        print(f"run them with: repro-campaign run {args.out} --workers 2")
        return 0

    specs = _read_specs(args.specfile)
    if args.command == "list":
        for spec in specs:
            print(f"{spec.spec_hash()}  {spec.name:40s} {spec.describe()}")
        return 0

    store = ResultsStore(args.store) if args.store else None
    outcome = run_campaign(
        specs, workers=args.workers, store=store, force=args.force
    )
    if args.as_json:
        json.dump(outcome.records, sys.stdout, indent=1, sort_keys=True)
        print()
    else:
        print(outcome.summary_table())
    if args.store:
        print(f"results store: {args.store} ({len(store)} records)")
    return 0


def _parse_filters(pairs: Sequence[str]) -> Dict[str, Any]:
    filters: Dict[str, Any] = {}
    for pair in pairs:
        if "=" not in pair:
            raise ReproError(f"--where expects PATH=VALUE, got {pair!r}")
        path, _, raw = pair.partition("=")
        try:
            filters[path] = json.loads(raw)
        except json.JSONDecodeError:
            filters[path] = raw
    return filters


def _query(args: argparse.Namespace) -> int:
    # Importing the analysis package registers every table schema.
    import repro.analysis  # noqa: F401
    from repro.results.tables import available_tables, build_table, get_table

    if args.list_tables:
        for name in available_tables():
            registered = get_table(name)
            derivable = "" if registered.builder is not None else "  (live-only)"
            print(f"{name:16s} {registered.schema.title}{derivable}")
        return 0
    if not args.stores:
        raise ReproError("query needs at least one results-store file")

    # A missing path means a fresh cache for `run --store`, but for a query
    # it can only be a typo: fail instead of reporting an empty store.
    import os

    for path in args.stores:
        if not os.path.exists(path):
            raise ReproError(f"results store {path!r} does not exist")
    stores = [ResultsStore(path) for path in args.stores]
    for store in stores:
        if args.migrate and store.migrated:
            store.save()
            print(f"migrated {store.path} to store version 2", file=sys.stderr)

    from repro.results.query import ResultSet

    resultset = ResultSet.from_store(*stores).where(**_parse_filters(args.where))

    if args.table:
        schema, rows = build_table(args.table, resultset)
        print(schema.render(rows, fmt=args.fmt))
        return 0

    if args.pivot:
        index, column, value = args.pivot
        rows = resultset.pivot(index, column, value)
        _print_plain_rows(rows, fmt=args.fmt)
        return 0

    if args.select:
        rows = [
            dict(zip(args.select, values))
            for values in resultset.select(*args.select)
        ]
        _print_plain_rows(rows, fmt=args.fmt)
        return 0

    rows = resultset.summary_rows()
    _print_plain_rows(rows, fmt=args.fmt,
                      title=f"{len(resultset)} cached runs")
    return 0


def _print_plain_rows(rows: List[Dict[str, Any]], fmt: str = "text",
                      title: Optional[str] = None) -> None:
    from repro.analysis.reporting import format_dict_table

    if fmt == "json":
        json.dump(rows, sys.stdout, indent=1, sort_keys=False)
        print()
        return
    columns: List[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    if fmt == "csv":
        import csv

        writer = csv.DictWriter(sys.stdout, fieldnames=columns, lineterminator="\n")
        writer.writeheader()
        writer.writerows(rows)
        return
    print(format_dict_table(rows, columns=columns, title=title))


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
