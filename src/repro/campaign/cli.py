"""Command-line campaign runner: ``python -m repro.campaign`` / ``repro-campaign``.

Subcommands
-----------

``run SPECFILE``
    Execute every scenario in a JSON spec file (one spec object or a list),
    optionally fanned out over worker processes and cached in a results
    store::

        repro-campaign run specs.json --workers 4 --store results.json

``list SPECFILE``
    Show the scenarios and their cache hashes without running anything.

``demo``
    Write an example sweep (stencil/ring x protocol grid) to a spec file to
    get started::

        repro-campaign demo --out specs.json
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from repro.campaign.runner import run_campaign
from repro.campaign.store import ResultsStore
from repro.errors import ReproError
from repro.scenarios.spec import ProtocolSpec, ScenarioSpec, WorkloadSpec, load_specs
from repro.scenarios.sweep import sweep


def _read_specs(path: str) -> List[ScenarioSpec]:
    with open(path, "r", encoding="utf-8") as fh:
        return list(load_specs(json.load(fh)))


def _demo_specs() -> List[ScenarioSpec]:
    base = ScenarioSpec(
        name="demo",
        workload=WorkloadSpec(kind="stencil2d", nprocs=16, iterations=6),
        protocol=ProtocolSpec(name="none"),
    )
    return sweep(
        base,
        {
            "workload.kind": ["stencil2d", "ring"],
            "workload.nprocs": [8, 16],
            "protocol.name": ["none", "hydee-log-all"],
        },
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    try:
        return _main(argv)
    except (ReproError, OSError, json.JSONDecodeError, TypeError) as exc:
        # User errors (bad paths, malformed spec files, unknown names) get a
        # one-line message, not a traceback.
        print(f"repro-campaign: error: {exc}", file=sys.stderr)
        return 2


def _main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-campaign", description="Run declarative scenario campaigns."
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser("run", help="execute the scenarios in a spec file")
    run_parser.add_argument("specfile", help="JSON file with one spec or a list of specs")
    run_parser.add_argument("--workers", type=int, default=1,
                            help="worker processes (1 = serial)")
    run_parser.add_argument("--store", default=None,
                            help="JSON results store (cache) path")
    run_parser.add_argument("--force", action="store_true",
                            help="re-execute scenarios even when cached")
    run_parser.add_argument("--json", action="store_true", dest="as_json",
                            help="print the records as JSON instead of a table")

    list_parser = sub.add_parser("list", help="list the scenarios in a spec file")
    list_parser.add_argument("specfile")

    demo_parser = sub.add_parser("demo", help="write an example spec file")
    demo_parser.add_argument("--out", default="campaign-specs.json")

    args = parser.parse_args(argv)

    if args.command == "demo":
        specs = _demo_specs()
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump([s.to_dict() for s in specs], fh, indent=1, sort_keys=True)
            fh.write("\n")
        print(f"wrote {len(specs)} scenarios to {args.out}")
        print(f"run them with: repro-campaign run {args.out} --workers 2")
        return 0

    specs = _read_specs(args.specfile)
    if args.command == "list":
        for spec in specs:
            print(f"{spec.spec_hash()}  {spec.name:40s} {spec.describe()}")
        return 0

    store = ResultsStore(args.store) if args.store else None
    outcome = run_campaign(
        specs, workers=args.workers, store=store, force=args.force
    )
    if args.as_json:
        json.dump(outcome.records, sys.stdout, indent=1, sort_keys=True)
        print()
    else:
        print(outcome.summary_table())
    if args.store:
        print(f"results store: {args.store} ({len(store)} records)")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
