"""Campaign job registry: what to compute for a scenario.

A campaign executes *jobs*.  Each job is identified by the ``analysis`` tag
of the scenario (``spec.tags["analysis"]``, defaulting to ``"simulate"``)
and resolved lazily from a dotted ``module:function`` reference, so that

* worker processes resolve jobs by name without pickling callables, and
* the campaign layer never imports the analysis layer (no import cycles).

A job function takes the :class:`~repro.scenarios.spec.ScenarioSpec` and
returns ``(payload, artifact)``:

* ``payload`` -- a pure-JSON dict (pass it through :func:`jsonify`): this is
  what result stores cache and what serial and parallel campaigns must
  reproduce byte-for-byte;
* ``artifact`` -- an optional live Python object (e.g. the full
  :class:`~repro.simulator.simulation.SimulationResult`) for callers that
  need more than the summary; it is only propagated when the campaign runs
  with ``keep_artifacts=True`` and is never cached.
"""

from __future__ import annotations

import dataclasses
import enum
import importlib
from typing import Any, Callable, Dict, Mapping, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.results.run import make_payload
from repro.scenarios.build import build
from repro.scenarios.spec import ScenarioSpec

JobOutcome = Tuple[Dict[str, Any], Any]

#: analysis name -> "module:function" job reference.
ANALYSES: Dict[str, str] = {
    "simulate": "repro.campaign.jobs:simulate",
    "table1-row": "repro.analysis.table1:table1_job",
    "cluster-sweep": "repro.analysis.table1:cluster_sweep_job",
    "piggyback-policy": "repro.analysis.perf_model:piggyback_policy_job",
    "congestion-recovery": "repro.analysis.congestion:congestion_job",
    "montecarlo": "repro.faults.montecarlo:montecarlo_job",
    "montecarlo-replica": "repro.faults.montecarlo:replica_job",
    "schedule-explore": "repro.schedexplore.job:schedule_explore_job",
}


def register_analysis(name: str, reference: str) -> None:
    """Register (or override) an analysis job by dotted reference."""
    if ":" not in reference:
        raise ConfigurationError(
            f"analysis reference {reference!r} must look like 'module:function'"
        )
    ANALYSES[name] = reference


def analysis_of(spec: ScenarioSpec) -> str:
    return str(spec.tags.get("analysis", "simulate"))


def resolve_analysis(name: str) -> Callable[[ScenarioSpec], JobOutcome]:
    try:
        reference = ANALYSES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown analysis {name!r}; available: {', '.join(sorted(ANALYSES))}"
        ) from None
    module_name, _, attr = reference.partition(":")
    module = importlib.import_module(module_name)
    return getattr(module, attr)


# --------------------------------------------------------------------- json
def jsonify(obj: Any) -> Any:
    """Normalise ``obj`` to pure JSON types, deterministically.

    Dict keys become strings, tuples become lists, numpy scalars become
    Python numbers, enums become their values.  Applying :func:`jsonify`
    before storing guarantees a fresh record and a cache round-trip compare
    equal, which is what makes serial and parallel campaigns byte-identical.
    """
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        return obj
    if isinstance(obj, enum.Enum):
        return jsonify(obj.value)
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return float(obj)
    if isinstance(obj, np.ndarray):
        return [jsonify(v) for v in obj.tolist()]
    if isinstance(obj, Mapping):
        return {str(k): jsonify(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple, set, frozenset)):
        items = sorted(obj, key=repr) if isinstance(obj, (set, frozenset)) else obj
        return [jsonify(v) for v in items]
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return jsonify(dataclasses.asdict(obj))
    return repr(obj)


# ----------------------------------------------------------------- simulate
def simulate(spec: ScenarioSpec) -> JobOutcome:
    """The default job: build the scenario's simulation and run it.

    The payload is a v2 result section: the run's namespaced metric tree
    plus the per-rank outcomes under ``data`` (see :mod:`repro.results`).
    """
    result = build(spec).run()
    payload = make_payload(
        result.status,
        result.metrics,
        {
            "rank_results": result.rank_results,
            "rank_states": result.rank_states,
        },
    )
    return jsonify(payload), result
