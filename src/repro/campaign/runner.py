"""Execute scenario specs serially or fanned out over worker processes.

The runner is deliberately deterministic: records are keyed and ordered by
the input spec list, never by completion order, and contain no wall-clock
data -- a serial campaign and an N-worker campaign over the same specs
produce byte-identical records (and byte-identical store files).

Completed records are cached in a :class:`~repro.campaign.store.
ResultsStore` keyed by spec hash; a cache hit skips execution entirely.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.campaign.jobs import analysis_of, resolve_analysis
from repro.campaign.store import ResultsStore
from repro.errors import ConfigurationError
from repro.scenarios.spec import ScenarioSpec


def run_spec(spec: ScenarioSpec, keep_artifact: bool = False) -> Tuple[Dict[str, Any], Any]:
    """Execute one spec's job; returns ``(record, artifact)``.

    The record embeds the spec itself, so a results store is self-describing
    and a record can be traced back to the exact scenario that produced it.
    """
    job = resolve_analysis(analysis_of(spec))
    payload, artifact = job(spec)
    record = {
        "name": spec.name,
        "spec": spec.to_dict(),
        "spec_hash": spec.spec_hash(),
        "analysis": analysis_of(spec),
        "result": payload,
    }
    return record, (artifact if keep_artifact else None)


def _execute(args: Tuple[int, ScenarioSpec, bool]) -> Tuple[int, Dict[str, Any], Any]:
    index, spec, keep_artifact = args
    record, artifact = run_spec(spec, keep_artifact=keep_artifact)
    return index, record, artifact


@dataclass
class CampaignResult:
    """Outcome of :func:`run_campaign`, ordered like the input specs."""

    specs: List[ScenarioSpec]
    records: List[Dict[str, Any]]
    artifacts: List[Any]
    cache_hits: int = 0
    executed: int = 0
    workers: int = 1
    extra: Dict[str, Any] = field(default_factory=dict)

    def results(self) -> "Any":
        """The records as a queryable :class:`~repro.results.query.ResultSet`."""
        from repro.results.query import ResultSet

        return ResultSet.from_campaign(self)

    def summary_table(self, title: Optional[str] = None) -> str:
        # Imported lazily: the analysis package itself builds on the campaign
        # runner, so a module-level import would be circular.
        from repro.analysis.reporting import format_dict_table
        from repro.results.run import RunResult

        rows = []
        for spec, record in zip(self.specs, self.records):
            run = RunResult.from_record(record, strict=False)
            makespan = run.metric("sim.makespan")
            rows.append(
                {
                    "name": run.name,
                    "scenario": spec.describe(),
                    "analysis": run.analysis,
                    "status": run.status,
                    "makespan_ms": (
                        round(makespan * 1e3, 3)
                        if isinstance(makespan, (int, float))
                        else "-"
                    ),
                    "hash": run.spec_hash,
                }
            )
        return format_dict_table(
            rows,
            columns=["name", "scenario", "analysis", "status", "makespan_ms", "hash"],
            title=title or f"Campaign: {len(self.records)} scenarios "
            f"({self.executed} executed, {self.cache_hits} cached)",
        )


def run_campaign(
    specs: Sequence[ScenarioSpec],
    workers: int = 1,
    store: Optional[ResultsStore] = None,
    force: bool = False,
    keep_artifacts: bool = False,
    mp_context: Optional[str] = None,
) -> CampaignResult:
    """Run every spec, using the cache and up to ``workers`` processes.

    * ``store`` -- completed records are looked up / saved there by spec
      hash; ``None`` disables caching.
    * ``force`` -- execute even when a cached record exists.
    * ``keep_artifacts`` -- propagate live job artifacts (e.g. full
      :class:`SimulationResult` objects).  Cache hits have no artifact.
    * ``workers`` -- number of processes; ``<= 1`` runs in-process.  Specs
      are picklable by construction, so fan-out needs no extra setup.
    """
    specs = list(specs)
    if not specs:
        return CampaignResult(specs=[], records=[], artifacts=[])

    records: List[Optional[Dict[str, Any]]] = [None] * len(specs)
    artifacts: List[Any] = [None] * len(specs)
    pending: List[Tuple[int, ScenarioSpec, bool]] = []
    cache_hits = 0

    for index, spec in enumerate(specs):
        cached = None if (store is None or force) else store.get(spec.spec_hash())
        if cached is not None:
            records[index] = cached
            cache_hits += 1
        else:
            pending.append((index, spec, keep_artifacts))

    if pending:
        if workers > 1 and len(pending) > 1:
            if mp_context is None and "fork" in multiprocessing.get_all_start_methods():
                mp_context = "fork"
            context = multiprocessing.get_context(mp_context)
            with context.Pool(processes=min(workers, len(pending))) as pool:
                outcomes = pool.map(_execute, pending)
        else:
            outcomes = [_execute(item) for item in pending]
        for index, record, artifact in outcomes:
            records[index] = record
            artifacts[index] = artifact
            if store is not None:
                store.put(record["spec_hash"], record)
        if store is not None:
            store.save()

    missing = [i for i, r in enumerate(records) if r is None]
    if missing:
        raise ConfigurationError(f"campaign lost records for spec indexes {missing}")

    return CampaignResult(
        specs=specs,
        records=[r for r in records if r is not None],
        artifacts=artifacts,
        cache_hits=cache_hits,
        executed=len(pending),
        workers=workers,
    )
