"""Spec-hash-keyed JSON store for completed campaign records.

The store maps :meth:`ScenarioSpec.spec_hash` to the record produced by the
scenario's job.  Records are pure JSON (see
:func:`repro.campaign.jobs.jsonify`); the file is written with sorted keys
so two campaigns that computed the same records produce byte-identical
files regardless of execution order or worker count.

The on-disk format is versioned.  Version 2 (current) stores every record
with a ``{"status", "metrics", "data"}`` result section (see
:mod:`repro.results`); version-1 files are migrated in memory on load --
record by record, spec hashes untouched -- and written back as version 2 on
the next :meth:`ResultsStore.save`.  Unknown versions are rejected with a
clear error instead of being silently misread.

Concurrent writers: several campaign processes may share one store file
(parallel sweeps, CI jobs).  ``os.replace`` alone made each *file* write
atomic but the load-compute-save cycle was still a read-modify-write race:
the last writer's file silently dropped every record the other writers had
added in between.  :meth:`ResultsStore.save` therefore serialises writers
with an exclusive ``flock`` on a ``<path>.lock`` sidecar and, while holding
it, merges the records currently on disk into the write (records this store
computed win on hash collisions -- by construction they describe the same
spec anyway).
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Iterator, Optional

from repro.fslock import atomic_write_json, exclusive_lock
from repro.results.migrate import migrate_record

STORE_VERSION = 2


class ResultsStore:
    """JSON-file-backed (or purely in-memory) record cache."""

    def __init__(self, path: Optional[str] = None) -> None:
        self.path = path
        self._records: Dict[str, Dict[str, Any]] = {}
        #: version the file had on disk (None for fresh/in-memory stores).
        self.loaded_version: Optional[int] = None
        #: set by clear(): the next save() replaces the file outright instead
        #: of merging the on-disk records back in (deliberate deletion).
        self._replace_on_save = False
        if path is not None and os.path.exists(path):
            self._load()

    # ------------------------------------------------------------------- i/o
    def _read_records(self) -> Dict[str, Dict[str, Any]]:
        """Read and (if needed) migrate the records currently in the file."""
        if self.path is None:  # defensive: callers check before reading
            raise ValueError("in-memory store has no backing file to read")
        with open(self.path, encoding="utf-8") as fh:
            data = json.load(fh)
        if not isinstance(data, dict) or "records" not in data:
            raise ValueError(f"{self.path}: not a campaign results store")
        version = data.get("version", 1)
        if version == STORE_VERSION:
            records = dict(data["records"])
        elif version == 1:
            records = {
                spec_hash: migrate_record(record)
                for spec_hash, record in data["records"].items()
            }
        else:
            raise ValueError(
                f"{self.path}: unsupported results-store version {version!r}; "
                f"this build reads versions 1 (migrated in place) and {STORE_VERSION}"
            )
        self.loaded_version = version
        return records

    def _load(self) -> None:
        self._records = self._read_records()

    @property
    def migrated(self) -> bool:
        """Did loading this store run the v1 -> v2 migration?"""
        return self.loaded_version is not None and self.loaded_version < STORE_VERSION

    def save(self) -> None:
        """Write the store atomically (no-op for in-memory stores).

        Safe under concurrent writers: an exclusive lock on ``<path>.lock``
        serialises the merge-and-replace, and records written by other
        processes since our load are merged in instead of dropped (this
        store's own records win on spec-hash collisions).
        """
        if self.path is None:
            return
        with exclusive_lock(self.path):
            if not self._replace_on_save and os.path.exists(self.path):
                merged = self._read_records()
                merged.update(self._records)
                self._records = merged
            atomic_write_json(
                self.path, {"version": STORE_VERSION, "records": self._records}
            )
            self._replace_on_save = False

    # --------------------------------------------------------------- records
    def get(self, spec_hash: str) -> Optional[Dict[str, Any]]:
        return self._records.get(spec_hash)

    def put(self, spec_hash: str, record: Dict[str, Any]) -> None:
        self._records[spec_hash] = record

    def __contains__(self, spec_hash: str) -> bool:
        return spec_hash in self._records

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[str]:
        return iter(self._records)

    def records(self) -> Dict[str, Dict[str, Any]]:
        return dict(self._records)

    def clear(self) -> None:
        """Drop every record; the next save() replaces the file (no merge)."""
        self._records.clear()
        self._replace_on_save = True
