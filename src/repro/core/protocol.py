"""HydEE protocol implementation (Algorithms 1-4 of the paper).

Failure-free path (Algorithm 1)
-------------------------------
Every application message carries the sender's ``(date, phase)``; the payload
of inter-cluster messages is copied into the sender's volatile log; clusters
take coordinated checkpoints (handled by
:class:`repro.ftprotocols.base.ClusteredProtocolBase`) that embed the clock,
the RPP table and the log.  No event (determinant) is ever written.

Recovery path (Algorithms 2-4)
------------------------------
On a failure the protocol

1. rolls back the failed processes' clusters to their last coordinated
   checkpoint (other clusters are untouched -- failure containment),
2. has each rolled back process send a ``Rollback`` notification to every
   process outside its cluster and report its restored phase to the recovery
   process,
3. has every process compute, from its RPP table and sender log, the orphan
   messages and the logged messages to replay for each rolled back peer, and
   report their phases to the recovery process,
4. lets the recovery process release logged-message replays and first sends
   phase by phase, never before all orphan messages of lower phases have been
   regenerated (suppressed) by their rolled back senders.

Clarification w.r.t. the paper's pseudo-code
--------------------------------------------
Algorithm 2 line 6 sends only the restart *date* of the rolled back process.
Two different pieces of information are actually needed by the receivers of
that notification (both derivable from the restored checkpoint, so this is a
presentation shortcut of the paper, not a protocol change):

* the restart date (the rolled back process's own event counter), used to
  find **orphan** entries in the receivers' RPP tables (Algorithm 3 line 13);
* per destination, the send-date of the last message *from that destination*
  included in the restored state (the checkpointed ``RPP.Maxdate``), used by
  the destination to select which **logged messages** to replay (Algorithm 3
  line 10) -- log entries are indexed by the *sender's* dates, so they cannot
  be compared against the rolled back process's own counter.

Our ``Rollback`` notification therefore carries both values.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Iterable, List, Optional

from repro.core.config import HydEEConfig
from repro.core.phase import INITIAL_PHASE
from repro.core.recovery_process import (
    NOTIFY_SEND_LOG,
    NOTIFY_SEND_MSG,
    RecoveryOrchestrator,
)
from repro.core.state import HydEERankState
from repro.errors import ConfigurationError, ProtocolError
from repro.ftprotocols.base import ClusteredProtocolBase
from repro.simulator.engine import Condition
from repro.simulator.messages import Message
from repro.simulator.protocol_api import (
    RECOVERY_PROCESS,
    ControlMessage,
    SendDecision,
    add_metric,
)
from repro.simulator.stable_storage import CheckpointRecord

if TYPE_CHECKING:  # pragma: no cover
    from repro.simulator.simulation import Simulation


class HydEEProtocol(ClusteredProtocolBase):
    """The paper's hybrid rollback-recovery protocol."""

    name = "hydee"
    ff_send_hook = True

    def __init__(self, config: Optional[HydEEConfig] = None, **kwargs: Any) -> None:
        """Create the protocol.

        Either pass a fully built :class:`HydEEConfig`, or pass its fields as
        keyword arguments (``clusters=...``, ``checkpoint_interval=...``).
        """
        if config is None:
            config = HydEEConfig(**kwargs)
        elif kwargs:
            raise ConfigurationError("pass either a HydEEConfig or keyword arguments, not both")
        super().__init__(
            clusters=config.clusters,
            checkpoint_interval=config.checkpoint_interval,
            checkpoint_size_bytes=config.checkpoint_size_bytes,
        )
        self.config = config
        self.states: Dict[int, HydEERankState] = {}
        self.orchestrator: Optional[RecoveryOrchestrator] = None
        self.recovery_reports: List[Dict[str, Any]] = []
        #: (cluster, iteration, rank) -> {sender: max delivered date} pending
        #: garbage-collection acknowledgements (sent when the whole cluster's
        #: checkpoint is complete).
        self._pending_gc_acks: Dict[tuple, Dict[int, int]] = {}
        self._control_handlers: Optional[Dict[str, Any]] = None
        #: rank -> dest -> *phantom* logged bytes: payloads of messages
        #: skipped by a batched fast-forward epoch.  Their entries are never
        #: materialised (the epoch ends on a recovery line, so they can never
        #: be replayed), but their bytes must keep flowing through checkpoint
        #: sizes, memory usage and garbage-collection accounting so the
        #: counters stay identical to exact execution.
        self._ff_phantom_log: Dict[int, Dict[int, int]] = {}

    # ------------------------------------------------------------- lifecycle
    def attach(self, sim: "Simulation") -> None:
        super().attach(sim)
        if self.config.enforce_send_determinism and not getattr(
            sim.application, "send_deterministic", True
        ):
            raise ConfigurationError(
                "HydEE requires a send-deterministic application "
                f"({sim.application!r} declares send_deterministic=False); "
                "set enforce_send_determinism=False to override for experiments"
            )

    def _init_rank_state(self, rank: int) -> None:
        self.states[rank] = HydEERankState(rank=rank, cluster=self.cluster_of(rank))

    # ================================================================== sends
    def on_app_send(self, rank: int, message: Message) -> SendDecision:
        state = self.states[rank]
        recovery = state.recovery

        # Recovery gating: a process must not send its first message after a
        # failure until the recovery process notifies its phase (Algorithm 2
        # line 8, Algorithm 3 line 18).  The date and phase are nevertheless
        # assigned *now*, at the application's program-order send point, so
        # that re-executed sends keep the dates of the original execution.
        already_stamped = "date" in message.piggyback
        if not already_stamped:
            date, phase = state.clock.on_send()
            message.piggyback["date"] = date
            message.piggyback["phase"] = phase
            message.inter_cluster = self.is_inter_cluster(rank, message.dest)
        date = message.piggyback["date"]
        phase = message.piggyback["phase"]
        inter = bool(message.inter_cluster)

        if recovery is not None and not recovery.gate_open():
            if recovery.send_gate is None or recovery.send_gate.fired:
                recovery.send_gate = Condition(name=f"hydee-send-gate-{rank}")
            return SendDecision.defer(recovery.send_gate)

        # Orphan suppression (Algorithm 2 lines 13-15): a rolled back process
        # regenerating a message its receiver already delivered notifies the
        # recovery process instead of sending it again.
        if recovery is not None and recovery.rolled_back and inter:
            orphan_limit = recovery.orphan_date.get(message.dest, 0)
            if date <= orphan_limit:
                self.pstats.suppressed_orphans += 1
                self._send_control(
                    rank, RECOVERY_PROCESS, "orphan_notification", {"phase": phase}
                )
                return SendDecision.suppress()

        extra_cpu = 0.0

        # Piggyback the (date, phase) pair following the prototype's policy:
        # inline for small messages, separate control message above 1 KiB.
        extra_bytes, extra_latency = self.sim.network.piggyback_cost(
            message.size_bytes, self.config.piggyback_bytes, self.config.piggyback_policy
        )
        message.piggyback_bytes = extra_bytes
        extra_cpu += extra_latency
        self.pstats.piggyback_bytes += self.config.piggyback_bytes

        # Sender-based payload logging of inter-cluster messages (line 7-8 of
        # Algorithm 1).  ``log_all_messages`` is the "Message Logging"
        # configuration of Figure 6.
        if inter or self.config.log_all_messages:
            state.log.add(message.dest, date, phase, message)
            extra_cpu += self.sim.network.memcpy_time(message.size_bytes)
            self.pstats.logged_messages += 1
            self.pstats.logged_bytes += message.size_bytes
            self.sim.stats.logged_messages += 1
            self.sim.stats.logged_bytes += message.size_bytes

        return SendDecision.send(extra_cpu)

    # =============================================================== delivery
    def on_app_deliver(self, rank: int, message: Message) -> float:
        state = self.states[rank]
        phase_in = int(message.piggyback.get("phase", INITIAL_PHASE))
        date_in = int(message.piggyback.get("date", 0))
        if message.inter_cluster is None:
            message.inter_cluster = self.is_inter_cluster(message.source, rank)
        if message.inter_cluster:
            state.clock.on_deliver_inter(phase_in)
            state.rpp.observe(message.source, date_in, phase_in)
        else:
            state.clock.on_deliver_intra(phase_in)
        return 0.0

    # ============================================================ checkpoints
    def _checkpoint_payload(self, rank: int) -> Dict[str, Any]:
        payload = self.states[rank].checkpoint_payload()
        phantom = self._ff_phantom_log.get(rank)
        if phantom:
            payload["ff_phantom"] = dict(phantom)
        return payload

    def _restore_from_payload(self, rank: int, payload: Optional[Dict[str, Any]]) -> None:
        self.states[rank].restore(payload)
        # Phantom bytes present when the checkpoint was taken are part of the
        # checkpointed log volume (exact execution would have saved those
        # entries in the payload), so a restore resurrects them; they can
        # still never be replayed -- the receivers delivered them before the
        # coordinated checkpoint this rollback restores to.
        self._ff_phantom_log.pop(rank, None)
        if payload and payload.get("ff_phantom"):
            self._ff_phantom_log[rank] = dict(payload["ff_phantom"])

    def _extra_checkpoint_bytes(self, rank: int) -> int:
        extra = self.states[rank].log.current_bytes
        phantom = self._ff_phantom_log.get(rank)
        if phantom:
            extra += sum(phantom.values())
        return extra

    def _after_checkpoint(self, rank: int, record: CheckpointRecord) -> None:
        """Record the acknowledgement data for log garbage collection.

        The acknowledgements themselves are only sent once the *whole*
        cluster has completed this coordinated checkpoint (see
        :meth:`_on_cluster_checkpoint_complete`): until then a failure of a
        cluster peer could still force a rollback to an older checkpoint that
        needs the logged messages this checkpoint covers.
        """
        if not self.config.garbage_collect_logs:
            return
        state = self.states[rank]
        acks = {
            sender: channel.max_date
            for sender, channel in state.rpp.channels()
            if channel.max_date > 0
        }
        if acks:
            self._pending_gc_acks[(self.cluster_of(rank), record.iteration, rank)] = acks

    def _on_cluster_checkpoint_complete(self, cluster_id: int, iteration: int) -> None:
        """Log garbage collection (Section III-E).

        Once the cluster's coordinated checkpoint is durable, each member
        acknowledges to every inter-cluster sender the send-date of the last
        message it had delivered from it when it checkpointed; the sender
        reclaims the corresponding log entries, which can never be requested
        again (the receiver's cluster will never roll back past this
        checkpoint).
        """
        if not self.config.garbage_collect_logs:
            return
        for rank in self.members(cluster_id):
            acks = self._pending_gc_acks.pop((cluster_id, iteration, rank), {})
            for sender, up_to_date in acks.items():
                self._send_control(rank, sender, "gc_ack", {"up_to_date": up_to_date})

    # ============================================== batched fast-forward
    def ff_epoch_snapshot(self) -> Optional[Any]:
        """Fast-forward-relevant HydEE state, linear in steady iterations.

        Per rank: the (date, phase) clock, each incoming channel's
        ``Maxdate`` and the per-destination logged volume; globally, the
        protocol counters.  Batching requires log garbage collection (it is
        what makes the skipped epochs' log entries unobservable) and no
        recovery residue.
        """
        if not self.config.garbage_collect_logs:
            return None
        ranks = {}
        for rank, state in self.states.items():
            if state.in_recovery:
                return None
            per_dest: Dict[int, List[int]] = {}
            for entry in state.log.entries:
                bucket = per_dest.setdefault(entry.dest, [0, 0])
                bucket[0] += 1
                bucket[1] += entry.size_bytes
            ranks[rank] = (
                state.clock.date,
                state.clock.phase,
                {s: state.rpp.max_date(s) for s in state.rpp.senders()},
                {dest: tuple(v) for dest, v in per_dest.items()},
            )
        stats = self.sim.stats
        return (ranks, dict(self.pstats.as_dict()),
                (stats.logged_messages, stats.logged_bytes))

    def ff_epoch_delta(self, before: Any, after: Any) -> Optional[Any]:
        ranks_b, pstats_b, sim_b = before
        ranks_a, pstats_a, sim_a = after
        ranks: Dict[int, Any] = {}
        for rank, (date_a, phase_a, rpp_a, log_a) in ranks_a.items():
            date_b, phase_b, rpp_b, log_b = ranks_b[rank]
            d_date = date_a - date_b
            d_phase = phase_a - phase_b
            d_rpp = {
                s: rpp_a.get(s, 0) - rpp_b.get(s, 0)
                for s in sorted(set(rpp_a) | set(rpp_b))
            }
            d_log = {}
            for dest in sorted(set(log_a) | set(log_b)):
                count_a, bytes_a = log_a.get(dest, (0, 0))
                count_b, bytes_b = log_b.get(dest, (0, 0))
                d_log[dest] = (count_a - count_b, bytes_a - bytes_b)
            if (d_date < 0 or d_phase < 0
                    or any(d < 0 for d in d_rpp.values())
                    or any(c < 0 or by < 0 for c, by in d_log.values())):
                # A rollback or garbage collection ran between the probes.
                return None
            ranks[rank] = (d_date, d_phase, d_rpp, d_log)
        d_pstats = {k: pstats_a[k] - pstats_b[k] for k in pstats_a}
        if d_pstats.get("checkpoints") or d_pstats.get("rollbacks"):
            # Probe iterations must be boundary- and failure-free.
            return None
        d_sim = (sim_a[0] - sim_b[0], sim_a[1] - sim_b[1])
        return (ranks, d_pstats, d_sim)

    def ff_epoch_apply(self, delta: Any, n: int) -> None:
        ranks, d_pstats, d_sim = delta
        for rank, (d_date, d_phase, d_rpp, d_log) in ranks.items():
            state = self.states[rank]
            state.clock.date += n * d_date
            state.clock.phase += n * d_phase
            for sender, by in d_rpp.items():
                state.rpp.advance_max_date(sender, n * by)
            if d_log:
                phantom = self._ff_phantom_log.setdefault(rank, {})
                for dest, (_, nbytes) in d_log.items():
                    if nbytes:
                        phantom[dest] = phantom.get(dest, 0) + n * nbytes
        for key, value in d_pstats.items():
            if value:
                setattr(self.pstats, key, getattr(self.pstats, key) + n * value)
        stats = self.sim.stats
        stats.logged_messages += n * d_sim[0]
        stats.logged_bytes += n * d_sim[1]

    # ================================================================ failure
    def on_failure(self, failed_ranks: Iterable[int], time: float) -> None:
        failed = sorted(set(failed_ranks))
        if self.orchestrator is not None and not self.orchestrator.complete:
            raise ProtocolError(
                "HydEE reproduction: a failure occurred while a recovery session is still "
                "active; concurrent failures must be injected as a single simultaneous event"
            )

        affected_clusters = self.clusters_of_ranks(failed)
        rollback = self.rollback_clusters(affected_clusters)
        rolled = set(rollback.ranks)
        all_ranks = list(range(self.sim.nprocs))

        self.pstats.recoveries += 1
        self.orchestrator = RecoveryOrchestrator(
            expected_ranks=all_ranks,
            notify=self._recovery_notify,
            started_at=time,
            rolled_back_ranks=rolled,
            on_complete=self._on_recovery_complete,
        )

        # Initialise the per-rank recovery state (Algorithms 2 and 3).
        for rank in all_ranks:
            state = self.states[rank]
            recovery = state.begin_recovery(rolled_back=(rank in rolled))
            peers_rolled_back = rolled - set(self.members(self.cluster_of(rank)))
            recovery.awaiting_rollback_from = set(peers_rolled_back)
            if recovery.rolled_back:
                recovery.awaiting_lastdate_from = set(self.ranks_outside_cluster(rank))
            if not recovery.awaiting_rollback_from:
                self._finalize_reports(rank)

        # Rolled back processes announce their restart point (Algorithm 2,
        # lines 6-7).  See the module docstring for the content of the
        # notification.
        for rank in sorted(rolled):
            state = self.states[rank]
            for peer in self.ranks_outside_cluster(rank):
                self._send_control(
                    rank,
                    peer,
                    "rollback",
                    {
                        "restart_date": state.clock.date,
                        "last_delivered_from_you": state.rpp.max_date(peer),
                    },
                )

    # ------------------------------------------------------- control handling
    def _send_control(self, sender: int, dest: int, kind: str, data: Dict[str, Any]) -> None:
        self.sim.control.send(
            sender, dest, kind, data, size_bytes=self.config.control_message_bytes
        )

    def _dispatch_control(self, cm: ControlMessage) -> None:
        if cm.dest == RECOVERY_PROCESS:
            if self.orchestrator is None:
                raise ProtocolError(f"control message {cm.kind!r} but no recovery is active")
            self.orchestrator.handle(cm.kind, cm.sender, cm.data or {})
            return
        handlers = self._control_handlers
        if handlers is None:
            handlers = self._control_handlers = {
                "rollback": self._on_rollback_notification,
                "last_date": self._on_last_date,
                NOTIFY_SEND_LOG: self._on_notify_send_log,
                NOTIFY_SEND_MSG: self._on_notify_send_msg,
                "gc_ack": self._on_gc_ack,
            }
        handler = handlers.get(cm.kind)
        if handler is None:
            raise ProtocolError(f"HydEE: unknown control message kind {cm.kind!r}")
        handler(cm.dest, cm.sender, cm.data or {})

    def _on_rollback_notification(self, rank: int, from_rank: int, data: Dict[str, Any]) -> None:
        """Algorithm 3, lines 6-16 (also executed by rolled back processes for
        rolled back peers in *other* clusters, which is required to survive
        multiple concurrent failures)."""
        state = self.states[rank]
        recovery = state.recovery
        if recovery is None:
            raise ProtocolError(
                f"rank {rank} received a rollback notification outside a recovery session"
            )
        restart_date = int(data["restart_date"])
        last_delivered_from_me = int(data["last_delivered_from_you"])
        recovery.rollback_date[from_rank] = restart_date

        # Answer with the send-date of the last message delivered from the
        # rolled back process (Algorithm 3 line 9): it will use it to decide
        # which regenerated messages are orphans.
        self._send_control(
            rank, from_rank, "last_date", {"date": state.rpp.max_date(from_rank)}
        )

        # Logged messages to replay (Algorithm 3 lines 10-12).
        entries = state.log.entries_for(from_rank, after_date=last_delivered_from_me)
        recovery.resent_logs.extend(entries)
        recovery.pending_log_phases.update(e.phase for e in entries)

        # Orphan messages on this channel (Algorithm 3 lines 13-14).
        orphans = state.rpp.orphan_entries(from_rank, restart_date)
        recovery.orphan_phases.extend(phase for _date, phase in orphans)

        recovery.awaiting_rollback_from.discard(from_rank)
        if not recovery.awaiting_rollback_from and recovery.own_phase_reported is None:
            self._finalize_reports(rank)

    def _finalize_reports(self, rank: int) -> None:
        """Send the Log / Orphan / OwnPhase reports (Algorithm 3 lines 15-17,
        Algorithm 2 line 7)."""
        state = self.states[rank]
        recovery = state.recovery
        if recovery is None:  # pragma: no cover - defensive
            return
        recovery.own_phase_reported = state.clock.phase
        log_phases = sorted({entry.phase for entry in recovery.resent_logs})
        self._send_control(rank, RECOVERY_PROCESS, "log_report", {"phases": log_phases})
        self._send_control(
            rank, RECOVERY_PROCESS, "orphan_report", {"phases": list(recovery.orphan_phases)}
        )
        self._send_control(
            rank, RECOVERY_PROCESS, "own_phase", {"phase": state.clock.phase}
        )

    def _on_last_date(self, rank: int, from_rank: int, data: Dict[str, Any]) -> None:
        """Algorithm 2, lines 9-10."""
        state = self.states[rank]
        recovery = state.recovery
        if recovery is None:
            return
        recovery.orphan_date[from_rank] = int(data["date"])
        recovery.awaiting_lastdate_from.discard(from_rank)
        self._maybe_open_gate(rank)
        self._maybe_finish_rank_recovery(rank)

    def _on_notify_send_msg(self, rank: int, _from_rank: int, data: Dict[str, Any]) -> None:
        """Release of the first-send gate (Algorithm 2 line 8 / Algorithm 3 line 18)."""
        state = self.states[rank]
        recovery = state.recovery
        if recovery is None:
            return
        recovery.notify_send_received = True
        self._maybe_open_gate(rank)
        self._maybe_finish_rank_recovery(rank)

    def _maybe_open_gate(self, rank: int) -> None:
        recovery = self.states[rank].recovery
        if recovery is not None and recovery.gate_open() and recovery.send_gate is not None:
            recovery.send_gate.fire()

    def _on_notify_send_log(self, rank: int, _from_rank: int, data: Dict[str, Any]) -> None:
        """Replay the logged messages whose phase has been released
        (Algorithm 3, lines 22-24)."""
        state = self.states[rank]
        recovery = state.recovery
        if recovery is None:
            return
        released_phase = int(data["phase"])
        to_replay = [e for e in recovery.resent_logs if e.phase <= released_phase]
        recovery.resent_logs = [e for e in recovery.resent_logs if e.phase > released_phase]
        recovery.pending_log_phases = {
            p for p in recovery.pending_log_phases if p > released_phase
        }
        for entry in sorted(to_replay, key=lambda e: (e.dest, e.date)):
            self.sim.replay_message(entry.message)
            self.pstats.replayed_messages += 1
        self._maybe_finish_rank_recovery(rank)

    def _on_gc_ack(self, rank: int, from_rank: int, data: Dict[str, Any]) -> None:
        """Reclaim acknowledged log entries (Section III-E)."""
        state = self.states[rank]
        freed = state.log.purge_acknowledged(from_rank, int(data["up_to_date"]))
        # Phantom bytes of a batched epoch lie entirely below the recovery
        # line the acknowledgement covers, so the ack reclaims them whole.
        phantom = self._ff_phantom_log.get(rank)
        if phantom:
            freed += phantom.pop(from_rank, 0)
        self.pstats.gc_reclaimed_bytes += freed

    # ---------------------------------------------------- recovery completion
    def _recovery_notify(self, kind: str, rank: int, phase: int) -> None:
        self._send_control(RECOVERY_PROCESS, rank, kind, {"phase": phase})

    def _maybe_finish_rank_recovery(self, rank: int) -> None:
        """Discard a rank's recovery state once it has no pending obligation.

        The recovery process completing (all orphans regenerated, every
        notification issued) is not enough for an individual rank: its
        ``NotifySendMsg`` / ``NotifySendLog`` control messages may still be in
        flight, and clearing the state early would leave deferred sends
        parked on a gate that nobody will fire.  A rank switches back to the
        failure-free functions (Algorithm 2 lines 21-22) when the session is
        complete *and* it has processed its own notifications.
        """
        if self.orchestrator is None or not self.orchestrator.complete:
            return
        state = self.states[rank]
        recovery = state.recovery
        if recovery is None:
            return
        if not recovery.notify_send_received:
            return
        if recovery.resent_logs or recovery.pending_log_phases:
            return
        if recovery.rolled_back and recovery.awaiting_lastdate_from:
            return
        if recovery.send_gate is not None and not recovery.send_gate.fired:
            recovery.send_gate.fire()
        state.end_recovery()

    def _on_recovery_complete(self, orchestrator: RecoveryOrchestrator) -> None:
        now = self.sim.engine.now
        orchestrator.report.completed_at = now
        self.sim.stats.recovery_time += now - orchestrator.report.started_at
        self.recovery_reports.append(
            {
                "started_at": orchestrator.report.started_at,
                "completed_at": now,
                "rolled_back_ranks": list(orchestrator.report.rolled_back_ranks),
                "orphan_messages": orchestrator.report.orphan_messages,
                "notifications_sent": orchestrator.report.notifications_sent,
            }
        )
        # Ranks whose notifications have already been processed can switch
        # back to the failure-free functions now; the others will do so when
        # their in-flight NotifySendMsg / NotifySendLog arrive.
        for rank in self.states:
            self._maybe_finish_rank_recovery(rank)

    # ------------------------------------------------------------ inspection
    def recovery_in_progress(self) -> bool:
        return self.orchestrator is not None and not self.orchestrator.complete

    def memory_usage_bytes(self) -> Dict[int, int]:
        return {
            rank: state.log_memory_bytes()
            + sum(self._ff_phantom_log.get(rank, {}).values())
            for rank, state in self.states.items()
        }

    def schedule_fingerprint(self) -> Dict[str, Any]:
        """Durable Algorithm 1 state per rank + completed recovery sessions.

        Everything here is content the paper's correctness argument makes
        interleaving-invariant for send-deterministic applications: the
        phase clocks, the RPP tables, the sender-based logs (hashed without
        engine message ids) and the normalized recovery reports.
        """
        info = super().schedule_fingerprint()
        info["rank_state"] = {
            rank: {
                "clock": state.clock.snapshot(),
                "rpp": state.rpp.snapshot(),
                "log": state.log.snapshot(),
                "in_recovery": state.in_recovery,
            }
            for rank, state in self.states.items()
        }
        # Only the structural half of each session: who rolled back.  The
        # chatter counts (orphans found, notifications sent, entries
        # replayed) meter how far doomed work got before the rollback
        # landed, which an equal-time tie-break legitimately decides.
        info["recovery_reports"] = [
            {"rolled_back_ranks": sorted(report["rolled_back_ranks"])}
            for report in self.recovery_reports
        ]
        return info

    def phase_of(self, rank: int) -> int:
        return self.states[rank].clock.phase

    def date_of(self, rank: int) -> int:
        return self.states[rank].clock.date

    def extra_metrics(self) -> Dict[str, Any]:
        info = super().extra_metrics()
        add_metric(info, "log_all_messages", self.config.log_all_messages)
        add_metric(info, "piggyback_policy", self.config.piggyback_policy.value)
        # Not "piggyback_bytes": that name is the ProtocolStatistics traffic
        # counter; this is the configured per-message piggyback size.
        add_metric(info, "configured_piggyback_bytes", self.config.piggyback_bytes)
        add_metric(info, "log_memory_bytes", sum(self.memory_usage_bytes().values()))
        # Not "recoveries": that name belongs to the ProtocolStatistics
        # counter, which the old pstats_ prefix used to hide the collision.
        add_metric(info, "recovery_reports", len(self.recovery_reports))
        return info
