"""Configuration of the HydEE protocol."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.errors import ConfigurationError
from repro.simulator.network import PiggybackPolicy


@dataclass
class HydEEConfig:
    """Parameters of :class:`repro.core.protocol.HydEEProtocol`.

    Attributes
    ----------
    clusters:
        Partition of the ranks into clusters (list of rank lists).  ``None``
        puts every rank in a single cluster, which degenerates to coordinated
        checkpointing with no logging at all; use
        :mod:`repro.clustering` to compute a good partition from the
        application's communication graph as the paper does with [28].
    checkpoint_interval:
        Take a coordinated cluster checkpoint every N application iterations
        (``None`` disables checkpointing -- useful for pure failure-free
        overhead measurements such as Figures 5 and 6).
    piggyback_policy:
        How the (date, phase) pair is attached to application messages.  The
        paper's prototype inlines it for messages < 1 KiB and ships it as a
        separate message above that threshold (Section V-A).
    piggyback_bytes:
        Wire size of the piggybacked protocol data.  The prototype sends the
        date and the phase (two integers) plus framing; 12 bytes by default.
    log_all_messages:
        Log every message payload regardless of clusters.  This is the
        "Message Logging" configuration of Figure 6 used to show the benefit
        of partial logging; failure containment semantics are unchanged.
    garbage_collect_logs:
        Run the acknowledgement-based log garbage collection of Section III-E
        after each coordinated checkpoint.
    checkpoint_size_bytes:
        Simulated size of one process image (excluding logs).
    restart_delay_s:
        Extra delay charged to a rank when it restarts from a checkpoint.
    """

    clusters: Optional[Sequence[Sequence[int]]] = None
    checkpoint_interval: Optional[int] = None
    piggyback_policy: PiggybackPolicy = PiggybackPolicy.INLINE_SMALL_SEPARATE_LARGE
    piggyback_bytes: int = 12
    log_all_messages: bool = False
    garbage_collect_logs: bool = True
    checkpoint_size_bytes: int = 16 * 1024 * 1024
    restart_delay_s: float = 1.0e-3
    #: size of each recovery control message on the wire (accounting only).
    control_message_bytes: int = 32
    #: raise if the application declares itself non-send-deterministic.
    enforce_send_determinism: bool = True

    def __post_init__(self) -> None:
        if self.piggyback_bytes < 0:
            raise ConfigurationError("piggyback_bytes must be >= 0")
        if self.checkpoint_interval is not None and self.checkpoint_interval < 1:
            raise ConfigurationError("checkpoint_interval must be >= 1 or None")
        if self.checkpoint_size_bytes < 0:
            raise ConfigurationError("checkpoint_size_bytes must be >= 0")

    def with_clusters(self, clusters: Sequence[Sequence[int]]) -> "HydEEConfig":
        """Return a copy of this configuration with a different clustering."""
        return HydEEConfig(
            clusters=[list(c) for c in clusters],
            checkpoint_interval=self.checkpoint_interval,
            piggyback_policy=self.piggyback_policy,
            piggyback_bytes=self.piggyback_bytes,
            log_all_messages=self.log_all_messages,
            garbage_collect_logs=self.garbage_collect_logs,
            checkpoint_size_bytes=self.checkpoint_size_bytes,
            restart_delay_s=self.restart_delay_s,
            control_message_bytes=self.control_message_bytes,
            enforce_send_determinism=self.enforce_send_determinism,
        )
