"""The recovery process (Algorithm 4 of the paper).

When a failure occurs, an additional process is launched to orchestrate the
replay of messages according to phase numbers.  It collects three kinds of
reports from every application process:

* ``Log``      -- the phases of the logged messages the process will replay,
* ``Orphan``   -- the phase of every orphan message the process has delivered
  whose (rolled back) sender has not re-sent yet,
* ``OwnPhase`` -- the phase the process is currently in (for rolled back
  processes, the phase restored from the checkpoint).

It then releases work phase by phase: logged messages of phase ``p`` may be
replayed, and a process in phase ``p`` may send its first message, only when
no orphan message of a phase strictly lower than ``p`` remains outstanding.
Each time a rolled back process regenerates an orphan message it notifies the
recovery process instead of sending the message (the receiver already has
it); when the count of outstanding orphans of some phase drops to zero, the
next phases are released (lines 12-24 of Algorithm 4).

The orchestrator is deliberately written as a passive state machine: the
protocol delivers control messages to :meth:`RecoveryOrchestrator.handle` and
forwards the notifications returned by the internal release step through a
callback, so the message exchanges remain visible to the control-plane
accounting.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Optional, Set, Tuple

from repro.errors import ProtocolError


#: Notification kinds produced by the orchestrator.
NOTIFY_SEND_LOG = "notify_send_log"
NOTIFY_SEND_MSG = "notify_send_msg"


@dataclass
class RecoveryReport:
    """Summary of a finished recovery session (used by experiments)."""

    started_at: float
    completed_at: Optional[float] = None
    rolled_back_ranks: Tuple[int, ...] = ()
    orphan_messages: int = 0
    replay_phases: int = 0
    notifications_sent: int = 0

    @property
    def duration(self) -> Optional[float]:
        if self.completed_at is None:
            return None
        return self.completed_at - self.started_at


class RecoveryOrchestrator:
    """State machine implementing Algorithm 4."""

    def __init__(
        self,
        expected_ranks: Iterable[int],
        notify: Callable[[str, int, int], None],
        started_at: float = 0.0,
        rolled_back_ranks: Iterable[int] = (),
        on_complete: Optional[Callable[["RecoveryOrchestrator"], None]] = None,
    ) -> None:
        self.expected_ranks: Set[int] = set(expected_ranks)
        self._notify = notify
        self._on_complete = on_complete

        #: NbOrphanPhase[phase]: outstanding orphan messages in that phase.
        self.orphans_per_phase: Counter = Counter()
        #: ProcessPhase[phase]: ranks whose first send is gated on that phase.
        self.process_phase: Dict[int, Set[int]] = {}
        #: MsgLogPhase[phase]: ranks holding logged messages of that phase.
        self.log_phase: Dict[int, Set[int]] = {}

        self._log_reports: Set[int] = set()
        self._orphan_reports: Set[int] = set()
        self._phase_reports: Set[int] = set()
        self._started_notifications = False
        self._completed = False

        self.report = RecoveryReport(
            started_at=started_at, rolled_back_ranks=tuple(sorted(rolled_back_ranks))
        )

    # ------------------------------------------------------------------ input
    def handle(self, kind: str, sender: int, data: Dict) -> None:
        """Process one control message addressed to the recovery process."""
        if self._completed:
            raise ProtocolError(
                f"recovery process received {kind!r} from rank {sender} after completion"
            )
        if kind == "log_report":
            self._handle_log(sender, data.get("phases", []))
        elif kind == "orphan_report":
            self._handle_orphan(sender, data.get("phases", []))
        elif kind == "own_phase":
            self._handle_own_phase(sender, data["phase"])
        elif kind == "orphan_notification":
            self._handle_orphan_notification(sender, data["phase"])
        else:
            raise ProtocolError(f"recovery process: unknown control message kind {kind!r}")

    def _handle_log(self, sender: int, phases: Iterable[int]) -> None:
        self._log_reports.add(sender)
        for phase in phases:
            self.log_phase.setdefault(int(phase), set()).add(sender)
        self._maybe_start()

    def _handle_orphan(self, sender: int, phases: Iterable[int]) -> None:
        self._orphan_reports.add(sender)
        for phase in phases:
            self.orphans_per_phase[int(phase)] += 1
            self.report.orphan_messages += 1
        self._maybe_start()

    def _handle_own_phase(self, sender: int, phase: int) -> None:
        self._phase_reports.add(sender)
        self.process_phase.setdefault(int(phase), set()).add(sender)
        self._maybe_start()

    def _handle_orphan_notification(self, sender: int, phase: int) -> None:
        phase = int(phase)
        if self.orphans_per_phase.get(phase, 0) <= 0:
            raise ProtocolError(
                f"recovery process: orphan notification for phase {phase} from rank {sender} "
                "but no outstanding orphan is recorded for that phase (dates/phases diverged "
                "between the original execution and the re-execution)"
            )
        self.orphans_per_phase[phase] -= 1
        if self.orphans_per_phase[phase] == 0:
            del self.orphans_per_phase[phase]
            if self._started_notifications:
                self._release_phases()
        self._check_completion()

    # --------------------------------------------------------------- releases
    def all_reports_received(self) -> bool:
        return (
            self._log_reports >= self.expected_ranks
            and self._orphan_reports >= self.expected_ranks
            and self._phase_reports >= self.expected_ranks
        )

    def _maybe_start(self) -> None:
        if self._started_notifications or not self.all_reports_received():
            return
        self._started_notifications = True
        self._release_phases()
        self._check_completion()

    def _min_blocking_phase(self) -> Optional[int]:
        """Smallest phase that still has outstanding orphans (None if none)."""
        if not self.orphans_per_phase:
            return None
        return min(self.orphans_per_phase)

    def _release_phases(self) -> None:
        """Send every notification whose phase has no lower outstanding orphan.

        Mirrors the two loops of ``NotifyPhase`` (Algorithm 4 lines 16-24):
        a phase ``p`` is releasable iff there is no phase ``p' < p`` with
        outstanding orphan messages.
        """
        blocking = self._min_blocking_phase()

        def releasable(phase: int) -> bool:
            return blocking is None or phase <= blocking

        for phase in sorted(self.log_phase):
            if not releasable(phase):
                break
            for rank in sorted(self.log_phase[phase]):
                self._notify(NOTIFY_SEND_LOG, rank, phase)
                self.report.notifications_sent += 1
            self.report.replay_phases += 1
            del self.log_phase[phase]

        for phase in sorted(self.process_phase):
            if not releasable(phase):
                break
            for rank in sorted(self.process_phase[phase]):
                self._notify(NOTIFY_SEND_MSG, rank, phase)
                self.report.notifications_sent += 1
            del self.process_phase[phase]

    # ------------------------------------------------------------- completion
    @property
    def complete(self) -> bool:
        return self._completed

    def _check_completion(self) -> None:
        if self._completed or not self._started_notifications:
            return
        if self.orphans_per_phase or self.process_phase or self.log_phase:
            return
        self._completed = True
        if self._on_complete is not None:
            self._on_complete(self)

    # ------------------------------------------------------------------ debug
    def pending_summary(self) -> Dict[str, object]:
        return {
            "started": self._started_notifications,
            "complete": self._completed,
            "outstanding_orphans": dict(self.orphans_per_phase),
            "ungated_process_phases": {p: sorted(r) for p, r in self.process_phase.items()},
            "unreleased_log_phases": {p: sorted(r) for p, r in self.log_phase.items()},
            "missing_reports": sorted(
                self.expected_ranks
                - (self._log_reports & self._orphan_reports & self._phase_reports)
            ),
        }
