"""Per-rank HydEE protocol state.

Bundles the failure-free state of Algorithm 1 (clock, RPP table, sender log)
with the transient recovery state of Algorithms 2 and 3 (orphan dates,
rollback dates, resend lists, send gates).  The failure-free part is what
gets embedded in checkpoints; the recovery part only exists while a recovery
session is active.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set

from repro.core.message_log import LogEntry, SenderLog
from repro.core.phase import PhaseClock
from repro.core.rpp import RPPTable
from repro.simulator.engine import Condition


@dataclass
class RecoveryRankState:
    """Transient per-rank state used while a recovery session is active."""

    #: True when this rank is part of a rolled back cluster.
    rolled_back: bool = False
    #: Rolled-back peers (outside this rank's own cluster) whose Rollback
    #: notification has not been processed yet.
    awaiting_rollback_from: Set[int] = field(default_factory=set)
    #: Rolled-back rank only: peers outside the cluster whose LastDate answer
    #: is still missing (Algorithm 2, line 8).
    awaiting_lastdate_from: Set[int] = field(default_factory=set)
    #: OrphanDate[j]: send-date of the last message from *this* rank that
    #: rank ``j`` delivered before the failure (Algorithm 2, lines 9-10).
    orphan_date: Dict[int, int] = field(default_factory=dict)
    #: RollbackDate[j]: restart date of rolled back rank ``j`` (Algorithm 3,
    #: lines 20-21), used to compute orphan phases from the RPP table.
    rollback_date: Dict[int, int] = field(default_factory=dict)
    #: Logged messages that must be replayed, grouped for notification.
    resent_logs: List[LogEntry] = field(default_factory=list)
    #: Phases of entries in ``resent_logs`` not yet released.
    pending_log_phases: Set[int] = field(default_factory=set)
    #: Phases of orphan messages this rank reported to the recovery process.
    orphan_phases: List[int] = field(default_factory=list)
    #: Gate blocking this rank's application sends until the recovery process
    #: sends NotifySendMsg (and, for rolled back ranks, until every LastDate
    #: answer arrived).  ``None`` means the rank is not gated.
    send_gate: Optional[Condition] = None
    #: Set once NotifySendMsg for this rank's phase has been received.
    notify_send_received: bool = False
    #: Phase this rank reported to the recovery process (OwnPhase).
    own_phase_reported: Optional[int] = None

    def gate_open(self) -> bool:
        """The rank may send application messages again."""
        if not self.notify_send_received:
            return False
        if self.rolled_back and self.awaiting_lastdate_from:
            return False
        return True


@dataclass
class HydEERankState:
    """Durable per-rank protocol state (Algorithm 1 local variables)."""

    rank: int
    cluster: int
    clock: PhaseClock = field(default_factory=PhaseClock)
    rpp: RPPTable = field(default_factory=RPPTable)
    log: SenderLog = field(default_factory=SenderLog)
    recovery: Optional[RecoveryRankState] = None

    # ------------------------------------------------------------ checkpoints
    def checkpoint_payload(self) -> Dict[str, Any]:
        """State saved with a checkpoint (Algorithm 1 line 21)."""
        return {
            "clock": self.clock.snapshot(),
            "rpp": self.rpp.snapshot(),
            "log": self.log.snapshot(),
        }

    def restore(self, payload: Optional[Dict[str, Any]]) -> None:
        """Restore from a checkpoint payload; ``None`` resets to initial state."""
        if payload is None:
            self.clock = PhaseClock()
            self.rpp = RPPTable()
            self.log = SenderLog()
        else:
            self.clock = PhaseClock.from_snapshot(payload["clock"])
            self.rpp = RPPTable.from_snapshot(payload["rpp"])
            self.log = SenderLog.from_snapshot(payload["log"])
        self.recovery = None

    # -------------------------------------------------------------- recovery
    def begin_recovery(self, rolled_back: bool) -> RecoveryRankState:
        self.recovery = RecoveryRankState(rolled_back=rolled_back)
        return self.recovery

    def end_recovery(self) -> None:
        self.recovery = None

    @property
    def in_recovery(self) -> bool:
        return self.recovery is not None

    def log_memory_bytes(self) -> int:
        return self.log.current_bytes
