"""Logical date and phase bookkeeping (Algorithm 1 of the paper).

Every process maintains

* a **date**: a counter incremented at every application-level send and
  delivery event (lines 6 and 17 of Algorithm 1); dates uniquely identify the
  send and receive events of a process and are used during recovery to decide
  which logged messages must be replayed and which regenerated messages are
  orphans;
* a **phase**: an integer such that the phase of a message is strictly
  greater than the phase of every *inter-cluster* message it causally depends
  on (Lemmas 1 and 3).  Phases are updated at delivery time: receiving an
  intra-cluster message takes the max of the two phases (line 16), receiving
  an inter-cluster message takes the max of the current phase and the
  message's phase **plus one** (line 12).

The phase attached to a message is the sender's phase *at send time*; the
date attached is the sender's date *after* incrementing for the send.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


#: Initial phase of every process (Figure 4 of the paper starts phases at 1).
INITIAL_PHASE = 1


@dataclass
class PhaseClock:
    """Per-process (date, phase) pair with the update rules of Algorithm 1."""

    date: int = 0
    phase: int = INITIAL_PHASE

    # ------------------------------------------------------------------ sends
    def on_send(self) -> tuple[int, int]:
        """Advance the date for a send event; return ``(date, phase)`` to attach."""
        self.date += 1
        return self.date, self.phase

    # --------------------------------------------------------------- receives
    def on_deliver_intra(self, message_phase: int) -> int:
        """Delivery of an intra-cluster message (line 16); returns the new date."""
        self.phase = max(self.phase, message_phase)
        self.date += 1
        return self.date

    def on_deliver_inter(self, message_phase: int) -> int:
        """Delivery of an inter-cluster message (lines 12-14); returns the new date."""
        self.phase = max(self.phase, message_phase + 1)
        self.date += 1
        return self.date

    # ------------------------------------------------------------ checkpoints
    def snapshot(self) -> Dict[str, int]:
        return {"date": self.date, "phase": self.phase}

    @classmethod
    def from_snapshot(cls, snapshot: Dict[str, int]) -> "PhaseClock":
        return cls(date=int(snapshot["date"]), phase=int(snapshot["phase"]))

    def reset(self) -> None:
        self.date = 0
        self.phase = INITIAL_PHASE
