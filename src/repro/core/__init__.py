"""HydEE: the paper's hybrid rollback-recovery protocol.

The protocol combines coordinated checkpointing inside process clusters with
sender-based logging of inter-cluster message payloads, and uses logical
*dates* and *phases* instead of event logging to order message replay after a
failure (Algorithms 1-4 of the paper).

Public entry points:

* :class:`repro.core.config.HydEEConfig` -- protocol configuration
  (clustering, checkpoint interval, piggyback policy);
* :class:`repro.core.protocol.HydEEProtocol` -- the protocol object to pass
  to :class:`repro.simulator.Simulation`;
* :mod:`repro.core.invariants` -- executable versions of the paper's lemmas
  and theorems, used by the test-suite and the recovery experiments.
"""

from repro.core.config import HydEEConfig
from repro.core.phase import PhaseClock
from repro.core.rpp import RPPTable
from repro.core.message_log import LogEntry, SenderLog
from repro.core.state import HydEERankState
from repro.core.recovery_process import RecoveryOrchestrator
from repro.core.protocol import HydEEProtocol

__all__ = [
    "HydEEConfig",
    "PhaseClock",
    "RPPTable",
    "LogEntry",
    "SenderLog",
    "HydEERankState",
    "RecoveryOrchestrator",
    "HydEEProtocol",
]
