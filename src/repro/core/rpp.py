"""RPP -- the *Received Per Phase* table (Algorithm 1, lines 13-14).

Each process keeps, for every incoming inter-cluster channel, the send-date of
the last message it delivered (``Maxdate``) and the phase of every delivered
message indexed by its send-date.  The table has three uses in the paper:

* after a failure, a non-rolled-back process determines the **orphan
  messages** on a channel from a rolled back process ``q``: the entries whose
  send-date is greater than ``q``'s restart date (Algorithm 3, lines 13-14);
* the process answers the rolled back sender with ``LastDate`` --- the
  send-date of the last message it delivered from it (Algorithm 3, line 9),
  which the sender uses to suppress orphan re-sends (Algorithm 2, line 14);
* ``Maxdate`` as stored in the *receiver's checkpoint* tells senders which
  logged messages the restored receiver already has, i.e. which log entries
  must be replayed (Algorithm 3, line 10; see the module documentation of
  :mod:`repro.core.protocol` for the clarification of the paper's pseudo-code
  on this point).

The table is part of the checkpoint (Algorithm 1, line 21).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple


@dataclass
class ChannelRecord:
    """Reception history of one incoming channel."""

    max_date: int = 0
    #: send-date -> phase of the delivered message.
    phases: Dict[int, int] = field(default_factory=dict)

    def observe(self, send_date: int, phase: int) -> None:
        self.max_date = max(self.max_date, send_date)
        self.phases[send_date] = phase

    def entries_after(self, date: int) -> List[Tuple[int, int]]:
        """(send_date, phase) of delivered messages with send_date > date."""
        return sorted((d, p) for d, p in self.phases.items() if d > date)

    def prune_up_to(self, date: int) -> int:
        """Drop entries with send_date <= date (garbage collection); return count."""
        stale = [d for d in self.phases if d <= date]
        for d in stale:
            del self.phases[d]
        return len(stale)


class RPPTable:
    """Received-Per-Phase table covering every incoming channel of a process."""

    def __init__(self) -> None:
        self._channels: Dict[int, ChannelRecord] = {}

    # ------------------------------------------------------------------ write
    def observe(self, sender: int, send_date: int, phase: int) -> None:
        self._channels.setdefault(sender, ChannelRecord()).observe(send_date, phase)

    def advance_max_date(self, sender: int, by: int) -> None:
        """Bulk-advance ``Maxdate`` of a channel without per-date entries.

        Used by the hybrid fast path for deliveries inside a batched
        failure-free epoch: their send-dates can never exceed a rolled-back
        sender's restart date (the epoch ends on the recovery line), so only
        ``Maxdate`` -- which drives log replay filtering and garbage
        collection -- needs to move; the per-date phase entries would be
        dead weight in every later orphan scan.
        """
        if by <= 0:
            return
        self._channels.setdefault(sender, ChannelRecord()).max_date += by

    # ------------------------------------------------------------------- read
    def channel(self, sender: int) -> ChannelRecord:
        return self._channels.setdefault(sender, ChannelRecord())

    def max_date(self, sender: int) -> int:
        record = self._channels.get(sender)
        return record.max_date if record else 0

    def orphan_entries(self, sender: int, sender_restart_date: int) -> List[Tuple[int, int]]:
        """Delivered messages from ``sender`` that its restored state has not sent.

        These are the orphan messages of the channel (Algorithm 3 lines
        13-14): entries whose send-date exceeds the sender's restart date.
        """
        record = self._channels.get(sender)
        if record is None:
            return []
        return record.entries_after(sender_restart_date)

    def senders(self) -> Iterable[int]:
        return self._channels.keys()

    def channels(self) -> Iterable[Tuple[int, ChannelRecord]]:
        """(sender, record) view over the incoming channels."""
        return self._channels.items()

    def entry_count(self) -> int:
        return sum(len(c.phases) for c in self._channels.values())

    # ----------------------------------------------------- garbage collection
    def prune_channel(self, sender: int, up_to_date: int) -> int:
        record = self._channels.get(sender)
        if record is None:
            return 0
        return record.prune_up_to(up_to_date)

    # ------------------------------------------------------------ checkpoints
    def snapshot(self) -> Dict[int, Dict[str, object]]:
        return {
            sender: {"max_date": rec.max_date, "phases": dict(rec.phases)}
            for sender, rec in self._channels.items()
        }

    @classmethod
    def from_snapshot(cls, snapshot: Optional[Dict[int, Dict[str, object]]]) -> "RPPTable":
        table = cls()
        if snapshot:
            for sender, data in snapshot.items():
                record = ChannelRecord(max_date=int(data["max_date"]))
                record.phases = {int(d): int(p) for d, p in dict(data["phases"]).items()}
                table._channels[int(sender)] = record
        return table
