"""RL04 -- locked-write discipline.

Campaign stores, calibration caches and archived failure traces are shared
between worker processes; a bare ``open(path, "w")`` there can interleave
with a concurrent reader or writer and corrupt the store (which then shows
up as a baffling byte-identity diff).  All persistent writes in guarded
modules must go through :mod:`repro.fslock` (``exclusive_lock`` +
``atomic_write_json``), which holds an flock and publishes via
``os.replace`` of a same-directory temp file.
"""

from __future__ import annotations

import ast
from typing import List, Optional

from repro.lint.config import module_is_guarded_write
from repro.lint.context import ModuleContext
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register
from repro.lint.rules.common import call_keyword, string_value

_WRITE_MODE_CHARS = set("wax+")

_REPLACE_CALLS = frozenset({"os.replace", "os.rename", "shutil.move"})

_PATH_WRITE_METHODS = frozenset({"write_text", "write_bytes"})


def _open_mode(call: ast.Call) -> Optional[str]:
    mode = call_keyword(call, "mode")
    if mode is None and len(call.args) >= 2:
        mode = call.args[1]
    return string_value(mode) if mode is not None else "r"


@register
class LockedWriteRule(Rule):
    id = "RL04"
    name = "locked-write-discipline"
    invariant = (
        "writes under campaign/, simulator/calibration.py and faults/trace.py "
        "go through the fslock atomic-replace helper, never bare open('w') / "
        "os.replace"
    )
    rationale = (
        "store and cache files are shared across worker processes; unlocked "
        "in-place writes can interleave and corrupt replayable state"
    )

    def check_module(self, ctx: ModuleContext) -> List[Finding]:
        if not module_is_guarded_write(ctx.module):
            return []
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            fn = node.func
            if isinstance(fn, ast.Name) and fn.id == "open" and fn.id not in ctx.imports:
                mode = _open_mode(node)
                if mode is None or any(ch in _WRITE_MODE_CHARS for ch in mode):
                    findings.append(
                        self.finding(
                            ctx,
                            node.lineno,
                            node.col_offset,
                            "bare open() with a write mode in a guarded module; "
                            "use fslock.atomic_write_json / exclusive_lock",
                        )
                    )
            elif isinstance(fn, ast.Attribute):
                resolved = ctx.resolve(fn)
                if resolved in _REPLACE_CALLS:
                    findings.append(
                        self.finding(
                            ctx,
                            node.lineno,
                            node.col_offset,
                            f"`{resolved}` in a guarded module bypasses the "
                            "fslock helper; publish via "
                            "fslock.atomic_write_json instead",
                        )
                    )
                elif fn.attr in _PATH_WRITE_METHODS:
                    findings.append(
                        self.finding(
                            ctx,
                            node.lineno,
                            node.col_offset,
                            f".{fn.attr}() in a guarded module bypasses the "
                            "fslock helper; use fslock.atomic_write_json",
                        )
                    )
        return findings
