"""RL02 -- wall-clock and other nondeterminism sources.

Simulated time is the only clock the reproduction is allowed to read:
``time.time`` / ``datetime.now`` / ``uuid`` / ``os.urandom`` all vary run
to run, so any value derived from them that reaches a record, trace, hash
or metric breaks byte identity.  ``id()`` is flagged only where its result
flows into hashes or rendered output (identity *comparison* via sets is a
legitimate, run-local use).
"""

from __future__ import annotations

import ast
from typing import List

from repro.lint.context import ModuleContext
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register
from repro.lint.rules.common import chain_root, name_chains

_BANNED = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
        "os.urandom",
        "os.getrandom",
    }
)

_BANNED_PREFIXES = ("uuid.", "secrets.")

#: consumers that turn ``id()`` into persistent/rendered output
_ID_SINKS = frozenset({"hash", "str", "repr", "hex", "format"})


@register
class WallClockRule(Rule):
    id = "RL02"
    name = "wall-clock-sources"
    invariant = (
        "no wall-clock reads (time.time, datetime.now, ...), uuid/secrets/"
        "os.urandom, or id() flowing into hashes or output inside src/repro"
    )
    rationale = (
        "values that differ run to run poison every downstream record, "
        "trace and spec hash; simulated time is the only permitted clock"
    )

    def check_module(self, ctx: ModuleContext) -> List[Finding]:
        findings: List[Finding] = []
        for node, resolved in name_chains(ctx):
            root = chain_root(node)
            if root not in ctx.imports:
                continue
            if resolved in _BANNED or resolved.startswith(_BANNED_PREFIXES):
                findings.append(
                    self.finding(
                        ctx,
                        node.lineno,
                        node.col_offset,
                        f"`{resolved}` is a per-run nondeterminism source; "
                        "derive the value from the scenario spec or simulated "
                        "clock instead",
                    )
                )
        findings.extend(self._id_sinks(ctx))
        return findings

    def _id_sinks(self, ctx: ModuleContext) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "id"
                and "id" not in ctx.imports
            ):
                continue
            parent = ctx.parent(node)
            flagged = False
            if isinstance(parent, ast.FormattedValue):
                flagged = True
            elif isinstance(parent, ast.Call):
                fn = parent.func
                if isinstance(fn, ast.Name) and fn.id in _ID_SINKS:
                    flagged = True
                elif isinstance(fn, ast.Attribute) and fn.attr in (
                    "update",
                    "hexdigest",
                    "format",
                    "write",
                ):
                    flagged = True
            elif isinstance(parent, ast.BinOp):
                flagged = True  # string building / arithmetic on addresses
            if flagged:
                findings.append(
                    self.finding(
                        ctx,
                        node.lineno,
                        node.col_offset,
                        "id() is an allocator address and varies run to run; "
                        "never feed it into hashes, strings, or records "
                        "(identity comparison via sets is fine)",
                    )
                )
        return findings
