"""RL05 -- frozen-spec shape.

``*Spec`` classes are the hashed experiment identity: ``spec_hash`` feeds
store layout, RNG derivation and the pinned-hash regression file.  Two
shape bugs silently corrupt that identity: a mutable spec (field mutated
after hashing), and a constructor field missing from a hand-written
``to_dict``/``from_dict`` pair (the field survives in memory but drops out
of the hash and the store round-trip).  The rule requires every ``*Spec``
class to be a ``@dataclass(frozen=True)`` and every declared field to be
covered by the serialisation pair.  ``dataclasses.asdict``-based
``to_dict`` and ``cls(**data)``-style ``from_dict`` are complete by
construction and pass automatically.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Set

from repro.lint.context import ModuleContext
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register


def _dataclass_frozen(ctx: ModuleContext, cls: ast.ClassDef) -> Optional[bool]:
    """None if not a dataclass; else whether frozen=True."""
    for dec in cls.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        resolved = ctx.resolve(target)
        if resolved in ("dataclasses.dataclass", "dataclass"):
            if not isinstance(dec, ast.Call):
                return False
            for kw in dec.keywords:
                if kw.arg == "frozen":
                    return (
                        isinstance(kw.value, ast.Constant) and kw.value.value is True
                    )
            return False
    return None


def _field_names(cls: ast.ClassDef) -> List[str]:
    names = []
    for stmt in cls.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            if "ClassVar" in ast.dump(stmt.annotation):
                continue  # class-level constant, not a dataclass field
            names.append(stmt.target.id)
    return [n for n in names if not n.startswith("_")]


def _method(cls: ast.ClassDef, name: str) -> Optional[ast.FunctionDef]:
    for stmt in cls.body:
        if isinstance(stmt, ast.FunctionDef) and stmt.name == name:
            return stmt
    return None


def _uses_asdict(ctx: ModuleContext, fn: ast.FunctionDef) -> bool:
    for node in ast.walk(fn):
        if isinstance(node, ast.Call):
            resolved = ctx.resolve(node.func)
            if resolved in ("dataclasses.asdict", "asdict"):
                return True
    return False


def _uses_star_kwargs(fn: ast.FunctionDef) -> bool:
    for node in ast.walk(fn):
        if isinstance(node, ast.Call):
            for kw in node.keywords:
                if kw.arg is None:  # **mapping
                    return True
    return False


def _mentioned_names(fn: ast.FunctionDef) -> Set[str]:
    """Field names a hand-written serialiser can reference: string literals
    (dict keys / ``data["x"]``) and keyword-argument names (``cls(x=...)``)."""
    names: Set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            names.add(node.value)
        elif isinstance(node, ast.Call):
            for kw in node.keywords:
                if kw.arg is not None:
                    names.add(kw.arg)
        elif isinstance(node, ast.Attribute):
            names.add(node.attr)
    return names


@register
class FrozenSpecRule(Rule):
    id = "RL05"
    name = "frozen-spec-shape"
    invariant = (
        "*Spec classes are frozen dataclasses and every field appears in "
        "their to_dict/from_dict pair"
    )
    rationale = (
        "specs are the hashed experiment identity; a mutable spec or a "
        "field missing from serialisation drifts the spec hash without any "
        "visible failure"
    )

    def check_module(self, ctx: ModuleContext) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef) or not node.name.endswith("Spec"):
                continue
            frozen = _dataclass_frozen(ctx, node)
            if frozen is None:
                findings.append(
                    self.finding(
                        ctx,
                        node.lineno,
                        node.col_offset,
                        f"class {node.name} ends in 'Spec' but is not a "
                        "@dataclass(frozen=True)",
                    )
                )
                continue
            if not frozen:
                findings.append(
                    self.finding(
                        ctx,
                        node.lineno,
                        node.col_offset,
                        f"spec class {node.name} must be declared "
                        "@dataclass(frozen=True); mutable specs drift their "
                        "hash after construction",
                    )
                )
            fields = _field_names(node)
            for method_name in ("to_dict", "from_dict"):
                fn = _method(node, method_name)
                if fn is None:
                    continue  # serialised via an enclosing spec's asdict
                if method_name == "to_dict" and _uses_asdict(ctx, fn):
                    continue
                if method_name == "from_dict" and _uses_star_kwargs(fn):
                    continue
                mentioned = _mentioned_names(fn)
                for field in fields:
                    if field not in mentioned:
                        findings.append(
                            self.finding(
                                ctx,
                                fn.lineno,
                                fn.col_offset,
                                f"{node.name}.{method_name} does not mention "
                                f"field '{field}'; the field would silently "
                                "drop out of the spec hash / round-trip",
                            )
                        )
        return findings
