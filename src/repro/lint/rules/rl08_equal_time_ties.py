"""RL08 -- equal-timestamp scheduling without a deterministic tie-break.

Scheduling one engine event *per element* of a collection with a
loop-invariant delay puts every event at the same admissible timestamp;
their relative dispatch order is then nothing but the insertion tie-break,
which the model does not constrain (and which the schedule explorer
deliberately perturbs).  When the per-element callbacks feed an ordered
consumer -- a FIFO channel, a log, a trace -- the run's outcome silently
depends on that artefact.  The message-logging replay bug is the canonical
instance: one replay event per log entry, all at ``failure + request_delay``,
let a reordered dispatch break per-channel FIFO.

The fix is structural, not cosmetic: schedule *one* event that walks the
collection in a deterministic order (pass the whole batch to the callback),
or derive genuinely distinct times per element.

Two additional hazards are flagged: a set-typed collection fanned out into
the scheduler (hash order becomes insertion order becomes dispatch order),
and ``schedule_at`` with a loop-invariant absolute time.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Set

from repro.lint.context import ModuleContext
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register
from repro.lint.rules.common import set_checker_for

_SCHEDULE_METHODS = frozenset({"schedule", "schedule_at"})


def _is_engine_schedule(node: ast.Call) -> bool:
    """``<...>.engine.schedule(...)`` / ``engine.schedule_at(...)`` calls.

    The method name alone is too common (campaign scheduling, cron-like
    helpers), so the attribute chain must mention ``engine``.
    """
    fn = node.func
    if not (isinstance(fn, ast.Attribute) and fn.attr in _SCHEDULE_METHODS):
        return False
    current: ast.AST = fn.value
    while isinstance(current, ast.Attribute):
        if current.attr == "engine":
            return True
        current = current.value
    return isinstance(current, ast.Name) and current.id == "engine"


def _loop_target_names(target: ast.AST) -> Set[str]:
    names: Set[str] = set()
    for node in ast.walk(target):
        if isinstance(node, ast.Name):
            names.add(node.id)
    return names


def _loop_invariant_time(expr: ast.AST, loop_names: Set[str]) -> bool:
    """Whether the delay/time expression is the same for every iteration.

    Conservative: only pure shapes (constants, names, attribute chains,
    arithmetic thereof) count; any call, subscript or comprehension inside
    the expression may vary per iteration and exempts the site.
    """
    for node in ast.walk(expr):
        if isinstance(node, ast.Name) and node.id in loop_names:
            return False
        if isinstance(node, (ast.Call, ast.Subscript, ast.GeneratorExp, ast.ListComp)):
            return False
    return True


def _uses_names(expr: Optional[ast.AST], loop_names: Set[str]) -> bool:
    if expr is None:
        return False
    for node in ast.walk(expr):
        if isinstance(node, ast.Name) and node.id in loop_names:
            return True
    return False


@register
class EqualTimeTieRule(Rule):
    id = "RL08"
    name = "equal-time-tie-break"
    invariant = (
        "no per-element engine.schedule()/schedule_at() fan-out at a "
        "loop-invariant time: same-timestamp events dispatch in insertion "
        "order only, which the model leaves unconstrained"
    )
    rationale = (
        "N events at one timestamp have no defined relative order; batching "
        "the loop into a single event (or staggering the times) pins the "
        "order the protocol actually relies on, instead of leaving it to a "
        "tie-break a schedule policy is free to permute"
    )

    def check_module(self, ctx: ModuleContext) -> List[Finding]:
        findings: List[Finding] = []
        checker_for = set_checker_for(ctx)

        for loop in ast.walk(ctx.tree):
            if not isinstance(loop, ast.For):
                continue
            loop_names = _loop_target_names(loop.target)
            iter_is_set = checker_for(loop).is_set_expr(loop.iter)
            for node in ast.walk(loop):
                if not (isinstance(node, ast.Call) and _is_engine_schedule(node)):
                    continue
                if not node.args:
                    continue
                # Nested loops: attribute the call to the *innermost* loop so
                # the invariance test uses the right loop variable.
                inner = ctx.parent(node)
                owner: Optional[ast.For] = None
                while inner is not None:
                    if isinstance(inner, ast.For):
                        owner = inner
                        break
                    inner = ctx.parent(inner)
                if owner is not loop:
                    continue
                per_element = any(
                    _uses_names(arg, loop_names) for arg in list(node.args)[1:]
                ) or any(_uses_names(kw.value, loop_names) for kw in node.keywords)
                if not per_element:
                    continue
                if iter_is_set:
                    findings.append(
                        self.finding(
                            ctx,
                            node.lineno,
                            node.col_offset,
                            "per-element event fan-out over a set-typed "
                            "expression: hash order becomes dispatch order; "
                            "iterate sorted(...) or schedule one batched event",
                        )
                    )
                    continue
                if _loop_invariant_time(node.args[0], loop_names):
                    method = node.func.attr  # type: ignore[union-attr]
                    findings.append(
                        self.finding(
                            ctx,
                            node.lineno,
                            node.col_offset,
                            f"engine.{method}() fan-out at a loop-invariant "
                            "time: the elements' events tie and dispatch in "
                            "insertion order only; schedule one batched event "
                            "for the whole collection or stagger the times",
                        )
                    )
        return findings
