"""Shared AST helpers for the rule modules."""

from __future__ import annotations

import ast
from typing import Callable, Iterator, List, Optional, Set, Tuple

from repro.lint.context import ModuleContext

_SET_METHODS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference", "copy"}
)


class SetExprChecker:
    """Checks one lexical scope, tracking names assigned set-typed values."""

    def __init__(self, known: Set[str]) -> None:
        self.known = known

    def is_set_expr(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in self.known
        if isinstance(node, ast.Call):
            fn = node.func
            if isinstance(fn, ast.Name) and fn.id in ("set", "frozenset"):
                return True
            if isinstance(fn, ast.Attribute) and fn.attr in _SET_METHODS:
                return self.is_set_expr(fn.value)
            if isinstance(fn, ast.Name) and fn.id in ("vars", "globals", "locals"):
                return False  # handled by the dynamic-namespace check
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
        ):
            return self.is_set_expr(node.left) or self.is_set_expr(node.right)
        return False


def _scope_nodes(tree: ast.AST) -> List[ast.AST]:
    """Scope nodes (module + each function) in the tree."""
    scopes = [tree]
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            scopes.append(node)
    return scopes


def set_checker_for(ctx: ModuleContext) -> Callable[[ast.AST], SetExprChecker]:
    """Build a per-node lookup of the scope-local :class:`SetExprChecker`.

    Runs the assignment pre-pass once (names assigned set-typed values,
    grouped by the lexical scope the assignment lives in) and returns a
    function mapping any node to the checker of its enclosing scope.
    """
    scope_known = {id(scope): set() for scope in _scope_nodes(ctx.tree)}

    def enclosing_scope(node: ast.AST) -> int:
        current = ctx.parent(node)
        while current is not None and id(current) not in scope_known:
            current = ctx.parent(current)
        return id(current) if current is not None else id(ctx.tree)

    assigns = [
        n
        for n in ast.walk(ctx.tree)
        if isinstance(n, (ast.Assign, ast.AnnAssign)) and n.value is not None
    ]
    for assign in sorted(assigns, key=lambda n: n.lineno):
        known = scope_known[enclosing_scope(assign)]
        if not SetExprChecker(known).is_set_expr(assign.value):
            continue
        targets = assign.targets if isinstance(assign, ast.Assign) else [assign.target]
        for target in targets:
            if isinstance(target, ast.Name):
                known.add(target.id)

    def checker(node: ast.AST) -> SetExprChecker:
        return SetExprChecker(scope_known[enclosing_scope(node)])

    return checker


def name_chains(ctx: ModuleContext) -> Iterator[Tuple[ast.AST, str]]:
    """Yield ``(node, resolved_dotted_name)`` for every maximal name chain.

    A chain is maximal when its parent is not a longer attribute chain, so
    ``numpy.random.seed`` yields once, not three times.
    """
    for node in ast.walk(ctx.tree):
        if not isinstance(node, (ast.Attribute, ast.Name)):
            continue
        parent = ctx.parent(node)
        if isinstance(parent, ast.Attribute) and parent.value is node:
            continue
        resolved = ctx.resolve(node)
        if resolved is not None:
            yield node, resolved


def chain_root(node: ast.AST) -> Optional[str]:
    """The leftmost identifier of a ``Name``/``Attribute`` chain."""
    current = node
    while isinstance(current, ast.Attribute):
        current = current.value
    if isinstance(current, ast.Name):
        return current.id
    return None


def call_keyword(call: ast.Call, name: str) -> Optional[ast.expr]:
    for kw in call.keywords:
        if kw.arg == name:
            return kw.value
    return None


def string_value(node: Optional[ast.expr]) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None
