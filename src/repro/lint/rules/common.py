"""Shared AST helpers for the rule modules."""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Tuple

from repro.lint.context import ModuleContext


def name_chains(ctx: ModuleContext) -> Iterator[Tuple[ast.AST, str]]:
    """Yield ``(node, resolved_dotted_name)`` for every maximal name chain.

    A chain is maximal when its parent is not a longer attribute chain, so
    ``numpy.random.seed`` yields once, not three times.
    """
    for node in ast.walk(ctx.tree):
        if not isinstance(node, (ast.Attribute, ast.Name)):
            continue
        parent = ctx.parent(node)
        if isinstance(parent, ast.Attribute) and parent.value is node:
            continue
        resolved = ctx.resolve(node)
        if resolved is not None:
            yield node, resolved


def chain_root(node: ast.AST) -> Optional[str]:
    """The leftmost identifier of a ``Name``/``Attribute`` chain."""
    current = node
    while isinstance(current, ast.Attribute):
        current = current.value
    if isinstance(current, ast.Name):
        return current.id
    return None


def call_keyword(call: ast.Call, name: str) -> Optional[ast.expr]:
    for kw in call.keywords:
        if kw.arg == name:
            return kw.value
    return None


def string_value(node: Optional[ast.expr]) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None
