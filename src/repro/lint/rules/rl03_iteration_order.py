"""RL03 -- iteration-order hazards.

Python ``set`` iteration order depends on insertion history and hash
randomisation of the values' types; iterating a set into anything ordered
(a list, a loop that accumulates floats, a trace record) makes the output
sensitive to that order.  The rule flags iteration over set-typed
expressions unless the consumer is order-insensitive; the fix is a
``sorted(...)`` wrapper, which is behaviour-neutral everywhere order did
not already matter.  ``vars()/globals()/locals()`` views are flagged for
the same reason.  (Plain dict views are insertion-ordered and exempt.)
"""

from __future__ import annotations

import ast
from typing import List

from repro.lint.context import ModuleContext
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register
from repro.lint.rules.common import set_checker_for

#: Consumers for which element order cannot affect the result.  ``sum`` is
#: deliberately absent: float addition is not associative, so summing a set
#: in hash order is exactly the bug this rule exists to catch.
_ORDER_FREE_CONSUMERS = frozenset(
    {"sorted", "min", "max", "any", "all", "len", "set", "frozenset", "bool"}
)

#: Calls whose result is an ordered sequence fed by iteration order.
_ORDERED_CONSUMERS = frozenset({"list", "tuple", "iter", "enumerate", "sum"})


def _is_dynamic_namespace_view(node: ast.AST) -> bool:
    """``vars(x).values()`` / ``globals().items()`` style expressions."""
    if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
        return False
    if node.func.attr not in ("values", "keys", "items"):
        return False
    inner = node.func.value
    return (
        isinstance(inner, ast.Call)
        and isinstance(inner.func, ast.Name)
        and inner.func.id in ("vars", "globals", "locals")
    )


@register
class IterationOrderRule(Rule):
    id = "RL03"
    name = "iteration-order-hazards"
    invariant = (
        "no iteration over set-typed expressions (or vars()/globals() views) "
        "into ordered consumers without sorted()"
    )
    rationale = (
        "set order follows insertion history and value hashing, so an "
        "unsorted traversal leaks run-dependent order into records, traces "
        "and float accumulations; sorted() restores a canonical order"
    )

    def check_module(self, ctx: ModuleContext) -> List[Finding]:
        findings: List[Finding] = []
        checker_for = set_checker_for(ctx)

        def flag(node: ast.AST, what: str) -> None:
            findings.append(
                self.finding(
                    ctx,
                    node.lineno,
                    node.col_offset,
                    f"{what}; wrap in sorted() to pin a canonical order",
                )
            )

        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.For):
                chk = checker_for(node)
                if chk.is_set_expr(node.iter):
                    flag(node.iter, "for-loop iterates a set-typed expression")
                elif _is_dynamic_namespace_view(node.iter):
                    flag(node.iter, "for-loop iterates a dynamic-namespace view")
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
                # ``sorted(x for x in some_set)`` is the canonical fix, not a
                # violation: skip comprehensions fed to order-free consumers.
                parent = ctx.parent(node)
                if (
                    isinstance(parent, ast.Call)
                    and isinstance(parent.func, ast.Name)
                    and parent.func.id in _ORDER_FREE_CONSUMERS
                ):
                    continue
                chk = checker_for(node)
                for gen in node.generators:
                    if chk.is_set_expr(gen.iter):
                        flag(gen.iter, "comprehension iterates a set-typed expression")
                    elif _is_dynamic_namespace_view(gen.iter):
                        flag(gen.iter, "comprehension iterates a dynamic-namespace view")
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
                if node.func.id in _ORDERED_CONSUMERS:
                    chk = checker_for(node)
                    for arg in node.args:
                        if chk.is_set_expr(arg):
                            flag(
                                arg,
                                f"{node.func.id}() materialises a set-typed "
                                "expression in hash order",
                            )
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "join"
            ):
                chk = checker_for(node)
                for arg in node.args:
                    if chk.is_set_expr(arg):
                        flag(arg, "str.join() consumes a set-typed expression")
        return findings
