"""RL07 -- compiled-subset guard.

``simulator/_engine_core.py`` ships as an optional mypyc-compiled
extension (``REPRO_MYPYC=1`` builds, the engine facade auto-selects it).
mypyc compiles only a static subset of Python and *silently* falls back to
slow boxed paths -- or miscompiles -- around dynamic constructs.  This rule
keeps the module inside the subset: fully annotated defs, no ``**kwargs``,
no dynamic attribute machinery (``getattr``/``setattr``/``__dict__``), no
``eval``/``exec``/metaclasses, and only the decorator forms mypyc
understands.
"""

from __future__ import annotations

import ast
from typing import Callable, List, Union

from repro.lint.config import COMPILED_MODULES
from repro.lint.context import ModuleContext
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register

_BANNED_CALLS = frozenset(
    {"getattr", "setattr", "delattr", "eval", "exec", "globals", "vars", "compile"}
)

_ALLOWED_DECORATORS = frozenset({"property", "staticmethod", "classmethod"})


@register
class CompiledSubsetRule(Rule):
    id = "RL07"
    name = "compiled-subset-guard"
    invariant = (
        "simulator/_engine_core.py stays mypyc-compilable: fully annotated "
        "defs, no **kwargs, no dynamic attribute tricks"
    )
    rationale = (
        "mypyc miscompiles or deoptimises silently around untyped and "
        "dynamic constructs; the compiled and interpreted engines must stay "
        "behaviourally identical"
    )

    def check_module(self, ctx: ModuleContext) -> List[Finding]:
        if ctx.module not in COMPILED_MODULES:
            return []
        findings: List[Finding] = []

        def flag(node: ast.AST, message: str) -> None:
            findings.append(
                self.finding(ctx, node.lineno, node.col_offset, message)
            )

        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._check_def(ctx, node, flag)
            elif isinstance(node, ast.ClassDef):
                for kw in node.keywords:
                    if kw.arg == "metaclass":
                        flag(node, f"class {node.name} uses a metaclass")
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
                name = node.func.id
                if name in _BANNED_CALLS and name not in ctx.imports:
                    flag(
                        node,
                        f"dynamic construct {name}() is outside the mypyc "
                        "subset; use static attribute access",
                    )
            elif isinstance(node, ast.Attribute) and node.attr == "__dict__":
                flag(node, "__dict__ access defeats mypyc's native attribute layout")
        return findings

    def _check_def(
        self,
        ctx: ModuleContext,
        fn: Union[ast.FunctionDef, ast.AsyncFunctionDef],
        flag: Callable[[ast.AST, str], None],
    ) -> None:
        parent = ctx.parent(fn)
        is_method = isinstance(parent, ast.ClassDef)
        is_static = any(
            isinstance(dec, ast.Name) and dec.id == "staticmethod"
            for dec in fn.decorator_list
        )
        for dec in fn.decorator_list:
            if isinstance(dec, ast.Name) and dec.id in _ALLOWED_DECORATORS:
                continue
            if isinstance(dec, ast.Attribute) and dec.attr in ("setter", "deleter"):
                continue
            flag(
                dec,
                f"decorator on {fn.name} is outside the mypyc-safe set "
                "(property/staticmethod/classmethod)",
            )
        if fn.args.kwarg is not None:
            flag(fn, f"{fn.name} takes **{fn.args.kwarg.arg}; mypyc boxes every call")
        args = list(fn.args.posonlyargs) + list(fn.args.args) + list(fn.args.kwonlyargs)
        skip_first = is_method and not is_static
        for idx, arg in enumerate(args):
            if skip_first and idx == 0:
                continue  # self / cls
            if arg.annotation is None:
                flag(fn, f"{fn.name} argument '{arg.arg}' is unannotated")
        if fn.args.vararg is not None and fn.args.vararg.annotation is None:
            flag(fn, f"{fn.name} argument '*{fn.args.vararg.arg}' is unannotated")
        if fn.returns is None:
            flag(fn, f"{fn.name} has no return annotation")
