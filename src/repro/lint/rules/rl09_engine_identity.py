"""RL09 -- engine identity leaking into persisted state.

The engine stamps every message with a global ``msg_id`` and every queue
entry with an insertion ``seq``; both meter *dispatch history*, not model
state.  Two runs that differ only in how same-time events were tie-broken
assign different ids to identical messages, so any id that reaches durable
or reported state -- a checkpoint payload, a protocol snapshot, a metric, a
JSON artifact -- makes the run schedule-dependent even when the physics is
not.  ``id(obj)`` is worse still: a fresh address every process.

Flagged sources: ``.msg_id`` attribute reads, engine-internal ``_seq`` /
``_drain_idx`` names and ``entry[_SEQ]``-style subscripts, and ``id(...)``
calls.  Flagged sinks:

* ``add_metric(info, "name", value)`` value expressions;
* ``<metrics>.set("name", value)`` value expressions;
* ``<stats>.extra[...] = value`` assignments;
* anywhere inside ``_checkpoint_payload`` / ``snapshot`` /
  ``schedule_fingerprint`` / ``recovery_line_fingerprint`` bodies (these
  return persisted or fingerprinted state wholesale);
* ``json.dump`` / ``json.dumps`` payload arguments.
"""

from __future__ import annotations

import ast
from typing import List, Optional

from repro.lint.context import ModuleContext
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register

_IDENTITY_ATTRS = frozenset({"msg_id", "_seq", "_drain_idx"})
_IDENTITY_NAMES = frozenset({"_seq", "_drain_idx"})
_IDENTITY_INDEX_NAMES = frozenset({"_SEQ", "_DRAIN_IDX"})
_PERSISTED_FUNCS = frozenset(
    {
        "_checkpoint_payload",
        "snapshot",
        "schedule_fingerprint",
        "recovery_line_fingerprint",
    }
)


def _identity_source(node: ast.AST) -> Optional[str]:
    """A human-readable description of the engine identity read, or None."""
    if isinstance(node, ast.Attribute) and node.attr in _IDENTITY_ATTRS:
        return f".{node.attr}"
    if isinstance(node, ast.Name) and node.id in _IDENTITY_NAMES:
        return node.id
    if isinstance(node, ast.Subscript):
        index = node.slice
        if isinstance(index, ast.Name) and index.id in _IDENTITY_INDEX_NAMES:
            return f"[{index.id}]"
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "id"
        and len(node.args) == 1
    ):
        return "id()"
    return None


def _find_identity_reads(expr: ast.AST) -> List[ast.AST]:
    return [node for node in ast.walk(expr) if _identity_source(node) is not None]


def _is_metric_set_call(node: ast.Call) -> bool:
    return (
        isinstance(node.func, ast.Attribute)
        and node.func.attr == "set"
        and len(node.args) >= 2
        and isinstance(node.args[0], ast.Constant)
        and isinstance(node.args[0].value, str)
    )


def _is_extra_subscript(target: ast.AST) -> bool:
    """``X.extra[...]`` / ``extra[...]`` assignment targets."""
    if not isinstance(target, ast.Subscript):
        return False
    base = target.value
    if isinstance(base, ast.Attribute) and base.attr == "extra":
        return True
    return isinstance(base, ast.Name) and base.id == "extra"


@register
class EngineIdentityRule(Rule):
    id = "RL09"
    name = "engine-identity-leak"
    invariant = (
        "no engine identity (msg_id, queue seq, id()) in checkpoint "
        "payloads, protocol snapshots/fingerprints, metrics or JSON output"
    )
    rationale = (
        "ids meter dispatch history, not model state: a tie-break that "
        "reorders same-time events renumbers identical messages, so a "
        "persisted id makes byte-identical replay impossible even when "
        "every physical observable matches"
    )

    def check_module(self, ctx: ModuleContext) -> List[Finding]:
        findings: List[Finding] = []

        def flag(read: ast.AST, sink: str) -> None:
            findings.append(
                self.finding(
                    ctx,
                    read.lineno,
                    read.col_offset,
                    f"engine identity {_identity_source(read)} reaches {sink}; "
                    "persist model state (endpoints, tags, sequence numbers "
                    "the protocol assigns) instead",
                )
            )

        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                if (
                    isinstance(node.func, ast.Name)
                    and node.func.id == "add_metric"
                    and len(node.args) >= 3
                ):
                    for value in node.args[2:]:
                        for read in _find_identity_reads(value):
                            flag(read, "an add_metric() value")
                elif _is_metric_set_call(node):
                    for value in node.args[1:]:
                        for read in _find_identity_reads(value):
                            flag(read, "a metric value")
                elif (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr in ("dump", "dumps")
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id == "json"
                    and node.args
                ):
                    for read in _find_identity_reads(node.args[0]):
                        flag(read, "a json.dump payload")
            elif isinstance(node, ast.Assign):
                if any(_is_extra_subscript(t) for t in node.targets):
                    for read in _find_identity_reads(node.value):
                        flag(read, "a stats.extra[...] entry")
            elif isinstance(node, ast.AugAssign):
                if _is_extra_subscript(node.target):
                    for read in _find_identity_reads(node.value):
                        flag(read, "a stats.extra[...] entry")
            elif (
                isinstance(node, ast.FunctionDef)
                and node.name in _PERSISTED_FUNCS
            ):
                for stmt in node.body:
                    for read in ast.walk(stmt):
                        if _identity_source(read) is not None:
                            flag(read, f"persisted state ({node.name}())")
        return findings
