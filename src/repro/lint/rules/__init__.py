"""Rule modules. Importing this package populates the registry."""

from repro.lint.rules import (  # noqa: F401
    rl01_rng,
    rl02_wallclock,
    rl03_iteration_order,
    rl04_locked_writes,
    rl05_frozen_spec,
    rl06_metric_namespace,
    rl07_compiled_subset,
    rl08_equal_time_ties,
    rl09_engine_identity,
)
