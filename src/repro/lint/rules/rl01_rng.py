"""RL01 -- seeded-RNG contract.

Every random draw in the tree must come from a ``random.Random`` stream
built by ``faults/distributions.py``'s ``derive_rng`` (SHA-256-keyed by
scenario hash, trial index, and purpose label).  Module-level ``random.*``
functions draw from interpreter-global state that any import can perturb;
``random.seed`` mutates that state for everyone; ``numpy.random`` adds a
second, platform-sensitive global stream.  Any of these silently breaks
replayable failure traces and the serial-vs-parallel byte-identity pin.
"""

from __future__ import annotations

from typing import List

from repro.lint.config import RNG_FACTORY_MODULES
from repro.lint.context import ModuleContext
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register
from repro.lint.rules.common import chain_root, name_chains

#: Mutate interpreter-global RNG state: banned everywhere, no exemption.
_GLOBAL_MUTATORS = frozenset(
    {
        "random.seed",
        "random.setstate",
        "numpy.random.seed",
        "numpy.random.set_state",
    }
)

#: RNG constructors: allowed only inside the derive_rng factory module.
_FACTORY_ONLY = frozenset(
    {
        "random.Random",
        "random.SystemRandom",
        "numpy.random.default_rng",
        "numpy.random.Generator",
        "numpy.random.RandomState",
    }
)


@register
class SeededRngRule(Rule):
    id = "RL01"
    name = "seeded-rng-contract"
    invariant = (
        "RNG streams come from faults.distributions.derive_rng only; no "
        "module-level random.* / numpy.random usage, no global seeding"
    )
    rationale = (
        "global RNG state is shared across the interpreter, so any stray "
        "draw or re-seed desynchronises replayed failure traces and breaks "
        "serial-vs-parallel byte identity"
    )

    def check_module(self, ctx: ModuleContext) -> List[Finding]:
        findings: List[Finding] = []
        in_factory = ctx.module in RNG_FACTORY_MODULES
        for node, resolved in name_chains(ctx):
            root = chain_root(node)
            if root not in ctx.imports:
                continue  # not an import-backed chain (e.g. a local `rng`)
            if resolved in _GLOBAL_MUTATORS:
                findings.append(
                    self.finding(
                        ctx,
                        node.lineno,
                        node.col_offset,
                        f"`{resolved}` mutates interpreter-global RNG state; "
                        "derive a keyed stream via "
                        "faults.distributions.derive_rng instead",
                    )
                )
            elif resolved in _FACTORY_ONLY:
                if not in_factory:
                    findings.append(
                        self.finding(
                            ctx,
                            node.lineno,
                            node.col_offset,
                            f"`{resolved}` constructed outside the RNG factory "
                            "module; use faults.distributions.derive_rng so the "
                            "stream is SHA-256-keyed and replayable",
                        )
                    )
            elif resolved.startswith("random.") or resolved.startswith("numpy.random."):
                findings.append(
                    self.finding(
                        ctx,
                        node.lineno,
                        node.col_offset,
                        f"`{resolved}` draws from the module-level global RNG; "
                        "use a derive_rng stream instead",
                    )
                )
        return findings
