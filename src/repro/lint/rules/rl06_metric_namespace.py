"""RL06 -- metric-namespace collisions.

Two producers writing the same metric name clobber each other in merged
result records; the runtime ``MetricSet`` duplicate detector catches this
only when both code paths actually execute in one run.  This rule harvests
metric-name string literals statically:

* **dotted namespace** -- literals in ``<metrics>.set("a.b.c", ...)``
  calls; a literal emitted from two different modules is a collision
  (modules that deliberately *reconstruct* producer names, like the record
  migrator, are exempt via config).
* **protocol flat namespace** -- literals in ``add_metric(info, "name",
  ...)`` calls; duplicates within one class are collisions, and a
  ``*Stats.as_dict`` dict-literal key that matches an ``add_metric``
  literal in the same package collides too (``ftprotocols/base.py``
  imports every as_dict key into the same info dict).
"""

from __future__ import annotations

import ast
from typing import Dict, List, Sequence, Tuple

from repro.lint.config import METRIC_RECONSTRUCTION_MODULES
from repro.lint.context import ModuleContext
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register
from repro.lint.rules.common import string_value


def _dotted_set_literals(ctx: ModuleContext) -> List[Tuple[str, int, int]]:
    """(literal, line, col) for ``X.set("a.b", ...)`` metric emissions."""
    out = []
    for node in ast.walk(ctx.tree):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "set"
            and node.args
        ):
            continue
        literal = string_value(node.args[0])
        if literal is not None and "." in literal:
            out.append((literal, node.lineno, node.col_offset))
    return out


def _add_metric_literals(ctx: ModuleContext) -> List[Tuple[str, str, int, int]]:
    """(class_name, literal, line, col) for ``add_metric(info, "x", ...)``."""
    out = []
    class_stack: Dict[int, str] = {}
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ClassDef):
            for sub in ast.walk(node):
                class_stack.setdefault(id(sub), node.name)
    for node in ast.walk(ctx.tree):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "add_metric"
            and len(node.args) >= 2
        ):
            continue
        literal = string_value(node.args[1])
        if literal is not None:
            cls = class_stack.get(id(node), "<module>")
            out.append((cls, literal, node.lineno, node.col_offset))
    return out


def _stats_as_dict_keys(ctx: ModuleContext) -> List[Tuple[str, int, int]]:
    """Dict-literal keys returned by ``*Stats.as_dict`` methods."""
    out = []
    for node in ast.walk(ctx.tree):
        if not (isinstance(node, ast.ClassDef) and node.name.endswith("Stats")):
            continue
        for stmt in node.body:
            if not (isinstance(stmt, ast.FunctionDef) and stmt.name == "as_dict"):
                continue
            for sub in ast.walk(stmt):
                if isinstance(sub, ast.Dict):
                    for key in sub.keys:
                        literal = string_value(key)
                        if literal is not None:
                            out.append((literal, sub.lineno, sub.col_offset))
    return out


@register
class MetricNamespaceRule(Rule):
    id = "RL06"
    name = "metric-namespace-collisions"
    invariant = (
        "every metric name literal has exactly one producer: no cross-module "
        "MetricSet.set duplicates, no add_metric/as_dict key clashes"
    )
    rationale = (
        "two producers of one name clobber each other in merged records; "
        "the runtime detector only fires when both paths execute in one run"
    )

    def check_project(self, ctxs: Sequence[ModuleContext]) -> List[Finding]:
        findings: List[Finding] = []

        # Pass 1: cross-module dotted-name collisions.
        producers: Dict[str, List[Tuple[ModuleContext, int, int]]] = {}
        for ctx in ctxs:
            if ctx.module in METRIC_RECONSTRUCTION_MODULES:
                continue
            for literal, line, col in _dotted_set_literals(ctx):
                producers.setdefault(literal, []).append((ctx, line, col))
        for literal in sorted(producers):
            sites = producers[literal]
            modules = {ctx.module for ctx, _, _ in sites}
            if len(modules) < 2:
                continue
            where = ", ".join(sorted(modules))
            for ctx, line, col in sites:
                findings.append(
                    self.finding(
                        ctx,
                        line,
                        col,
                        f"metric '{literal}' is emitted from multiple modules "
                        f"({where}); merged records would clobber each other",
                    )
                )

        # Pass 2: protocol flat namespace (add_metric + imported as_dict keys).
        for ctx in ctxs:
            per_class: Dict[str, Dict[str, Tuple[int, int]]] = {}
            for cls, literal, line, col in _add_metric_literals(ctx):
                seen = per_class.setdefault(cls, {})
                if literal in seen:
                    findings.append(
                        self.finding(
                            ctx,
                            line,
                            col,
                            f"duplicate add_metric name '{literal}' in class "
                            f"{cls} (first at line {seen[literal][0]})",
                        )
                    )
                else:
                    seen[literal] = (line, col)

        package_add_metric: Dict[str, Dict[str, str]] = {}
        for ctx in ctxs:
            package = ctx.module.rsplit("/", 1)[0]
            names = package_add_metric.setdefault(package, {})
            for _cls, literal, _line, _col in _add_metric_literals(ctx):
                names.setdefault(literal, ctx.module)
        for ctx in ctxs:
            package = ctx.module.rsplit("/", 1)[0]
            names = package_add_metric.get(package, {})
            for literal, line, col in _stats_as_dict_keys(ctx):
                if literal in names:
                    findings.append(
                        self.finding(
                            ctx,
                            line,
                            col,
                            f"stats key '{literal}' collides with an "
                            f"add_metric name in {names[literal]}; as_dict "
                            "keys are imported into the same protocol info "
                            "dict",
                        )
                    )
        return findings
