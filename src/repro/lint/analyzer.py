"""File walker and rule runner.

``run_lint(paths)`` builds a :class:`ModuleContext` per Python file, runs
every rule's per-module pass, runs the project-level passes once over all
contexts, filters findings through inline suppressions, and finally emits
``RL00`` hygiene findings for malformed or unused suppressions.  Findings
come back sorted by ``(path, line, col, rule)`` so output is stable.
"""

from __future__ import annotations

import os
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.lint.context import ModuleContext
from repro.lint.findings import Finding
from repro.lint.registry import Rule, all_rules

#: Files never linted: generated copies and bytecode caches.
_SKIP_BASENAMES = frozenset({"_engine_core_compiled.py"})


def iter_python_files(paths: Sequence[str]) -> List[str]:
    out: List[str] = []
    for path in paths:
        if os.path.isfile(path):
            out.append(path)
            continue
        for root, dirs, files in os.walk(path):
            dirs[:] = sorted(d for d in dirs if d != "__pycache__")
            for name in sorted(files):
                if name.endswith(".py") and name not in _SKIP_BASENAMES:
                    out.append(os.path.join(root, name))
    return sorted(dict.fromkeys(out))


def _selected_rules(select: Optional[Sequence[str]]) -> List[Rule]:
    rules = all_rules()
    if select is None:
        return rules
    wanted = set(select)
    unknown = wanted - {rule.id for rule in rules}
    if unknown:
        raise ValueError(f"unknown rule ids: {', '.join(sorted(unknown))}")
    return [rule for rule in rules if rule.id in wanted]


def _apply_suppressions(
    ctx: ModuleContext, findings: Iterable[Finding]
) -> List[Finding]:
    kept = []
    for finding in findings:
        if not ctx.suppressions.covers(finding.line, finding.rule):
            kept.append(finding)
    return kept


def _hygiene_findings(ctx: ModuleContext, check_unused: bool) -> List[Finding]:
    findings = []
    table = ctx.suppressions
    for line, message in zip(table.problem_lines, table.problems):
        findings.append(
            Finding(rule="RL00", path=ctx.path, line=line, col=0, message=message)
        )
    if check_unused:
        for suppression in table.directives:
            if not suppression.used_for:
                findings.append(
                    Finding(
                        rule="RL00",
                        path=ctx.path,
                        line=suppression.line,
                        col=0,
                        message=(
                            "unused suppression "
                            f"(disable={','.join(sorted(suppression.codes))}); "
                            "remove it so the contract stays tight"
                        ),
                    )
                )
    return findings


def lint_contexts(
    ctxs: Sequence[ModuleContext], select: Optional[Sequence[str]] = None
) -> List[Finding]:
    rules = _selected_rules(select)
    findings: List[Finding] = []
    for ctx in ctxs:
        module_findings: List[Finding] = []
        for rule in rules:
            module_findings.extend(rule.check_module(ctx))
        findings.extend(_apply_suppressions(ctx, module_findings))
    # Project-level passes: findings land on their own ctx's suppressions.
    by_path = {ctx.path: ctx for ctx in ctxs}
    for rule in rules:
        for finding in rule.check_project(ctxs):
            ctx = by_path[finding.path]
            findings.extend(_apply_suppressions(ctx, [finding]))
    # Only audit for unused suppressions when the full rule set ran: with
    # --select, a suppression for an unselected rule is legitimately idle.
    check_unused = select is None
    for ctx in ctxs:
        findings.extend(_hygiene_findings(ctx, check_unused))
    return sorted(findings, key=Finding.sort_key)


def run_lint(
    paths: Sequence[str], select: Optional[Sequence[str]] = None
) -> Tuple[List[Finding], int]:
    """Lint files/directories; returns (findings, files_checked)."""
    ctxs = []
    errors: List[Finding] = []
    for path in iter_python_files(paths):
        with open(path, encoding="utf-8") as fh:
            source = fh.read()
        try:
            ctxs.append(ModuleContext(path, source))
        except SyntaxError as exc:
            errors.append(
                Finding(
                    rule="RL00",
                    path=path,
                    line=exc.lineno or 0,
                    col=exc.offset or 0,
                    message=f"file does not parse: {exc.msg}",
                )
            )
    findings = lint_contexts(ctxs, select=select)
    findings.extend(errors)
    return sorted(findings, key=Finding.sort_key), len(ctxs)


def lint_source(
    source: str,
    module: str,
    select: Optional[Sequence[str]] = None,
    path: str = "<fixture>",
) -> List[Finding]:
    """Lint one in-memory snippet as if it lived at ``module`` (test helper)."""
    ctx = ModuleContext(path, source, module=module)
    return lint_contexts([ctx], select=select)
