"""repro-lint: AST-based determinism-contract analyzer.

The reproduction's correctness argument rests on contracts the test suite
can only check after a violation ships (byte-identical stores, pinned
recovery traces, stable spec hashes).  This package checks the contracts
*statically*: seeded-RNG discipline (RL01), no wall-clock reads (RL02),
no unsorted set iteration into ordered output (RL03), flock-guarded store
writes (RL04), frozen round-trippable specs (RL05), collision-free metric
namespaces (RL06), and a mypyc-compilable engine core (RL07).

Run ``repro-lint src/repro`` (or ``python -m repro.lint src/repro``);
see ``--list-rules`` for the contract table.
"""

from repro.lint.analyzer import lint_source, run_lint
from repro.lint.findings import Finding
from repro.lint.registry import Rule, all_rules

__all__ = ["Finding", "Rule", "all_rules", "lint_source", "run_lint"]
