"""Findings: what ``repro-lint`` reports.

A :class:`Finding` is one violation of a determinism contract at one
``file:line``.  Findings are plain data so the CLI can render them as text
(``path:line:col: RLxx message``) or JSON (``--format json``, consumed by
the campaign-service tooling).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Tuple


@dataclass(frozen=True)
class Finding:
    """One determinism-contract violation at ``path:line:col``."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"
