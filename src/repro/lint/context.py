"""Per-file analysis context: AST, import resolution, suppressions.

A :class:`ModuleContext` is built once per linted file and handed to every
rule.  It provides

* the parsed AST with a parent map (``ctx.parent(node)``);
* import-aware name resolution (``ctx.resolve(node)`` turns ``np.random.
  seed`` into ``numpy.random.seed`` whatever the local alias is);
* the inline suppression table parsed from ``# repro-lint:`` comments
  (see :mod:`repro.lint.suppress`).

``module`` is the file's path relative to the package root in posix form
(``repro/campaign/store.py``); path-scoped rules match against it.  For
fixture snippets the caller passes the module name explicitly.
"""

from __future__ import annotations

import ast
from typing import Dict, Optional

from repro.lint.suppress import SuppressionTable, parse_suppressions


def module_name_for(path: str) -> str:
    """Module path relative to the ``repro`` package root, posix form.

    Falls back to the basename for files outside a ``repro`` package
    (fixtures, scratch snippets).
    """
    parts = path.replace("\\", "/").split("/")
    for idx in range(len(parts) - 1, -1, -1):
        if parts[idx] == "repro":
            return "/".join(parts[idx:])
    return parts[-1]


class ModuleContext:
    """Everything a rule needs to analyse one file."""

    def __init__(self, path: str, source: str, module: Optional[str] = None) -> None:
        self.path = path
        self.source = source
        self.module = module if module is not None else module_name_for(path)
        self.tree = ast.parse(source, filename=path)
        self.imports = _collect_imports(self.tree)
        self.suppressions: SuppressionTable = parse_suppressions(source)
        self._parents: Dict[int, ast.AST] = {}
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[id(child)] = parent

    # -------------------------------------------------------------- structure
    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self._parents.get(id(node))

    # -------------------------------------------------------------- resolution
    def resolve(self, node: ast.AST) -> Optional[str]:
        """Dotted name of a ``Name``/``Attribute`` chain, import-resolved.

        ``np.random.seed`` resolves to ``numpy.random.seed`` when the file
        holds ``import numpy as np``; a bare builtin (``open``, ``id``)
        resolves to itself.  Returns ``None`` for non-name expressions.
        """
        parts = []
        current = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        parts.append(current.id)
        parts.reverse()
        head = self.imports.get(parts[0])
        if head is not None:
            parts[0] = head
        return ".".join(parts)


def _collect_imports(tree: ast.AST) -> Dict[str, str]:
    """Local name -> dotted origin, for every top-of-chain import binding."""
    imports: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname is not None:
                    imports[alias.asname] = alias.name
                else:
                    # ``import a.b`` binds ``a`` (resolving to ``a``).
                    imports[alias.name.split(".")[0]] = alias.name.split(".")[0]
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname if alias.asname is not None else alias.name
                imports[local] = f"{base}.{alias.name}" if base else alias.name
    return imports
