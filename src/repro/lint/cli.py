"""``repro-lint`` command line interface.

Exit codes: 0 clean, 1 findings reported, 2 usage error.  ``--format
json`` emits a machine-readable report (consumed by the campaign-service
tooling); ``--list-rules`` prints the contract table straight from the
rule registry.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.lint.analyzer import run_lint
from repro.lint.registry import all_rules


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="AST-based determinism-contract analyzer for the repro tree",
    )
    parser.add_argument(
        "paths", nargs="*", help="files or directories to lint (e.g. src/repro)"
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table (id, invariant, rationale) and exit",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="finding output format (default: text)",
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule ids to run (default: all rules)",
    )
    return parser


def _print_rules(fmt: str) -> None:
    rules = all_rules()
    if fmt == "json":
        payload = [
            {
                "id": rule.id,
                "name": rule.name,
                "invariant": rule.invariant,
                "rationale": rule.rationale,
            }
            for rule in rules
        ]
        print(json.dumps(payload, indent=1, sort_keys=True))
        return
    for rule in rules:
        print(f"{rule.id}  {rule.name}")
        print(f"      invariant: {rule.invariant}")
        print(f"      rationale: {rule.rationale}")


def main(argv: Optional[List[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        _print_rules(args.format)
        return 0
    if not args.paths:
        parser.print_usage(sys.stderr)
        print("repro-lint: error: no paths given", file=sys.stderr)
        return 2
    select = None
    if args.select is not None:
        select = [code.strip() for code in args.select.split(",") if code.strip()]
    try:
        findings, files_checked = run_lint(args.paths, select=select)
    except ValueError as exc:
        print(f"repro-lint: error: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"repro-lint: error: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        payload = {
            "files_checked": files_checked,
            "findings": [finding.to_dict() for finding in findings],
        }
        print(json.dumps(payload, indent=1, sort_keys=True))
    else:
        for finding in findings:
            print(finding.render())
        if findings:
            print(f"repro-lint: {len(findings)} finding(s) in {files_checked} file(s)")
        else:
            print(f"repro-lint: clean ({files_checked} file(s) checked)")
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
