"""``repro-lint`` command line interface.

Exit codes: 0 clean, 1 findings reported, 2 usage error.  ``--format
json`` emits a machine-readable report (consumed by the campaign-service
tooling); ``--list-rules`` prints the contract table straight from the
rule registry.  ``--write-baseline FILE`` records the current findings as
accepted debt; a later run with ``--baseline FILE`` reports and fails only
on findings beyond that record, so a new rule can land project-wide
without a big-bang cleanup.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.lint.analyzer import run_lint
from repro.lint.baseline import apply_baseline, load_baseline, write_baseline
from repro.lint.registry import all_rules


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="AST-based determinism-contract analyzer for the repro tree",
    )
    parser.add_argument(
        "paths", nargs="*", help="files or directories to lint (e.g. src/repro)"
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table (id, invariant, rationale) and exit",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="finding output format (default: text)",
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule ids to run (default: all rules)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="suppress findings recorded in FILE; fail only on new ones",
    )
    parser.add_argument(
        "--write-baseline",
        default=None,
        metavar="FILE",
        help="record the current findings to FILE and exit 0",
    )
    return parser


def _print_rules(fmt: str) -> None:
    rules = all_rules()
    if fmt == "json":
        payload = [
            {
                "id": rule.id,
                "name": rule.name,
                "invariant": rule.invariant,
                "rationale": rule.rationale,
            }
            for rule in rules
        ]
        print(json.dumps(payload, indent=1, sort_keys=True))
        return
    for rule in rules:
        print(f"{rule.id}  {rule.name}")
        print(f"      invariant: {rule.invariant}")
        print(f"      rationale: {rule.rationale}")


def main(argv: Optional[List[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        _print_rules(args.format)
        return 0
    if not args.paths:
        parser.print_usage(sys.stderr)
        print("repro-lint: error: no paths given", file=sys.stderr)
        return 2
    select = None
    if args.select is not None:
        select = [code.strip() for code in args.select.split(",") if code.strip()]
    if args.baseline is not None and args.write_baseline is not None:
        print(
            "repro-lint: error: --baseline and --write-baseline are exclusive",
            file=sys.stderr,
        )
        return 2
    try:
        findings, files_checked = run_lint(args.paths, select=select)
    except ValueError as exc:
        print(f"repro-lint: error: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"repro-lint: error: {exc}", file=sys.stderr)
        return 2
    if args.write_baseline is not None:
        entries = write_baseline(findings, args.write_baseline)
        print(
            f"repro-lint: wrote baseline {args.write_baseline} "
            f"({len(findings)} finding(s), {entries} entr(ies))"
        )
        return 0
    matched = idle = 0
    if args.baseline is not None:
        try:
            baseline = load_baseline(args.baseline)
        except (OSError, ValueError, KeyError) as exc:
            print(f"repro-lint: error: {exc}", file=sys.stderr)
            return 2
        findings, matched, idle = apply_baseline(findings, baseline)
    if args.format == "json":
        payload = {
            "files_checked": files_checked,
            "findings": [finding.to_dict() for finding in findings],
        }
        if args.baseline is not None:
            payload["baseline"] = {"matched": matched, "idle": idle}
        print(json.dumps(payload, indent=1, sort_keys=True))
    else:
        for finding in findings:
            print(finding.render())
        suffix = ""
        if args.baseline is not None:
            suffix = f" ({matched} baselined, {idle} baseline entr(ies) idle)"
        if findings:
            print(
                f"repro-lint: {len(findings)} finding(s) in "
                f"{files_checked} file(s){suffix}"
            )
        else:
            print(f"repro-lint: clean ({files_checked} file(s) checked){suffix}")
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
