"""Inline suppressions: ``# repro-lint: disable=RL04 -- justification``.

A suppression silences the named rules *on its own logical statement only*,
and a justification is mandatory: the whole point of the analyzer is that
determinism contracts live in the code, so every hole must say why it is
safe.  Findings anchor at the statement's first physical line while a
trailing directive sits on its last, so coverage is computed per logical
line (tokenize NEWLINE spans), not per physical line; a directive on a
comment-only line still covers just that line.  Malformed suppressions (no
justification, unknown syntax) and suppressions that silence nothing are
themselves reported under the ``RL00`` hygiene rule -- which is
deliberately not suppressible.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

#: Matches the directive inside a comment. Codes are comma-separated rule
#: ids (or ``all``); everything after ``--`` is the justification.
_DIRECTIVE = re.compile(
    r"#\s*repro-lint:\s*disable=(?P<codes>[A-Za-z0-9,\s]*)"
    r"(?:--\s*(?P<why>.*))?$"
)

_CODE = re.compile(r"^RL\d\d$")


@dataclass
class Suppression:
    """One parsed directive on one line."""

    line: int
    codes: Set[str]
    justification: str
    #: rules this suppression actually silenced (filled by the analyzer).
    used_for: Set[str] = field(default_factory=set)

    def covers(self, rule_id: str) -> bool:
        return "all" in self.codes or rule_id in self.codes


@dataclass
class SuppressionTable:
    """All directives of one file, plus their parse problems."""

    by_line: Dict[int, Suppression] = field(default_factory=dict)
    #: every parsed directive, in file order (by_line maps several physical
    #: lines of one multi-line statement to the same object).
    directives: List[Suppression] = field(default_factory=list)
    #: ``(line, message)`` hygiene problems found while parsing.
    problems: List[str] = field(default_factory=list)
    problem_lines: List[int] = field(default_factory=list)

    def covers(self, line: int, rule_id: str) -> bool:
        suppression = self.by_line.get(line)
        if suppression is None or not suppression.covers(rule_id):
            return False
        suppression.used_for.add(rule_id)
        return True

    def _problem(self, line: int, message: str) -> None:
        self.problems.append(message)
        self.problem_lines.append(line)


def _logical_spans(tokens: List[tokenize.TokenInfo]) -> List[Tuple[int, int]]:
    """(first, last) physical-line spans of each logical statement.

    Comment-only and blank lines belong to no span; a comment *inside* a
    bracketed multi-line statement falls within that statement's span.
    """
    spans: List[Tuple[int, int]] = []
    start = None
    for token in tokens:
        if token.type == tokenize.NEWLINE:
            if start is not None:
                spans.append((start, token.end[0]))
                start = None
        elif token.type not in (
            tokenize.COMMENT,
            tokenize.NL,
            tokenize.INDENT,
            tokenize.DEDENT,
            tokenize.ENCODING,
            tokenize.ENDMARKER,
        ):
            if start is None:
                start = token.start[0]
    return spans


def parse_suppressions(source: str) -> SuppressionTable:
    table = SuppressionTable()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
        comments = [t for t in tokens if t.type == tokenize.COMMENT]
    except tokenize.TokenError:  # pragma: no cover - unterminated source
        return table
    for token in comments:
        text = token.string
        if "repro-lint" not in text:
            continue
        line = token.start[0]
        match = _DIRECTIVE.search(text)
        if match is None:
            table._problem(
                line,
                "malformed repro-lint directive (expected "
                "'# repro-lint: disable=RLxx -- justification')",
            )
            continue
        codes = {c.strip() for c in match.group("codes").split(",") if c.strip()}
        bad = sorted(c for c in codes if c != "all" and not _CODE.match(c))
        if not codes or bad:
            table._problem(
                line,
                f"suppression names no valid rule ids ({', '.join(bad) or 'empty'}); "
                "use disable=RLxx[,RLyy] or disable=all",
            )
            continue
        justification = (match.group("why") or "").strip()
        if not justification:
            table._problem(
                line,
                "suppression without justification; append '-- why this is safe'",
            )
            continue
        if "RL00" in codes:
            table._problem(line, "RL00 (suppression hygiene) cannot be suppressed")
            codes.discard("RL00")
            if not codes:
                continue
        suppression = Suppression(
            line=line, codes=codes, justification=justification
        )
        table.by_line[line] = suppression
        table.directives.append(suppression)
    # Widen each directive to its logical statement: findings anchor at a
    # multi-line statement's first line, the trailing directive sits on its
    # last.  setdefault keeps the exact-line directive authoritative when
    # spans touch.
    spans = _logical_spans(tokens)
    for suppression in table.directives:
        for first, last in spans:
            if first <= suppression.line <= last:
                for covered in range(first, last + 1):
                    table.by_line.setdefault(covered, suppression)
                break
    return table
