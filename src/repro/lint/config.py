"""Path policy of the determinism-contract rules.

Rules are scoped by *module path* -- the path of a file relative to the
package root, in posix form (``repro/simulator/engine.py``).  Keeping the
policy in one module (instead of inside each rule) makes the exemptions
reviewable: every entry here is a deliberate, documented hole in a
contract, exactly like an inline suppression.
"""

from __future__ import annotations

from typing import Tuple

#: The only module allowed to construct ``random.Random`` streams: every
#: other module must go through its ``derive_rng`` (SHA-256-keyed) factory,
#: which is what keeps fault draws replayable across processes (RL01).
RNG_FACTORY_MODULES: Tuple[str, ...] = ("repro/faults/distributions.py",)

#: Modules whose file writes persist shared, replayable state (results
#: stores, calibration caches, archived failure traces, spec files).  Any
#: ``open(.., "w")`` / ``os.replace`` here must go through the
#: :mod:`repro.fslock` atomic-replace helper (RL04).
GUARDED_WRITE_MODULES: Tuple[str, ...] = (
    "repro/campaign/",
    "repro/simulator/calibration.py",
    "repro/faults/trace.py",
)

#: The helper that implements the locked atomic-replace discipline itself.
FSLOCK_MODULE = "repro/fslock.py"

#: Modules that *reconstruct* metric trees emitted elsewhere -- the v1 -> v2
#: record migrator re-creates producer metric names by design, and the
#: congestion campaign job projects producer metrics into a trimmed payload.
#: Both are consumers replaying names, not second producers, so they are
#: exempt from the cross-module duplicate check (RL06).
METRIC_RECONSTRUCTION_MODULES: Tuple[str, ...] = (
    "repro/results/migrate.py",
    "repro/analysis/congestion.py",
)

#: Modules that must stay inside the statically-typed mypyc-compilable
#: subset (RL07): the engine hot loop ships as an optional compiled
#: extension built from this exact source.
COMPILED_MODULES: Tuple[str, ...] = ("repro/simulator/_engine_core.py",)


def module_is_guarded_write(module: str) -> bool:
    if module == FSLOCK_MODULE:
        return False
    return any(
        module == entry or (entry.endswith("/") and module.startswith(entry))
        for entry in GUARDED_WRITE_MODULES
    )
