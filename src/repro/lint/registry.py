"""Rule registry.

Every rule is a subclass of :class:`Rule` decorated with ``@register``.  A
rule declares its id (``RLxx``), a one-line invariant, and a rationale tying
the invariant back to reproducibility; ``repro-lint --list-rules`` prints
exactly these fields, so they double as the user-facing contract table.

Rules run in two passes:

* ``check_module(ctx)`` -- per-file, sees one :class:`ModuleContext`;
* ``check_project(ctxs)`` -- once per run over all contexts, for
  cross-module invariants (RL06 metric-namespace collisions).

Either may be a no-op (return an empty list).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Type

from repro.lint.context import ModuleContext
from repro.lint.findings import Finding

_REGISTRY: Dict[str, "Rule"] = {}


class Rule:
    """Base class for determinism-contract rules."""

    id = "RL00"
    name = "unnamed"
    invariant = ""
    rationale = ""

    def check_module(self, ctx: ModuleContext) -> List[Finding]:
        return []

    def check_project(self, ctxs: Sequence[ModuleContext]) -> List[Finding]:
        return []

    def finding(self, ctx: ModuleContext, line: int, col: int, message: str) -> Finding:
        return Finding(rule=self.id, path=ctx.path, line=line, col=col, message=message)


def register(cls: Type[Rule]) -> Type[Rule]:
    if cls.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {cls.id}")
    _REGISTRY[cls.id] = cls()
    return cls


def all_rules() -> List[Rule]:
    """Registered rules in id order."""
    import repro.lint.rules  # noqa: F401  (populates the registry)

    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> Rule:
    import repro.lint.rules  # noqa: F401

    return _REGISTRY[rule_id]
