"""Finding baselines: adopt a new rule without rewriting history inline.

A baseline file records the findings present at one point in time, keyed by
``(path, rule, message)`` with a count per key -- deliberately *not* by line
number, which drifts with every unrelated edit.  With ``--baseline FILE``
the CLI subtracts up to the recorded count per key and fails only on
findings beyond it: new violations, or old ones that multiplied.  A fixed
finding simply leaves its baseline entry idle (baselines are advisory debt
records, so idle entries are reported in the summary, not an error --
regenerate with ``--write-baseline`` after paying debt down).
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence, Tuple

from repro.lint.findings import Finding

BaselineKey = Tuple[str, str, str]

_VERSION = 1


def finding_key(finding: Finding) -> BaselineKey:
    return (finding.path, finding.rule, finding.message)


def to_baseline(findings: Sequence[Finding]) -> Dict[BaselineKey, int]:
    counts: Dict[BaselineKey, int] = {}
    for finding in findings:
        key = finding_key(finding)
        counts[key] = counts.get(key, 0) + 1
    return counts


def write_baseline(findings: Sequence[Finding], path: str) -> int:
    """Write the findings as a baseline file; returns the entry count."""
    counts = to_baseline(findings)
    payload = {
        "version": _VERSION,
        "entries": [
            {"path": p, "rule": rule, "message": message, "count": count}
            for (p, rule, message), count in sorted(counts.items())
        ],
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=1, sort_keys=True)
        fh.write("\n")
    return len(counts)


def load_baseline(path: str) -> Dict[BaselineKey, int]:
    with open(path, encoding="utf-8") as fh:
        payload = json.load(fh)
    if not isinstance(payload, dict) or payload.get("version") != _VERSION:
        raise ValueError(f"{path}: not a repro-lint baseline (version {_VERSION})")
    counts: Dict[BaselineKey, int] = {}
    for entry in payload.get("entries", []):
        key = (str(entry["path"]), str(entry["rule"]), str(entry["message"]))
        counts[key] = counts.get(key, 0) + int(entry.get("count", 1))
    return counts


def apply_baseline(
    findings: Sequence[Finding], baseline: Dict[BaselineKey, int]
) -> Tuple[List[Finding], int, int]:
    """Subtract baselined findings.

    Returns ``(new_findings, matched, idle)``: findings not covered by the
    baseline, how many were absorbed by it, and how many baseline slots went
    unused (debt that has since been paid down).
    """
    remaining = dict(baseline)
    new: List[Finding] = []
    matched = 0
    for finding in findings:
        key = finding_key(finding)
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            matched += 1
        else:
            new.append(finding)
    idle = sum(count for count in remaining.values() if count > 0)
    return new, matched, idle
