"""Reproduction of *HydEE: Failure Containment without Event Logging for
Large Scale Send-Deterministic MPI Applications* (Guermouche, Ropars, Snir,
Cappello -- IPDPS 2012).

The package is organised in layers:

* :mod:`repro.simulator`   -- discrete-event MPI substrate (the MPICH2 +
  Myrinet stand-in),
* :mod:`repro.core`        -- the HydEE protocol itself (Algorithms 1-4),
* :mod:`repro.ftprotocols` -- baseline protocols (native, coordinated
  checkpointing, full message logging, hybrid with event logging),
* :mod:`repro.clustering`  -- the process-clustering tool ([28]),
* :mod:`repro.workloads`   -- NAS-like kernels, NetPIPE ping-pong, stencils,
* :mod:`repro.scenarios`   -- declarative scenario specs + build factory,
* :mod:`repro.campaign`    -- serial/parallel campaign runner + result store,
* :mod:`repro.analysis`    -- performance models and result assembly,
* :mod:`repro.experiments` -- one runnable harness per paper table/figure.

Quick start::

    from repro import Simulation, HydEEProtocol, HydEEConfig
    from repro.workloads import Stencil2DApplication
    from repro.clustering import cluster_application

    app = Stencil2DApplication(nprocs=16, iterations=8)
    clusters = cluster_application(app, num_clusters=4)
    protocol = HydEEProtocol(HydEEConfig(clusters=clusters, checkpoint_interval=2))
    result = Simulation(app, nprocs=16, protocol=protocol).run()
    print(result.stats.summary_lines())
"""

from repro.errors import (
    ClusteringError,
    ConfigurationError,
    DeadlockError,
    InvariantViolation,
    ProtocolError,
    RecoveryError,
    ReproError,
    SimulationError,
    WorkloadError,
)
from repro.simulator import Simulation, SimulationConfig, SimulationResult
from repro.core import HydEEConfig, HydEEProtocol
from repro.ftprotocols import (
    CoordinatedCheckpointProtocol,
    FullMessageLoggingProtocol,
    HybridEventLoggingProtocol,
    NoFaultToleranceProtocol,
    available_protocols,
    make_protocol,
)
from repro.scenarios import (
    ClusteringSpec,
    FailureSpec,
    NetworkSpec,
    ProtocolSpec,
    ScenarioSpec,
    TopologySpec,
    WorkloadSpec,
    build_scenario,
    sweep,
)
from repro.topology import Link, Topology
from repro.campaign import CampaignResult, ResultsStore, run_campaign

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # errors
    "ReproError",
    "SimulationError",
    "DeadlockError",
    "ProtocolError",
    "RecoveryError",
    "InvariantViolation",
    "ClusteringError",
    "WorkloadError",
    "ConfigurationError",
    # simulation
    "Simulation",
    "SimulationConfig",
    "SimulationResult",
    # protocols
    "HydEEConfig",
    "HydEEProtocol",
    "NoFaultToleranceProtocol",
    "CoordinatedCheckpointProtocol",
    "FullMessageLoggingProtocol",
    "HybridEventLoggingProtocol",
    "available_protocols",
    "make_protocol",
    # scenarios + campaigns
    "ScenarioSpec",
    "WorkloadSpec",
    "ProtocolSpec",
    "ClusteringSpec",
    "NetworkSpec",
    "TopologySpec",
    "FailureSpec",
    "Topology",
    "Link",
    "build_scenario",
    "sweep",
    "run_campaign",
    "CampaignResult",
    "ResultsStore",
]
