"""Exception hierarchy for the HydEE reproduction.

Every error raised by the package derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class SimulationError(ReproError):
    """Generic failure of the discrete-event simulation substrate."""


class DeadlockError(SimulationError):
    """Raised when the simulation can no longer make progress.

    A deadlock is detected when the event queue is empty while at least one
    rank is still blocked on a communication operation.  The message lists
    the blocked ranks and the operations they are waiting on, which is the
    information needed to debug both application bugs and protocol bugs
    (Theorem 2 of the paper claims HydEE recovery is deadlock free; the
    integration tests rely on this detector to check it).
    """


class InvalidOperationError(SimulationError):
    """An application or protocol issued an operation that is not legal.

    Examples: receiving on a negative rank, waiting twice on the same
    request, sending from a failed process.
    """


class RankFailedError(SimulationError):
    """An operation was attempted on a rank that has failed and not restarted."""


class ProtocolError(ReproError):
    """A fault-tolerance protocol reached an inconsistent internal state."""


class RecoveryError(ProtocolError):
    """Recovery could not restore a consistent global state."""


class InvariantViolation(ReproError):
    """An executable paper invariant (Lemma/Theorem check) does not hold."""


class ClusteringError(ReproError):
    """The process-clustering substrate received invalid input."""


class WorkloadError(ReproError):
    """A workload (application) was configured inconsistently."""


class ConfigurationError(ReproError):
    """Invalid configuration values passed to a public API entry point."""
