"""NetPIPE-style ping-pong workload (Figure 5).

NetPIPE measures the half round-trip latency and the derived bandwidth of a
two-process ping-pong across a sweep of message sizes.  The paper uses it to
quantify the cost of HydEE's piggybacked (date, phase) pair and of
sender-based payload logging on the Myrinet 10G network:

* between two processes of the *same* cluster ("HydEE no logging") only the
  piggyback is paid;
* between two processes of *different* clusters ("HydEE logging") the
  payload memcpy is paid as well -- and turns out to be invisible because it
  overlaps with the transfer (Section V-C).

The workload measures timings from inside the simulation (via ``comm.now``)
so that exactly the same code path runs for the native and HydEE
configurations; the analytic counterpart lives in
:mod:`repro.analysis.netpipe_analysis`.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Sequence

from repro.errors import WorkloadError
from repro.simulator.network import netpipe_sizes
from repro.workloads.base import Application


class PingPongApplication(Application):
    """Two-rank ping-pong over a sweep of message sizes.

    One application iteration measures every size in :attr:`sizes` with
    :attr:`repeats` round trips each; rank 0's finalize result contains the
    measured half round-trip per size.
    """

    name = "netpipe"

    def __init__(
        self,
        nprocs: int = 2,
        iterations: int = 1,
        sizes: Optional[Sequence[int]] = None,
        repeats: int = 3,
        max_bytes: int = 1 << 20,
    ) -> None:
        if nprocs != 2:
            raise WorkloadError("the ping-pong workload uses exactly 2 ranks")
        super().__init__(nprocs, iterations)
        self.sizes: List[int] = list(sizes) if sizes is not None else list(netpipe_sizes(max_bytes))
        if not self.sizes:
            raise WorkloadError("ping-pong needs at least one message size")
        self.repeats = int(repeats)

    def setup(self, rank: int, nprocs: int) -> Dict[str, Any]:
        return {"half_rtt": {}}

    def iteration(self, comm, rank: int, state: Dict[str, Any], it: int) -> Iterator:
        peer = 1 - rank
        for size in self.sizes:
            start = comm.now
            for _ in range(self.repeats):
                if rank == 0:
                    yield from comm.send(peer, payload=size, tag=70, size_bytes=size)
                    yield from comm.recv(source=peer, tag=71)
                else:
                    yield from comm.recv(source=peer, tag=70)
                    yield from comm.send(peer, payload=size, tag=71, size_bytes=size)
            elapsed = comm.now - start
            # Each repeat is a full round trip; NetPIPE reports half of it.
            state["half_rtt"][size] = elapsed / (2.0 * self.repeats)

    def finalize(self, comm, rank: int, state: Dict[str, Any]) -> Iterator:
        measurements = {
            size: {
                "latency_s": rtt,
                "bandwidth_bytes_per_s": (size / rtt) if rtt > 0 else 0.0,
            }
            for size, rtt in state["half_rtt"].items()
        }
        return {"rank": rank, "measurements": measurements}
        yield  # pragma: no cover

    def snapshot_state(self, state: Dict[str, Any]) -> Any:
        return tuple(state["half_rtt"].items())

    def restore_state(self, snapshot: Any) -> Dict[str, Any]:
        return {"half_rtt": dict(snapshot)}

    def parameters(self) -> Dict[str, Any]:
        params = super().parameters()
        params.update(sizes=len(self.sizes), repeats=self.repeats,
                      max_size=max(self.sizes))
        return params
