"""Application (workload) interface for the simulation substrate.

An application describes an SPMD MPI program as three pieces:

* :meth:`Application.setup` builds the per-rank state object (plain Python
  data; checkpoints snapshot it through :meth:`Application.snapshot_state`),
* :meth:`Application.iteration` is a generator performing one outer iteration
  of the program: communication calls are expressed with ``yield from
  comm.<call>(...)`` and local work with ``yield from comm.compute(t)``,
* :meth:`Application.finalize` is a generator producing the rank's final
  result (often a checksum used by tests to compare executions).

Checkpoints are taken by protocols at iteration boundaries, so rollback
restores ``(iteration, state)`` and re-runs :meth:`iteration` from there.

**Send-determinism.**  The paper's protocol assumes the application is
send-deterministic (Definition 3): for fixed inputs every correct execution
sends the same sequence of messages per process, regardless of the order in
which non-causally-related receptions are delivered.  Every workload in this
package is send-deterministic except
:class:`repro.workloads.master_worker.MasterWorkerApplication`, which is the
counterexample used in tests (matching the paper's observation that
master/worker codes are the main non-send-deterministic class).
:attr:`Application.send_deterministic` advertises the property so protocols
and experiments can check applicability.
"""

from __future__ import annotations

import abc
import copy
from dataclasses import dataclass
from typing import Any, Dict, Iterator, Optional

from repro.errors import WorkloadError

# --------------------------------------------------------------------------
# Checkpoint snapshot helpers.
#
# Checkpoints used to ``copy.deepcopy`` the whole application state on every
# save *and* every restore, which dominated checkpoint-heavy runs.  The
# functions below implement the generic snapshot contract instead: a snapshot
# is an *immutable, structurally shared* value (tuples all the way down) that
# is cheap to build, safe to keep forever, and can be thawed back into a
# fresh mutable state any number of times.  Workloads with a known state
# shape override :meth:`Application.snapshot_state` /
# :meth:`Application.restore_state` with something even tighter; arbitrary
# objects inside the state fall back to ``deepcopy`` transparently.

#: exact types passed through snapshots untouched (immutable scalars).
_ATOMIC_TYPES = frozenset(
    (int, float, str, bool, bytes, complex, type(None), frozenset)
)

#: snapshot container tags (first element of every non-atomic snapshot).
_DICT, _LIST, _TUPLE, _SET, _OPAQUE = "d", "l", "t", "s", "x"


def freeze_state(value: Any) -> Any:
    """Build an immutable, structurally-shared snapshot of ``value``.

    Containers become tagged tuples, immutable scalars are shared as-is and
    anything else (numpy arrays, custom objects) is deep-copied into the
    snapshot.  The result round-trips through :func:`thaw_state`.
    """
    cls = value.__class__
    if cls in _ATOMIC_TYPES:
        return value
    if cls is dict:
        return (_DICT, tuple((k, freeze_state(v)) for k, v in value.items()))
    if cls is list:
        return (_LIST, tuple(freeze_state(v) for v in value))
    if cls is tuple:
        return (_TUPLE, tuple(freeze_state(v) for v in value))
    if cls is set:
        return (_SET, frozenset(value))
    return (_OPAQUE, copy.deepcopy(value))


def thaw_state(snapshot: Any) -> Any:
    """Rebuild a fresh, mutable state from a :func:`freeze_state` snapshot.

    Every call returns an independent structure: thawing the same snapshot
    twice never aliases mutable containers (opaque leaves are deep-copied
    again, matching the old double-``deepcopy`` isolation guarantees).
    """
    if snapshot.__class__ is not tuple:
        return snapshot
    tag, payload = snapshot
    if tag == _DICT:
        return {k: thaw_state(v) for k, v in payload}
    if tag == _LIST:
        return [thaw_state(v) for v in payload]
    if tag == _TUPLE:
        return tuple(thaw_state(v) for v in payload)
    if tag == _SET:
        return set(payload)
    return copy.deepcopy(payload)


@dataclass
class ApplicationInfo:
    """Descriptive metadata used in reports and experiment tables."""

    name: str
    nprocs: int
    iterations: int
    description: str = ""
    parameters: Optional[Dict[str, Any]] = None


class Application(abc.ABC):
    """Base class for simulated SPMD applications."""

    #: Human-readable workload name (used by experiment tables).
    name: str = "application"
    #: Whether the workload satisfies Definition 3 of the paper.
    send_deterministic: bool = True
    #: Whether failure-free epochs of the workload may be fast-forwarded
    #: analytically (:mod:`repro.simulator.hybrid`).  Requires
    #: send-determinism plus directed receives (no ``ANY_SOURCE``) and no
    #: reliance on wall-clock-dependent control flow inside iterations.
    ff_compatible: bool = True
    #: Whether :meth:`fast_forward_states` implements the batched state
    #: advance (the hybrid director's analytic fast path).  Workloads that
    #: opt in must guarantee the bulk advance is *bit-identical* to driving
    #: :meth:`iteration` on every rank, including floating-point rounding.
    ff_bulk_compatible: bool = False

    def __init__(self, nprocs: int, iterations: int) -> None:
        if nprocs < 1:
            raise WorkloadError(f"{self.name}: nprocs must be >= 1, got {nprocs}")
        if iterations < 1:
            raise WorkloadError(f"{self.name}: iterations must be >= 1, got {iterations}")
        self.nprocs = nprocs
        self.iterations = iterations

    # ------------------------------------------------------------------ hooks
    @property
    def num_iterations(self) -> int:
        return self.iterations

    @abc.abstractmethod
    def setup(self, rank: int, nprocs: int) -> Any:
        """Build and return the per-rank application state."""

    @abc.abstractmethod
    def iteration(self, comm, rank: int, state: Any, it: int) -> Iterator:
        """Generator performing one application iteration."""

    def fast_forward_states(
        self, states: Dict[int, Any], start_iteration: int, n: int
    ) -> bool:
        """Advance every rank's live state through ``n`` iterations at once.

        Called by the hybrid director (:mod:`repro.simulator.hybrid`) inside
        a batched failure-free epoch, with ``states`` mapping *every* rank to
        its live state object at iteration count ``start_iteration``.  The
        implementation must mutate the state objects in place to exactly what
        ``n`` exchanged iterations of :meth:`iteration` would produce --
        same values, same floating-point operation order -- without touching
        a communicator.  Return ``False`` when the request cannot be honoured
        (the director then falls back to per-message fast-forwarding).

        Only consulted when :attr:`ff_bulk_compatible` is ``True``.
        """
        return False

    # ------------------------------------------------------------ checkpoints
    def snapshot_state(self, state: Any) -> Any:
        """Immutable snapshot of a rank's live state for a checkpoint.

        The returned value must be safe to keep indefinitely: later mutations
        of ``state`` must not show through, and it must round-trip through
        :meth:`restore_state` into a state equivalent to ``state`` at call
        time.  The default structurally shares immutable data and falls back
        to ``deepcopy`` for opaque objects; workloads with a known state
        shape override this with a tighter (faster) representation.
        """
        return freeze_state(state)

    def restore_state(self, snapshot: Any) -> Any:
        """Fresh mutable state rebuilt from a :meth:`snapshot_state` value.

        Each call must return an *independent* state: restoring the same
        checkpoint twice (repeated rollbacks) must never alias mutable
        structure between the two incarnations or with the snapshot.
        """
        return thaw_state(snapshot)

    def finalize(self, comm, rank: int, state: Any) -> Iterator:
        """Generator returning the rank's final result (default: the state)."""
        return state
        yield  # pragma: no cover - marks this function as a generator

    # ------------------------------------------------------------------- misc
    def info(self) -> ApplicationInfo:
        return ApplicationInfo(
            name=self.name,
            nprocs=self.nprocs,
            iterations=self.iterations,
            description=type(self).__doc__.splitlines()[0] if type(self).__doc__ else "",
            parameters=self.parameters(),
        )

    def parameters(self) -> Dict[str, Any]:
        """Workload parameters worth reporting (overridden by subclasses)."""
        return {"nprocs": self.nprocs, "iterations": self.iterations}

    def communication_matrix(self, weight: str = "bytes"):
        """Analytic per-channel volume estimate, if the workload provides one.

        Workloads used in Table I override this to return an
        ``nprocs x nprocs`` numpy array without running a simulation; the
        default raises so callers fall back to trace-based extraction.
        """
        raise NotImplementedError(
            f"{self.name} does not provide an analytic communication matrix"
        )

    def __repr__(self) -> str:  # pragma: no cover
        return f"{type(self).__name__}(nprocs={self.nprocs}, iterations={self.iterations})"


def checksum(values) -> float:
    """Order-independent checksum helper used by workloads' finalize()."""
    total = 0.0
    for v in values:
        total += float(v)
    return round(total, 10)
