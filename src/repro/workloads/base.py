"""Application (workload) interface for the simulation substrate.

An application describes an SPMD MPI program as three pieces:

* :meth:`Application.setup` builds the per-rank state object (plain Python
  data; it must be ``copy.deepcopy``-able because checkpoints snapshot it),
* :meth:`Application.iteration` is a generator performing one outer iteration
  of the program: communication calls are expressed with ``yield from
  comm.<call>(...)`` and local work with ``yield from comm.compute(t)``,
* :meth:`Application.finalize` is a generator producing the rank's final
  result (often a checksum used by tests to compare executions).

Checkpoints are taken by protocols at iteration boundaries, so rollback
restores ``(iteration, state)`` and re-runs :meth:`iteration` from there.

**Send-determinism.**  The paper's protocol assumes the application is
send-deterministic (Definition 3): for fixed inputs every correct execution
sends the same sequence of messages per process, regardless of the order in
which non-causally-related receptions are delivered.  Every workload in this
package is send-deterministic except
:class:`repro.workloads.master_worker.MasterWorkerApplication`, which is the
counterexample used in tests (matching the paper's observation that
master/worker codes are the main non-send-deterministic class).
:attr:`Application.send_deterministic` advertises the property so protocols
and experiments can check applicability.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, Dict, Iterator, Optional

from repro.errors import WorkloadError


@dataclass
class ApplicationInfo:
    """Descriptive metadata used in reports and experiment tables."""

    name: str
    nprocs: int
    iterations: int
    description: str = ""
    parameters: Optional[Dict[str, Any]] = None


class Application(abc.ABC):
    """Base class for simulated SPMD applications."""

    #: Human-readable workload name (used by experiment tables).
    name: str = "application"
    #: Whether the workload satisfies Definition 3 of the paper.
    send_deterministic: bool = True

    def __init__(self, nprocs: int, iterations: int) -> None:
        if nprocs < 1:
            raise WorkloadError(f"{self.name}: nprocs must be >= 1, got {nprocs}")
        if iterations < 1:
            raise WorkloadError(f"{self.name}: iterations must be >= 1, got {iterations}")
        self.nprocs = nprocs
        self.iterations = iterations

    # ------------------------------------------------------------------ hooks
    @property
    def num_iterations(self) -> int:
        return self.iterations

    @abc.abstractmethod
    def setup(self, rank: int, nprocs: int) -> Any:
        """Build and return the per-rank application state."""

    @abc.abstractmethod
    def iteration(self, comm, rank: int, state: Any, it: int) -> Iterator:
        """Generator performing one application iteration."""

    def finalize(self, comm, rank: int, state: Any) -> Iterator:
        """Generator returning the rank's final result (default: the state)."""
        return state
        yield  # pragma: no cover - marks this function as a generator

    # ------------------------------------------------------------------- misc
    def info(self) -> ApplicationInfo:
        return ApplicationInfo(
            name=self.name,
            nprocs=self.nprocs,
            iterations=self.iterations,
            description=type(self).__doc__.splitlines()[0] if type(self).__doc__ else "",
            parameters=self.parameters(),
        )

    def parameters(self) -> Dict[str, Any]:
        """Workload parameters worth reporting (overridden by subclasses)."""
        return {"nprocs": self.nprocs, "iterations": self.iterations}

    def communication_matrix(self, weight: str = "bytes"):
        """Analytic per-channel volume estimate, if the workload provides one.

        Workloads used in Table I override this to return an
        ``nprocs x nprocs`` numpy array without running a simulation; the
        default raises so callers fall back to trace-based extraction.
        """
        raise NotImplementedError(
            f"{self.name} does not provide an analytic communication matrix"
        )

    def __repr__(self) -> str:  # pragma: no cover
        return f"{type(self).__name__}(nprocs={self.nprocs}, iterations={self.iterations})"


def checksum(values) -> float:
    """Order-independent checksum helper used by workloads' finalize()."""
    total = 0.0
    for v in values:
        total += float(v)
    return round(total, 10)
