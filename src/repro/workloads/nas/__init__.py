"""Synthetic NAS Parallel Benchmark communication kernels (class D patterns)."""

from repro.workloads.nas.base import NASKernelBase, near_factor_grid, square_grid_side
from repro.workloads.nas.bt import BTApplication
from repro.workloads.nas.cg import CGApplication
from repro.workloads.nas.ft import FTApplication
from repro.workloads.nas.lu import LUApplication
from repro.workloads.nas.mg import MGApplication
from repro.workloads.nas.sp import SPApplication

#: Benchmarks of Table I / Figure 6, in the paper's order.
NAS_BENCHMARKS = {
    "bt": BTApplication,
    "cg": CGApplication,
    "ft": FTApplication,
    "lu": LUApplication,
    "mg": MGApplication,
    "sp": SPApplication,
}


def make_nas_application(name: str, nprocs: int, iterations: int = 3, **kwargs):
    """Instantiate a NAS kernel by (case-insensitive) name."""
    try:
        cls = NAS_BENCHMARKS[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown NAS benchmark {name!r}; available: {', '.join(NAS_BENCHMARKS)}"
        ) from None
    return cls(nprocs=nprocs, iterations=iterations, **kwargs)


__all__ = [
    "NASKernelBase",
    "square_grid_side",
    "near_factor_grid",
    "BTApplication",
    "CGApplication",
    "FTApplication",
    "LUApplication",
    "MGApplication",
    "SPApplication",
    "NAS_BENCHMARKS",
    "make_nas_application",
]
