"""Synthetic NAS LU (Lower-Upper Gauss-Seidel) communication kernel.

LU decomposes the domain over a 2-D (non-periodic) process grid and performs
pipelined wavefront sweeps: the lower-triangular sweep sends small plane
messages to the east and south neighbours, the upper-triangular sweep to the
west and north neighbours.  Class D on 256 processes runs 300 time steps and
moves ~337 GB in total (Table I), i.e. ~1.1 GB per iteration -- LU is the
most communication-light of the six benchmarks, and its nearest-neighbour
pattern clusters extremely well (13 % logged with 8 clusters in the paper).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.workloads.nas.base import NASKernelBase, square_grid_side


class LUApplication(NASKernelBase):
    """Wavefront exchange with the (up to) four grid neighbours, no wrap."""

    name = "lu"
    full_run_iterations = 300
    default_compute_seconds = 6.0e-3
    plane_bytes = 1_100_000

    def __init__(self, nprocs: int, iterations: int = 3, **kwargs) -> None:
        super().__init__(nprocs, iterations, **kwargs)
        self.side = square_grid_side(nprocs)

    def coords(self, rank: int) -> Tuple[int, int]:
        return divmod(rank, self.side)

    def sends(self, rank: int) -> List[Tuple[int, int]]:
        row, col = self.coords(rank)
        out: List[Tuple[int, int]] = []
        # Forward (lower-triangular) sweep: east and south.
        if col + 1 < self.side:
            out.append((rank + 1, self.plane_bytes))
        if row + 1 < self.side:
            out.append((rank + self.side, self.plane_bytes))
        # Backward (upper-triangular) sweep: west and north.
        if col > 0:
            out.append((rank - 1, self.plane_bytes))
        if row > 0:
            out.append((rank - self.side, self.plane_bytes))
        return out
