"""Common machinery for the synthetic NAS kernels.

The paper's evaluation uses six class D NAS Parallel Benchmarks on 256
processes (Table I and Figure 6).  What Table I and Figure 6 actually depend
on is each benchmark's *communication pattern* -- which ranks exchange how
many bytes per iteration -- and the ratio between communication and
computation, not the numerical kernels themselves.  Each synthetic kernel
therefore describes its per-iteration exchanges declaratively:

* :meth:`NASKernelBase.sends` returns, for a rank, the list of
  ``(peer, size_bytes)`` messages it sends every iteration;
* the base class derives the matching receive lists, drives the iteration
  (non-blocking exchange + ``waitall`` + local compute), maintains a
  deterministic per-rank checksum (used by the recovery-correctness tests)
  and provides the analytic communication matrix consumed by the clustering
  tool;
* message sizes are calibrated so that a full class D run (with the standard
  NPB iteration counts) moves a total volume comparable to the paper's
  Table I "total amount of data" column.

FT overrides the iteration entirely because its transpose is a genuine
all-to-all.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.errors import WorkloadError
from repro.workloads.base import Application


def square_grid_side(nprocs: int) -> int:
    """Side of the square process grid; requires a perfect square."""
    side = int(round(math.sqrt(nprocs)))
    if side * side != nprocs:
        raise WorkloadError(
            f"this kernel needs a square number of processes, got {nprocs}"
        )
    return side


def near_factor_grid(nprocs: int) -> Tuple[int, int]:
    """(rows, cols) with rows <= cols, rows * cols == nprocs, rows maximal."""
    rows = int(math.isqrt(nprocs))
    while rows > 1 and nprocs % rows != 0:
        rows -= 1
    return rows, nprocs // rows


class NASKernelBase(Application):
    """Base class for the declarative exchange-pattern kernels."""

    name = "nas-kernel"
    ff_bulk_compatible = True
    #: NPB iteration count of the full class D run (used to scale volumes).
    full_run_iterations: int = 100
    #: default compute time per simulated iteration (seconds).
    default_compute_seconds: float = 2.0e-3
    #: tag used by the kernel's point-to-point exchanges.
    tag: int = 40

    def __init__(
        self,
        nprocs: int,
        iterations: int = 3,
        message_scale: float = 1.0,
        compute_seconds: Optional[float] = None,
    ) -> None:
        super().__init__(nprocs, iterations)
        self.message_scale = float(message_scale)
        self.compute_seconds = (
            self.default_compute_seconds if compute_seconds is None else float(compute_seconds)
        )
        self._send_map: Optional[Dict[int, List[Tuple[int, int]]]] = None
        self._recv_map: Optional[Dict[int, List[int]]] = None

    # ------------------------------------------------------------- pattern
    def sends(self, rank: int) -> List[Tuple[int, int]]:
        """(peer, size_bytes) messages sent by ``rank`` every iteration."""
        raise NotImplementedError

    def _scaled(self, nbytes: float) -> int:
        return max(1, int(nbytes * self.message_scale))

    def _build_maps(self) -> None:
        if self._send_map is not None:
            return
        send_map: Dict[int, List[Tuple[int, int]]] = {}
        recv_map: Dict[int, List[int]] = {rank: [] for rank in range(self.nprocs)}
        for rank in range(self.nprocs):
            entries = [(peer, self._scaled(size)) for peer, size in self.sends(rank)]
            for peer, _size in entries:
                if peer == rank or not (0 <= peer < self.nprocs):
                    raise WorkloadError(
                        f"{self.name}: rank {rank} declares an invalid peer {peer}"
                    )
            send_map[rank] = entries
            for peer, _size in entries:
                recv_map[peer].append(rank)
        self._send_map = send_map
        self._recv_map = recv_map

    def send_list(self, rank: int) -> List[Tuple[int, int]]:
        self._build_maps()
        assert self._send_map is not None
        return self._send_map[rank]

    def recv_list(self, rank: int) -> List[int]:
        self._build_maps()
        assert self._recv_map is not None
        return self._recv_map[rank]

    # ---------------------------------------------------------- application
    def setup(self, rank: int, nprocs: int) -> Dict[str, Any]:
        return {"checksum": float(rank + 1), "received": 0}

    def payload(self, rank: int, peer: int, iteration: int) -> float:
        """Deterministic payload so re-executions are comparable."""
        return round(math.sin(0.01 * (rank * 131 + peer * 17 + iteration * 7)) + iteration, 9)

    def iteration(self, comm, rank: int, state: Dict[str, Any], it: int) -> Iterator:
        requests = []
        for peer, size in self.send_list(rank):
            requests.append(
                comm.isend(peer, payload=self.payload(rank, peer, it), tag=self.tag,
                           size_bytes=size)
            )
        for peer in self.recv_list(rank):
            requests.append(comm.irecv(source=peer, tag=self.tag))
        values = yield from comm.waitall(requests)
        acc = 0.0
        for value in values:
            if value is not None and hasattr(value, "payload"):
                acc += float(value.payload)
                state["received"] += 1
        yield from comm.compute(self.compute_seconds)
        state["checksum"] = round(0.5 * state["checksum"] + 0.25 * acc, 9)

    def fast_forward_states(
        self, states: Dict[int, Dict[str, Any]], start_iteration: int, n: int
    ) -> bool:
        """Batched exchange round for the declarative-pattern kernels.

        The payload of every message is a pure function of (sender, receiver,
        iteration), so a rank's accumulator is computable without running the
        exchange.  ``acc`` sums ``float(payload)`` in ``recv_list(rank)``
        order -- the order the matching ``waitall`` yields the receive
        completions -- so the float additions happen in the same order as the
        driven execution and the checksums are bit-identical.

        FT overrides this (its transpose is a genuine all-to-all with a
        different accumulation order); the other five kernels share it.
        """
        if set(states) != set(range(self.nprocs)):
            return False
        self._build_maps()
        recv_map = self._recv_map
        assert recv_map is not None
        payload = self.payload
        for it in range(start_iteration, start_iteration + n):
            for rank, state in states.items():
                acc = 0.0
                for peer in recv_map[rank]:
                    acc += float(payload(peer, rank, it))
                state["received"] += len(recv_map[rank])
                state["checksum"] = round(0.5 * state["checksum"] + 0.25 * acc, 9)
        return True

    def finalize(self, comm, rank: int, state: Dict[str, Any]) -> Iterator:
        return {"rank": rank, "checksum": state["checksum"], "received": state["received"]}
        yield  # pragma: no cover

    def snapshot_state(self, state: Dict[str, Any]) -> Any:
        # Shared by all six kernels (FT included): the per-rank state is the
        # running checksum plus the delivery counter.
        return (state["checksum"], state["received"])

    def restore_state(self, snapshot: Any) -> Dict[str, Any]:
        checksum, received = snapshot
        return {"checksum": checksum, "received": received}

    # --------------------------------------------------------------- analysis
    def communication_matrix(self, weight: str = "bytes") -> np.ndarray:
        """Analytic per-channel volume for the configured number of iterations."""
        self._build_maps()
        matrix = np.zeros((self.nprocs, self.nprocs))
        assert self._send_map is not None
        for rank, entries in self._send_map.items():
            for peer, size in entries:
                matrix[rank, peer] += (size if weight == "bytes" else 1) * self.iterations
        return matrix

    def full_run_matrix(self, weight: str = "bytes") -> np.ndarray:
        """Volume of a full class D run (NPB iteration count), for Table I."""
        per_iteration = self.communication_matrix(weight) / self.iterations
        return per_iteration * self.full_run_iterations

    def bytes_per_iteration(self) -> float:
        return float(self.communication_matrix("bytes").sum()) / self.iterations

    def parameters(self) -> Dict[str, Any]:
        params = super().parameters()
        params.update(
            message_scale=self.message_scale,
            compute_seconds=self.compute_seconds,
            full_run_iterations=self.full_run_iterations,
        )
        return params
