"""Synthetic NAS CG (Conjugate Gradient) communication kernel.

CG distributes the sparse matrix over a square process grid.  Each conjugate
gradient iteration exchanges partial vectors with partners *inside the same
grid row* (a recursive-doubling reduction at distances 1, 2, 4, ... within
the row) and swaps the result with the *transpose partner* (the process at
the mirrored grid coordinates).  With 256 processes the rows have 16 members,
which is why the paper's tool picks 16 clusters (one per row): all the
row-internal traffic stays inside a cluster and only the transpose exchange
is logged (~19 % of the volume, Table I).  Class D moves ~2.3 TB in total
over 100 outer iterations.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.workloads.nas.base import NASKernelBase, square_grid_side


class CGApplication(NASKernelBase):
    """Row-internal recursive-doubling exchange plus transpose-partner swap."""

    name = "cg"
    full_run_iterations = 100
    default_compute_seconds = 10.0e-3
    #: bytes of each row-internal partner exchange.
    row_exchange_bytes = 18_000_000
    #: bytes of the transpose-partner exchange.
    transpose_bytes = 18_000_000

    def __init__(self, nprocs: int, iterations: int = 3, **kwargs) -> None:
        super().__init__(nprocs, iterations, **kwargs)
        self.side = square_grid_side(nprocs)

    def coords(self, rank: int) -> Tuple[int, int]:
        return divmod(rank, self.side)

    def rank_of(self, row: int, col: int) -> int:
        return row * self.side + col

    def sends(self, rank: int) -> List[Tuple[int, int]]:
        row, col = self.coords(rank)
        out: List[Tuple[int, int]] = []
        distance = 1
        while distance < self.side:
            partner_col = col ^ distance
            if partner_col < self.side:
                out.append((self.rank_of(row, partner_col), self.row_exchange_bytes))
            distance <<= 1
        transpose = self.rank_of(col, row)
        if transpose != rank:
            out.append((transpose, self.transpose_bytes))
        return out
