"""Synthetic NAS FT (3-D FFT) communication kernel.

Each FT iteration transposes the distributed 3-D array, which is a global
all-to-all: every process sends a block to every other process.  This is the
pattern that defeats clustering -- with any bisection half of the traffic
crosses the cut, which is why Table I reports 2 clusters, 50 % of processes
to roll back and ~50 % of the data logged.  Class D on 256 processes moves
~860 GB over 25 iterations.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Tuple

import numpy as np

from repro.workloads.nas.base import NASKernelBase


class FTApplication(NASKernelBase):
    """All-to-all transpose every iteration (pairwise exchange collective)."""

    name = "ft"
    full_run_iterations = 25
    default_compute_seconds = 20.0e-3
    #: bytes of each all-to-all block (calibrated for the class D volume).
    block_bytes = 525_000

    def sends(self, rank: int) -> List[Tuple[int, int]]:
        return [
            (peer, self.block_bytes) for peer in range(self.nprocs) if peer != rank
        ]

    def iteration(self, comm, rank: int, state: Dict[str, Any], it: int) -> Iterator:
        blocks = [
            self.payload(rank, dest, it) if dest != rank else 0.0
            for dest in range(self.nprocs)
        ]
        received = yield from comm.alltoall(blocks, size_bytes=self._scaled(self.block_bytes))
        acc = float(sum(v for v in received if isinstance(v, float)))
        state["received"] += self.nprocs - 1
        yield from comm.compute(self.compute_seconds)
        state["checksum"] = round(0.5 * state["checksum"] + 1e-3 * acc, 9)

    def fast_forward_states(
        self, states: Dict[int, Dict[str, Any]], start_iteration: int, n: int
    ) -> bool:
        """Batched all-to-all transpose.

        Mirrors :meth:`iteration` exactly: the received list is ordered by
        source rank with the rank's own 0.0 block at its own index, and the
        accumulator is ``float(sum(...))`` over that sequence -- the same
        float additions in the same order as the exchanged execution.
        """
        if set(states) != set(range(self.nprocs)):
            return False
        nprocs = self.nprocs
        payload = self.payload
        for it in range(start_iteration, start_iteration + n):
            for rank, state in states.items():
                acc = float(sum(
                    payload(source, rank, it) if source != rank else 0.0
                    for source in range(nprocs)
                ))
                state["received"] += nprocs - 1
                state["checksum"] = round(0.5 * state["checksum"] + 1e-3 * acc, 9)
        return True

    def communication_matrix(self, weight: str = "bytes") -> np.ndarray:
        per_message = self._scaled(self.block_bytes) if weight == "bytes" else 1
        matrix = np.full((self.nprocs, self.nprocs), float(per_message * self.iterations))
        np.fill_diagonal(matrix, 0.0)
        return matrix
