"""Synthetic NAS SP (Scalar Penta-diagonal) communication kernel.

SP uses the same multipartition square-grid decomposition as BT but runs
many more, slightly smaller exchanges: class D performs 500 time steps and
moves ~1446 GB in total on 256 processes (Table I), i.e. ~2.9 GB per
iteration.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.workloads.nas.base import NASKernelBase, square_grid_side


class SPApplication(NASKernelBase):
    """Face exchange with the four torus neighbours, SP calibration."""

    name = "sp"
    full_run_iterations = 500
    default_compute_seconds = 8.0e-3
    face_bytes = 2_800_000

    def __init__(self, nprocs: int, iterations: int = 3, **kwargs) -> None:
        super().__init__(nprocs, iterations, **kwargs)
        self.side = square_grid_side(nprocs)

    def coords(self, rank: int) -> Tuple[int, int]:
        return divmod(rank, self.side)

    def rank_of(self, row: int, col: int) -> int:
        return (row % self.side) * self.side + (col % self.side)

    def sends(self, rank: int) -> List[Tuple[int, int]]:
        row, col = self.coords(rank)
        neighbours = [
            self.rank_of(row - 1, col),
            self.rank_of(row + 1, col),
            self.rank_of(row, col - 1),
            self.rank_of(row, col + 1),
        ]
        return [(peer, self.face_bytes) for peer in neighbours if peer != rank]
