"""Synthetic NAS BT (Block Tri-diagonal) communication kernel.

BT uses a multipartition decomposition on a square process grid; each
iteration performs line sweeps in each spatial direction, exchanging cell
faces with the four grid neighbours (periodic boundaries).  Class D on 256
processes moves ~791 GB in total over 250 time steps (Table I), i.e. about
3.1 GB per iteration, which the face size below reproduces.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.workloads.nas.base import NASKernelBase, square_grid_side


class BTApplication(NASKernelBase):
    """Face exchange with the four torus neighbours of a square grid."""

    name = "bt"
    full_run_iterations = 250
    default_compute_seconds = 12.0e-3
    #: bytes per face message (calibrated for the class D total volume).
    face_bytes = 3_000_000

    def __init__(self, nprocs: int, iterations: int = 3, **kwargs) -> None:
        super().__init__(nprocs, iterations, **kwargs)
        self.side = square_grid_side(nprocs)

    def coords(self, rank: int) -> Tuple[int, int]:
        return divmod(rank, self.side)

    def rank_of(self, row: int, col: int) -> int:
        return (row % self.side) * self.side + (col % self.side)

    def sends(self, rank: int) -> List[Tuple[int, int]]:
        row, col = self.coords(rank)
        neighbours = [
            self.rank_of(row - 1, col),
            self.rank_of(row + 1, col),
            self.rank_of(row, col - 1),
            self.rank_of(row, col + 1),
        ]
        return [(peer, self.face_bytes) for peer in neighbours if peer != rank]
