"""Synthetic NAS MG (Multi-Grid) communication kernel.

MG performs V-cycles over a hierarchy of grids with periodic boundaries.  At
the finest level each process exchanges large halos with its nearest grid
neighbours; at coarser levels the halos shrink but the partners move further
away in rank space (every other process participates).  The kernel models
three levels: distance-1 neighbours with large halos, distance-2 with medium
halos and distance-4 with small halos, on a periodic square grid.  Class D on
256 processes moves ~66 GB over ~50 V-cycles (Table I).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.workloads.nas.base import NASKernelBase, square_grid_side


class MGApplication(NASKernelBase):
    """Multi-level halo exchange on a periodic square grid."""

    name = "mg"
    full_run_iterations = 50
    default_compute_seconds = 4.0e-3
    #: (rank-space distance, halo bytes) per level, finest first.
    levels = ((1, 1_000_000), (2, 250_000), (4, 60_000))

    def __init__(self, nprocs: int, iterations: int = 3, **kwargs) -> None:
        super().__init__(nprocs, iterations, **kwargs)
        self.side = square_grid_side(nprocs)

    def coords(self, rank: int) -> Tuple[int, int]:
        return divmod(rank, self.side)

    def rank_of(self, row: int, col: int) -> int:
        return (row % self.side) * self.side + (col % self.side)

    def sends(self, rank: int) -> List[Tuple[int, int]]:
        row, col = self.coords(rank)
        out: List[Tuple[int, int]] = []
        for distance, nbytes in self.levels:
            if distance >= self.side:
                continue
            partners = {
                self.rank_of(row - distance, col),
                self.rank_of(row + distance, col),
                self.rank_of(row, col - distance),
                self.rank_of(row, col + distance),
            }
            for peer in sorted(partners):
                if peer != rank:
                    out.append((peer, nbytes))
        return out
