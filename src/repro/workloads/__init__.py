"""Workloads (simulated applications) exercising the substrate and protocols."""

from repro.workloads.base import Application, ApplicationInfo
from repro.workloads.ring import RingApplication, PipelineApplication
from repro.workloads.stencil import Stencil1DApplication, Stencil2DApplication
from repro.workloads.netpipe import PingPongApplication
from repro.workloads.master_worker import MasterWorkerApplication
from repro.workloads.nas import (
    BTApplication,
    CGApplication,
    FTApplication,
    LUApplication,
    MGApplication,
    NAS_BENCHMARKS,
    SPApplication,
    make_nas_application,
)

__all__ = [
    "Application",
    "ApplicationInfo",
    "RingApplication",
    "PipelineApplication",
    "Stencil1DApplication",
    "Stencil2DApplication",
    "PingPongApplication",
    "MasterWorkerApplication",
    "BTApplication",
    "CGApplication",
    "FTApplication",
    "LUApplication",
    "MGApplication",
    "SPApplication",
    "NAS_BENCHMARKS",
    "make_nas_application",
]
