"""Halo-exchange stencil workloads.

These are the "typical HPC application" used in the quick-start example and
in most recovery tests: a 1-D or 2-D domain decomposition where each rank
exchanges halos with its neighbours every iteration and then updates its
local block.  The communication pattern is static and nearest-neighbour,
which is the kind of pattern that clusters extremely well (few inter-cluster
channels), exactly the regime where HydEE's partial logging shines.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.errors import WorkloadError
from repro.workloads.base import Application


class Stencil1DApplication(Application):
    """1-D Jacobi-style stencil with left/right halo exchange."""

    name = "stencil1d"
    ff_bulk_compatible = True

    def __init__(
        self,
        nprocs: int,
        iterations: int = 5,
        points_per_rank: int = 64,
        halo_bytes: int = 4096,
        compute_seconds: float = 20.0e-6,
    ) -> None:
        super().__init__(nprocs, iterations)
        self.points_per_rank = points_per_rank
        self.halo_bytes = halo_bytes
        self.compute_seconds = compute_seconds

    def setup(self, rank: int, nprocs: int) -> Dict[str, Any]:
        # Deterministic initial condition that differs per rank.
        cells = [math.sin(0.1 * (rank * self.points_per_rank + i)) for i in range(self.points_per_rank)]
        return {"cells": cells}

    def iteration(self, comm, rank: int, state: Dict[str, Any], it: int) -> Iterator:
        cells: List[float] = state["cells"]
        left = rank - 1 if rank > 0 else None
        right = rank + 1 if rank < self.nprocs - 1 else None

        requests = []
        if left is not None:
            requests.append(comm.isend(left, payload=round(cells[0], 9), tag=30,
                                        size_bytes=self.halo_bytes))
            requests.append(comm.irecv(source=left, tag=30))
        if right is not None:
            requests.append(comm.isend(right, payload=round(cells[-1], 9), tag=30,
                                        size_bytes=self.halo_bytes))
            requests.append(comm.irecv(source=right, tag=30))
        values = yield from comm.waitall(requests)

        left_halo = cells[0]
        right_halo = cells[-1]
        # Receive completions are interleaved with send completions in the
        # request list; pick the messages out by their source.
        for value in values:
            if value is None:
                continue
            if left is not None and value.source == left:
                left_halo = value.payload
            elif right is not None and value.source == right:
                right_halo = value.payload

        yield from comm.compute(self.compute_seconds)
        extended = [left_halo] + cells + [right_halo]
        state["cells"] = [
            round((extended[i - 1] + extended[i] + extended[i + 1]) / 3.0, 9)
            for i in range(1, len(extended) - 1)
        ]

    def fast_forward_states(
        self, states: Dict[int, Dict[str, Any]], start_iteration: int, n: int
    ) -> bool:
        """Batched halo exchange over the 1-D chain.

        Mirrors :meth:`iteration` bit for bit: a rank's left halo is the
        value its left neighbour sent rightwards (``round(cells[-1], 9)``),
        its right halo is the right neighbour's ``round(cells[0], 9)``, and
        boundary ranks reuse their own unrounded edge cells.  All halos are
        gathered before any rank updates, matching the exchanged execution.
        """
        if set(states) != set(range(self.nprocs)):
            return False
        last = self.nprocs - 1
        for _ in range(n):
            halos = {}
            for rank, state in states.items():
                cells = state["cells"]
                left_halo = (
                    round(states[rank - 1]["cells"][-1], 9) if rank > 0 else cells[0]
                )
                right_halo = (
                    round(states[rank + 1]["cells"][0], 9) if rank < last else cells[-1]
                )
                halos[rank] = (left_halo, right_halo)
            for rank, state in states.items():
                left_halo, right_halo = halos[rank]
                extended = [left_halo] + state["cells"] + [right_halo]
                state["cells"] = [
                    round((extended[i - 1] + extended[i] + extended[i + 1]) / 3.0, 9)
                    for i in range(1, len(extended) - 1)
                ]
        return True

    def finalize(self, comm, rank: int, state: Dict[str, Any]) -> Iterator:
        local_sum = round(sum(state["cells"]), 9)
        return {"rank": rank, "sum": local_sum}
        yield  # pragma: no cover

    def snapshot_state(self, state: Dict[str, Any]) -> Any:
        return tuple(state["cells"])

    def restore_state(self, snapshot: Any) -> Dict[str, Any]:
        return {"cells": list(snapshot)}

    def parameters(self) -> Dict[str, Any]:
        params = super().parameters()
        params.update(
            points_per_rank=self.points_per_rank,
            halo_bytes=self.halo_bytes,
            compute_seconds=self.compute_seconds,
        )
        return params

    def communication_matrix(self, weight: str = "bytes") -> np.ndarray:
        per_message = self.halo_bytes if weight == "bytes" else 1
        matrix = np.zeros((self.nprocs, self.nprocs))
        for rank in range(self.nprocs):
            for nbr in (rank - 1, rank + 1):
                if 0 <= nbr < self.nprocs:
                    matrix[rank, nbr] += per_message * self.iterations
        return matrix


class Stencil2DApplication(Application):
    """2-D five-point stencil on a process grid with N/S/E/W halo exchange."""

    name = "stencil2d"
    ff_bulk_compatible = True

    def __init__(
        self,
        nprocs: int,
        iterations: int = 5,
        halo_bytes: int = 8192,
        compute_seconds: float = 40.0e-6,
        grid: Tuple[int, int] = None,
    ) -> None:
        super().__init__(nprocs, iterations)
        self.grid = grid or _near_square_grid(nprocs)
        if self.grid[0] * self.grid[1] != nprocs:
            raise WorkloadError(
                f"stencil2d grid {self.grid} does not match nprocs={nprocs}"
            )
        self.halo_bytes = halo_bytes
        self.compute_seconds = compute_seconds
        self._ff_kernel: Optional[Any] = None

    # -- process grid helpers -------------------------------------------------
    def coords(self, rank: int) -> Tuple[int, int]:
        cols = self.grid[1]
        return rank // cols, rank % cols

    def rank_of(self, row: int, col: int) -> int:
        return row * self.grid[1] + col

    def neighbours(self, rank: int) -> List[int]:
        row, col = self.coords(rank)
        rows, cols = self.grid
        out = []
        if row > 0:
            out.append(self.rank_of(row - 1, col))
        if row < rows - 1:
            out.append(self.rank_of(row + 1, col))
        if col > 0:
            out.append(self.rank_of(row, col - 1))
        if col < cols - 1:
            out.append(self.rank_of(row, col + 1))
        return out

    # -- application hooks ----------------------------------------------------
    def setup(self, rank: int, nprocs: int) -> Dict[str, Any]:
        return {"value": float(rank % 17) + 1.0, "halo_sum": 0.0}

    def iteration(self, comm, rank: int, state: Dict[str, Any], it: int) -> Iterator:
        neighbours = self.neighbours(rank)
        requests = []
        outgoing = round(state["value"] * (it + 1), 9)
        for nbr in neighbours:
            requests.append(
                comm.isend(nbr, payload=outgoing, tag=31, size_bytes=self.halo_bytes)
            )
            requests.append(comm.irecv(source=nbr, tag=31))
        values = yield from comm.waitall(requests)
        halo_sum = 0.0
        for value in values:
            if value is not None:
                halo_sum += value.payload
        yield from comm.compute(self.compute_seconds)
        state["halo_sum"] = round(state["halo_sum"] + halo_sum, 9)
        state["value"] = round(0.5 * state["value"] + 0.1 * halo_sum, 9)

    def fast_forward_states(
        self, states: Dict[int, Dict[str, Any]], start_iteration: int, n: int
    ) -> bool:
        """Batched halo exchange: every rank's halo values are available
        locally, so an iteration is one pass over the grid.

        The float operations mirror :meth:`iteration` exactly -- outgoing
        values are rounded first, ``halo_sum`` accumulates in neighbour order
        (the ``waitall`` delivery order of the message path), and the state
        updates use the same rounding -- so the bulk advance is bit-identical
        to the exchanged execution.
        """
        if set(states) != set(range(self.nprocs)):
            return False
        kernel = self._ff_kernel
        if kernel is None:
            kernel = self._ff_kernel = self._build_ff_kernel()
        kernel(states, start_iteration, n)
        return True

    def _build_ff_kernel(self):
        """Compile the batched advance into straight-line code over locals.

        The generated function performs exactly the float operations of the
        generic loop (outgoing values rounded first, ``halo_sum`` accumulated
        in neighbour order from an explicit ``0.0``, the two state updates
        with the same rounding), just without any per-iteration dict or list
        traffic -- this sits on the hybrid executor's hottest path, where the
        interpreter overhead of the generic loop rivals the float work
        itself.

        Each ``round(x, 9)`` is guarded by ``-2**24 < x < 2**24``: outside
        that range the call is skipped because it provably returns ``x``
        unchanged.  The nearest 9-decimal value ``d`` to ``x`` satisfies
        ``|d - x| <= 0.5e-9``, while for ``|x| >= 2**24`` half the gap to the
        neighbouring double is ``0.5 * ulp(x) >= 2**-29 > 1.8e-9``, so ``x``
        is strictly the nearest double to ``d`` and CPython's correctly
        rounded dtoa/strtod round-trip reproduces it bit for bit (NaN and
        +/-inf also round to themselves).  This matters because ``round``
        on large-magnitude doubles costs microseconds (long decimal
        expansions), and the stencil's unnormalised update rule drives
        values through that range by design.
        """
        ranks = range(self.nprocs)
        lines = ["def _ff(states, start_iteration, n, _round=round):"]
        for r in ranks:
            lines.append(f"    s{r} = states[{r}]")
            lines.append(f"    v{r} = s{r}['value']")
            lines.append(f"    h{r} = s{r}['halo_sum']")
        lines.append("    for it in range(start_iteration, start_iteration + n):")
        lines.append("        m = it + 1")

        def rounded(expr: str, tmp: str) -> str:
            return (f"        {tmp} = {expr}\n"
                    f"        {tmp} = _round({tmp}, 9)"
                    f" if -16777216.0 < {tmp} < 16777216.0 else {tmp}")

        for r in ranks:
            lines.append(rounded(f"v{r} * m", f"o{r}"))
        for r in ranks:
            terms = " + ".join(f"o{nbr}" for nbr in self.neighbours(r))
            lines.append(f"        x = 0.0 + {terms}")
            lines.append(rounded(f"h{r} + x", f"h{r}"))
            lines.append(rounded(f"0.5 * v{r} + 0.1 * x", f"v{r}"))
        for r in ranks:
            lines.append(f"    s{r}['value'] = v{r}")
            lines.append(f"    s{r}['halo_sum'] = h{r}")
        namespace: Dict[str, Any] = {}
        exec("\n".join(lines), namespace)
        return namespace["_ff"]

    def finalize(self, comm, rank: int, state: Dict[str, Any]) -> Iterator:
        return {"rank": rank, "value": state["value"], "halo_sum": state["halo_sum"]}
        yield  # pragma: no cover

    def snapshot_state(self, state: Dict[str, Any]) -> Any:
        return (state["value"], state["halo_sum"])

    def restore_state(self, snapshot: Any) -> Dict[str, Any]:
        value, halo_sum = snapshot
        return {"value": value, "halo_sum": halo_sum}

    def parameters(self) -> Dict[str, Any]:
        params = super().parameters()
        params.update(grid=self.grid, halo_bytes=self.halo_bytes,
                      compute_seconds=self.compute_seconds)
        return params

    def communication_matrix(self, weight: str = "bytes") -> np.ndarray:
        per_message = self.halo_bytes if weight == "bytes" else 1
        matrix = np.zeros((self.nprocs, self.nprocs))
        for rank in range(self.nprocs):
            for nbr in self.neighbours(rank):
                matrix[rank, nbr] += per_message * self.iterations
        return matrix


def _near_square_grid(nprocs: int) -> Tuple[int, int]:
    """Largest factorisation rows x cols with rows <= cols and rows maximal."""
    rows = int(math.isqrt(nprocs))
    while rows > 1 and nprocs % rows != 0:
        rows -= 1
    return rows, nprocs // rows
