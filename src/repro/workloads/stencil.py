"""Halo-exchange stencil workloads.

These are the "typical HPC application" used in the quick-start example and
in most recovery tests: a 1-D or 2-D domain decomposition where each rank
exchanges halos with its neighbours every iteration and then updates its
local block.  The communication pattern is static and nearest-neighbour,
which is the kind of pattern that clusters extremely well (few inter-cluster
channels), exactly the regime where HydEE's partial logging shines.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterator, List, Tuple

import numpy as np

from repro.errors import WorkloadError
from repro.workloads.base import Application


class Stencil1DApplication(Application):
    """1-D Jacobi-style stencil with left/right halo exchange."""

    name = "stencil1d"

    def __init__(
        self,
        nprocs: int,
        iterations: int = 5,
        points_per_rank: int = 64,
        halo_bytes: int = 4096,
        compute_seconds: float = 20.0e-6,
    ) -> None:
        super().__init__(nprocs, iterations)
        self.points_per_rank = points_per_rank
        self.halo_bytes = halo_bytes
        self.compute_seconds = compute_seconds

    def setup(self, rank: int, nprocs: int) -> Dict[str, Any]:
        # Deterministic initial condition that differs per rank.
        cells = [math.sin(0.1 * (rank * self.points_per_rank + i)) for i in range(self.points_per_rank)]
        return {"cells": cells}

    def iteration(self, comm, rank: int, state: Dict[str, Any], it: int) -> Iterator:
        cells: List[float] = state["cells"]
        left = rank - 1 if rank > 0 else None
        right = rank + 1 if rank < self.nprocs - 1 else None

        requests = []
        if left is not None:
            requests.append(comm.isend(left, payload=round(cells[0], 9), tag=30,
                                        size_bytes=self.halo_bytes))
            requests.append(comm.irecv(source=left, tag=30))
        if right is not None:
            requests.append(comm.isend(right, payload=round(cells[-1], 9), tag=30,
                                        size_bytes=self.halo_bytes))
            requests.append(comm.irecv(source=right, tag=30))
        values = yield from comm.waitall(requests)

        left_halo = cells[0]
        right_halo = cells[-1]
        # Receive completions are interleaved with send completions in the
        # request list; pick the messages out by their source.
        for value in values:
            if value is None:
                continue
            if left is not None and value.source == left:
                left_halo = value.payload
            elif right is not None and value.source == right:
                right_halo = value.payload

        yield from comm.compute(self.compute_seconds)
        extended = [left_halo] + cells + [right_halo]
        state["cells"] = [
            round((extended[i - 1] + extended[i] + extended[i + 1]) / 3.0, 9)
            for i in range(1, len(extended) - 1)
        ]

    def finalize(self, comm, rank: int, state: Dict[str, Any]) -> Iterator:
        local_sum = round(sum(state["cells"]), 9)
        return {"rank": rank, "sum": local_sum}
        yield  # pragma: no cover

    def snapshot_state(self, state: Dict[str, Any]) -> Any:
        return tuple(state["cells"])

    def restore_state(self, snapshot: Any) -> Dict[str, Any]:
        return {"cells": list(snapshot)}

    def parameters(self) -> Dict[str, Any]:
        params = super().parameters()
        params.update(
            points_per_rank=self.points_per_rank,
            halo_bytes=self.halo_bytes,
            compute_seconds=self.compute_seconds,
        )
        return params

    def communication_matrix(self, weight: str = "bytes") -> np.ndarray:
        per_message = self.halo_bytes if weight == "bytes" else 1
        matrix = np.zeros((self.nprocs, self.nprocs))
        for rank in range(self.nprocs):
            for nbr in (rank - 1, rank + 1):
                if 0 <= nbr < self.nprocs:
                    matrix[rank, nbr] += per_message * self.iterations
        return matrix


class Stencil2DApplication(Application):
    """2-D five-point stencil on a process grid with N/S/E/W halo exchange."""

    name = "stencil2d"
    ff_bulk_compatible = True

    def __init__(
        self,
        nprocs: int,
        iterations: int = 5,
        halo_bytes: int = 8192,
        compute_seconds: float = 40.0e-6,
        grid: Tuple[int, int] = None,
    ) -> None:
        super().__init__(nprocs, iterations)
        self.grid = grid or _near_square_grid(nprocs)
        if self.grid[0] * self.grid[1] != nprocs:
            raise WorkloadError(
                f"stencil2d grid {self.grid} does not match nprocs={nprocs}"
            )
        self.halo_bytes = halo_bytes
        self.compute_seconds = compute_seconds

    # -- process grid helpers -------------------------------------------------
    def coords(self, rank: int) -> Tuple[int, int]:
        cols = self.grid[1]
        return rank // cols, rank % cols

    def rank_of(self, row: int, col: int) -> int:
        return row * self.grid[1] + col

    def neighbours(self, rank: int) -> List[int]:
        row, col = self.coords(rank)
        rows, cols = self.grid
        out = []
        if row > 0:
            out.append(self.rank_of(row - 1, col))
        if row < rows - 1:
            out.append(self.rank_of(row + 1, col))
        if col > 0:
            out.append(self.rank_of(row, col - 1))
        if col < cols - 1:
            out.append(self.rank_of(row, col + 1))
        return out

    # -- application hooks ----------------------------------------------------
    def setup(self, rank: int, nprocs: int) -> Dict[str, Any]:
        return {"value": float(rank % 17) + 1.0, "halo_sum": 0.0}

    def iteration(self, comm, rank: int, state: Dict[str, Any], it: int) -> Iterator:
        neighbours = self.neighbours(rank)
        requests = []
        outgoing = round(state["value"] * (it + 1), 9)
        for nbr in neighbours:
            requests.append(
                comm.isend(nbr, payload=outgoing, tag=31, size_bytes=self.halo_bytes)
            )
            requests.append(comm.irecv(source=nbr, tag=31))
        values = yield from comm.waitall(requests)
        halo_sum = 0.0
        for value in values:
            if value is not None:
                halo_sum += value.payload
        yield from comm.compute(self.compute_seconds)
        state["halo_sum"] = round(state["halo_sum"] + halo_sum, 9)
        state["value"] = round(0.5 * state["value"] + 0.1 * halo_sum, 9)

    def fast_forward_states(
        self, states: Dict[int, Dict[str, Any]], start_iteration: int, n: int
    ) -> bool:
        """Batched halo exchange: every rank's halo values are available
        locally, so an iteration is one pass over the grid.

        The float operations mirror :meth:`iteration` exactly -- outgoing
        values are rounded first, ``halo_sum`` accumulates in neighbour order
        (the ``waitall`` delivery order of the message path), and the state
        updates use the same rounding -- so the bulk advance is bit-identical
        to the exchanged execution.
        """
        if set(states) != set(range(self.nprocs)):
            return False
        neighbours = {rank: self.neighbours(rank) for rank in states}
        for it in range(start_iteration, start_iteration + n):
            outgoing = {
                rank: round(state["value"] * (it + 1), 9)
                for rank, state in states.items()
            }
            for rank, state in states.items():
                halo_sum = 0.0
                for nbr in neighbours[rank]:
                    halo_sum += outgoing[nbr]
                state["halo_sum"] = round(state["halo_sum"] + halo_sum, 9)
                state["value"] = round(0.5 * state["value"] + 0.1 * halo_sum, 9)
        return True

    def finalize(self, comm, rank: int, state: Dict[str, Any]) -> Iterator:
        return {"rank": rank, "value": state["value"], "halo_sum": state["halo_sum"]}
        yield  # pragma: no cover

    def snapshot_state(self, state: Dict[str, Any]) -> Any:
        return (state["value"], state["halo_sum"])

    def restore_state(self, snapshot: Any) -> Dict[str, Any]:
        value, halo_sum = snapshot
        return {"value": value, "halo_sum": halo_sum}

    def parameters(self) -> Dict[str, Any]:
        params = super().parameters()
        params.update(grid=self.grid, halo_bytes=self.halo_bytes,
                      compute_seconds=self.compute_seconds)
        return params

    def communication_matrix(self, weight: str = "bytes") -> np.ndarray:
        per_message = self.halo_bytes if weight == "bytes" else 1
        matrix = np.zeros((self.nprocs, self.nprocs))
        for rank in range(self.nprocs):
            for nbr in self.neighbours(rank):
                matrix[rank, nbr] += per_message * self.iterations
        return matrix


def _near_square_grid(nprocs: int) -> Tuple[int, int]:
    """Largest factorisation rows x cols with rows <= cols and rows maximal."""
    rows = int(math.isqrt(nprocs))
    while rows > 1 and nprocs % rows != 0:
        rows -= 1
    return rows, nprocs // rows
