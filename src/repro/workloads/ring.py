"""Ring / pipeline exchange workloads.

Small, fully deterministic workloads used by unit and property tests: each
rank sends a token to its right neighbour and receives from its left
neighbour every iteration, then performs a fixed amount of local work.  The
final state is a function of every received token, so a single corrupted or
duplicated delivery changes the result -- which is exactly what the recovery
correctness tests want to detect.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator

from repro.workloads.base import Application


class RingApplication(Application):
    """Unidirectional ring exchange."""

    name = "ring"
    ff_bulk_compatible = True

    def __init__(
        self,
        nprocs: int,
        iterations: int = 4,
        message_bytes: int = 1024,
        compute_seconds: float = 10.0e-6,
    ) -> None:
        super().__init__(nprocs, iterations)
        self.message_bytes = message_bytes
        self.compute_seconds = compute_seconds

    def setup(self, rank: int, nprocs: int) -> Dict[str, Any]:
        return {"value": float(rank + 1), "received": []}

    def iteration(self, comm, rank: int, state: Dict[str, Any], it: int) -> Iterator:
        if self.nprocs == 1:
            yield from comm.compute(self.compute_seconds)
            state["value"] += 1.0
            return
        right = (rank + 1) % self.nprocs
        left = (rank - 1) % self.nprocs
        token = round(state["value"] * (it + 1), 6)
        sreq = comm.isend(right, payload=token, tag=10, size_bytes=self.message_bytes)
        message = yield from comm.recv(source=left, tag=10)
        yield from comm.wait(sreq)
        state["received"].append(message.payload)
        state["value"] = round(state["value"] + 0.5 * message.payload, 6)
        yield from comm.compute(self.compute_seconds)

    def fast_forward_states(
        self, states: Dict[int, Dict[str, Any]], start_iteration: int, n: int
    ) -> bool:
        """Batched ring exchange.

        Each rank's iteration consumes exactly the token its left neighbour
        produced this iteration (``round(value * (it + 1), 6)``), so the
        whole round is computable locally.  Tokens are gathered from the
        pre-update values before any rank mutates, and the state update uses
        the same roundings as :meth:`iteration`.
        """
        if set(states) != set(range(self.nprocs)):
            return False
        nprocs = self.nprocs
        if nprocs == 1:
            state = states[0]
            for _ in range(n):
                state["value"] += 1.0
            return True
        for it in range(start_iteration, start_iteration + n):
            tokens = {
                rank: round(state["value"] * (it + 1), 6)
                for rank, state in states.items()
            }
            for rank, state in states.items():
                payload = tokens[(rank - 1) % nprocs]
                state["received"].append(payload)
                state["value"] = round(state["value"] + 0.5 * payload, 6)
        return True

    def finalize(self, comm, rank: int, state: Dict[str, Any]) -> Iterator:
        return {"rank": rank, "value": state["value"], "received": tuple(state["received"])}
        yield  # pragma: no cover

    def snapshot_state(self, state: Dict[str, Any]) -> Any:
        return (state["value"], tuple(state["received"]))

    def restore_state(self, snapshot: Any) -> Dict[str, Any]:
        value, received = snapshot
        return {"value": value, "received": list(received)}

    def parameters(self) -> Dict[str, Any]:
        params = super().parameters()
        params.update(message_bytes=self.message_bytes, compute_seconds=self.compute_seconds)
        return params


class PipelineApplication(Application):
    """Linear pipeline: rank 0 produces, each rank transforms and forwards.

    Exhibits long happened-before chains across many processes, which is the
    stress case for HydEE's phase mechanism (a message late in the pipeline
    causally depends on many earlier inter-cluster messages).
    """

    name = "pipeline"
    ff_bulk_compatible = True

    def __init__(
        self,
        nprocs: int,
        iterations: int = 4,
        message_bytes: int = 2048,
        compute_seconds: float = 5.0e-6,
    ) -> None:
        super().__init__(nprocs, iterations)
        self.message_bytes = message_bytes
        self.compute_seconds = compute_seconds

    def setup(self, rank: int, nprocs: int) -> Dict[str, Any]:
        return {"acc": 0.0}

    def iteration(self, comm, rank: int, state: Dict[str, Any], it: int) -> Iterator:
        nprocs = self.nprocs
        if nprocs == 1:
            yield from comm.compute(self.compute_seconds)
            state["acc"] += it + 1.0
            return
        if rank == 0:
            value = float(it + 1)
            yield from comm.compute(self.compute_seconds)
            yield from comm.send(1, payload=value, tag=20, size_bytes=self.message_bytes)
            state["acc"] += value
        else:
            message = yield from comm.recv(source=rank - 1, tag=20)
            value = message.payload + 1.0
            yield from comm.compute(self.compute_seconds)
            if rank < nprocs - 1:
                yield from comm.send(
                    rank + 1, payload=value, tag=20, size_bytes=self.message_bytes
                )
            state["acc"] += value

    def fast_forward_states(
        self, states: Dict[int, Dict[str, Any]], start_iteration: int, n: int
    ) -> bool:
        """Batched pipeline advance.

        Rank 0's per-iteration value is ``float(it + 1)`` and each later
        rank adds 1.0 to the value it receives, so the chain is computed in
        rank order exactly as the forwarded messages would produce it.
        """
        if set(states) != set(range(self.nprocs)):
            return False
        nprocs = self.nprocs
        if nprocs == 1:
            state = states[0]
            for it in range(start_iteration, start_iteration + n):
                state["acc"] += it + 1.0
            return True
        for it in range(start_iteration, start_iteration + n):
            value = float(it + 1)
            states[0]["acc"] += value
            for rank in range(1, nprocs):
                value = value + 1.0
                states[rank]["acc"] += value
        return True

    def finalize(self, comm, rank: int, state: Dict[str, Any]) -> Iterator:
        return {"rank": rank, "acc": state["acc"]}
        yield  # pragma: no cover

    def snapshot_state(self, state: Dict[str, Any]) -> Any:
        return state["acc"]

    def restore_state(self, snapshot: Any) -> Dict[str, Any]:
        return {"acc": snapshot}

    def parameters(self) -> Dict[str, Any]:
        params = super().parameters()
        params.update(message_bytes=self.message_bytes, compute_seconds=self.compute_seconds)
        return params
