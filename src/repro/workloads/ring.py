"""Ring / pipeline exchange workloads.

Small, fully deterministic workloads used by unit and property tests: each
rank sends a token to its right neighbour and receives from its left
neighbour every iteration, then performs a fixed amount of local work.  The
final state is a function of every received token, so a single corrupted or
duplicated delivery changes the result -- which is exactly what the recovery
correctness tests want to detect.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator

from repro.workloads.base import Application


class RingApplication(Application):
    """Unidirectional ring exchange."""

    name = "ring"

    def __init__(
        self,
        nprocs: int,
        iterations: int = 4,
        message_bytes: int = 1024,
        compute_seconds: float = 10.0e-6,
    ) -> None:
        super().__init__(nprocs, iterations)
        self.message_bytes = message_bytes
        self.compute_seconds = compute_seconds

    def setup(self, rank: int, nprocs: int) -> Dict[str, Any]:
        return {"value": float(rank + 1), "received": []}

    def iteration(self, comm, rank: int, state: Dict[str, Any], it: int) -> Iterator:
        if self.nprocs == 1:
            yield from comm.compute(self.compute_seconds)
            state["value"] += 1.0
            return
        right = (rank + 1) % self.nprocs
        left = (rank - 1) % self.nprocs
        token = round(state["value"] * (it + 1), 6)
        sreq = comm.isend(right, payload=token, tag=10, size_bytes=self.message_bytes)
        message = yield from comm.recv(source=left, tag=10)
        yield from comm.wait(sreq)
        state["received"].append(message.payload)
        state["value"] = round(state["value"] + 0.5 * message.payload, 6)
        yield from comm.compute(self.compute_seconds)

    def finalize(self, comm, rank: int, state: Dict[str, Any]) -> Iterator:
        return {"rank": rank, "value": state["value"], "received": tuple(state["received"])}
        yield  # pragma: no cover

    def snapshot_state(self, state: Dict[str, Any]) -> Any:
        return (state["value"], tuple(state["received"]))

    def restore_state(self, snapshot: Any) -> Dict[str, Any]:
        value, received = snapshot
        return {"value": value, "received": list(received)}

    def parameters(self) -> Dict[str, Any]:
        params = super().parameters()
        params.update(message_bytes=self.message_bytes, compute_seconds=self.compute_seconds)
        return params


class PipelineApplication(Application):
    """Linear pipeline: rank 0 produces, each rank transforms and forwards.

    Exhibits long happened-before chains across many processes, which is the
    stress case for HydEE's phase mechanism (a message late in the pipeline
    causally depends on many earlier inter-cluster messages).
    """

    name = "pipeline"

    def __init__(
        self,
        nprocs: int,
        iterations: int = 4,
        message_bytes: int = 2048,
        compute_seconds: float = 5.0e-6,
    ) -> None:
        super().__init__(nprocs, iterations)
        self.message_bytes = message_bytes
        self.compute_seconds = compute_seconds

    def setup(self, rank: int, nprocs: int) -> Dict[str, Any]:
        return {"acc": 0.0}

    def iteration(self, comm, rank: int, state: Dict[str, Any], it: int) -> Iterator:
        nprocs = self.nprocs
        if nprocs == 1:
            yield from comm.compute(self.compute_seconds)
            state["acc"] += it + 1.0
            return
        if rank == 0:
            value = float(it + 1)
            yield from comm.compute(self.compute_seconds)
            yield from comm.send(1, payload=value, tag=20, size_bytes=self.message_bytes)
            state["acc"] += value
        else:
            message = yield from comm.recv(source=rank - 1, tag=20)
            value = message.payload + 1.0
            yield from comm.compute(self.compute_seconds)
            if rank < nprocs - 1:
                yield from comm.send(
                    rank + 1, payload=value, tag=20, size_bytes=self.message_bytes
                )
            state["acc"] += value

    def finalize(self, comm, rank: int, state: Dict[str, Any]) -> Iterator:
        return {"rank": rank, "acc": state["acc"]}
        yield  # pragma: no cover

    def snapshot_state(self, state: Dict[str, Any]) -> Any:
        return state["acc"]

    def restore_state(self, snapshot: Any) -> Dict[str, Any]:
        return {"acc": snapshot}

    def parameters(self) -> Dict[str, Any]:
        params = super().parameters()
        params.update(message_bytes=self.message_bytes, compute_seconds=self.compute_seconds)
        return params
