"""Master/worker workload -- the non-send-deterministic counterexample.

The study the paper builds on ([10], Cappello et al.) found that master/
worker codes are essentially the only common HPC pattern that is *not*
send-deterministic: the master receives work requests with
``MPI_ANY_SOURCE`` and the identity of the worker that gets the next task --
hence the sequence of messages the master sends -- depends on the order in
which requests arrive.

This workload exists to exercise that boundary:

* it declares :attr:`send_deterministic` ``False``, so
  :class:`repro.core.protocol.HydEEProtocol` refuses to run it unless the
  check is explicitly disabled;
* tests use it to document what breaks when the assumption is violated.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator

from repro.simulator.messages import ANY_SOURCE
from repro.workloads.base import Application

#: tags used by the master/worker exchange.
TASK_TAG = 80
REQUEST_TAG = 81
RESULT_TAG = 82


class MasterWorkerApplication(Application):
    """Rank 0 hands out tasks to workers on demand (ANY_SOURCE receives)."""

    name = "master-worker"
    send_deterministic = False
    # ANY_SOURCE receives cannot be fast-forwarded analytically: the match
    # order is timing-dependent, which is the whole point of this workload.
    ff_compatible = False

    def __init__(
        self,
        nprocs: int,
        iterations: int = 1,
        tasks_per_worker: int = 2,
        task_bytes: int = 4096,
        task_compute_seconds: float = 30.0e-6,
    ) -> None:
        super().__init__(nprocs, iterations)
        self.tasks_per_worker = tasks_per_worker
        self.task_bytes = task_bytes
        self.task_compute_seconds = task_compute_seconds

    @property
    def total_tasks(self) -> int:
        return self.tasks_per_worker * max(1, self.nprocs - 1)

    def setup(self, rank: int, nprocs: int) -> Dict[str, Any]:
        return {"completed": 0, "acc": 0.0}

    def iteration(self, comm, rank: int, state: Dict[str, Any], it: int) -> Iterator:
        nworkers = self.nprocs - 1
        if nworkers == 0:
            yield from comm.compute(self.task_compute_seconds)
            return
        if rank == 0:
            yield from self._master(comm, state)
        else:
            yield from self._worker(comm, rank, state)

    def _master(self, comm, state: Dict[str, Any]) -> Iterator:
        remaining = self.total_tasks
        task_id = 0
        # Hand out tasks as requests arrive (non-deterministic order), then
        # send every worker a stop marker.
        while remaining > 0:
            request = yield from comm.recv(source=ANY_SOURCE, tag=REQUEST_TAG)
            worker = request.source
            task_id += 1
            remaining -= 1
            yield from comm.send(worker, payload=task_id, tag=TASK_TAG,
                                 size_bytes=self.task_bytes)
        results = 0
        while results < self.total_tasks:
            message = yield from comm.recv(source=ANY_SOURCE, tag=RESULT_TAG)
            state["acc"] += float(message.payload)
            results += 1
        for worker in range(1, self.nprocs):
            yield from comm.send(worker, payload=-1, tag=TASK_TAG, size_bytes=64)
        state["completed"] = self.total_tasks

    def _worker(self, comm, rank: int, state: Dict[str, Any]) -> Iterator:
        for _ in range(self.tasks_per_worker):
            yield from comm.send(0, payload=rank, tag=REQUEST_TAG, size_bytes=64)
            task = yield from comm.recv(source=0, tag=TASK_TAG)
            if task.payload == -1:  # pragma: no cover - defensive
                return
            yield from comm.compute(self.task_compute_seconds)
            result = round(task.payload * 1.5 + rank * 0.01, 9)
            state["acc"] += result
            state["completed"] += 1
            yield from comm.send(0, payload=result, tag=RESULT_TAG, size_bytes=128)
        stop = yield from comm.recv(source=0, tag=TASK_TAG)
        assert stop.payload == -1

    def snapshot_state(self, state: Dict[str, Any]) -> Any:
        return (state["completed"], state["acc"])

    def restore_state(self, snapshot: Any) -> Dict[str, Any]:
        completed, acc = snapshot
        return {"completed": completed, "acc": acc}

    def finalize(self, comm, rank: int, state: Dict[str, Any]) -> Iterator:
        return {"rank": rank, "completed": state["completed"], "acc": round(state["acc"], 9)}
        yield  # pragma: no cover
