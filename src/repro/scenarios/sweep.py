"""Grid expansion of scenario specs for parameter sweeps.

:func:`sweep` takes a base :class:`~repro.scenarios.spec.ScenarioSpec` and a
mapping of dotted paths to value lists and returns the cartesian product of
specs, one per grid point::

    specs = sweep(
        base,
        {
            "workload.kind": ["bt", "cg", "lu"],
            "workload.nprocs": [16, 64],
            "protocol.options.checkpoint_interval": [1, 2, 4],
        },
    )

Paths address nested spec dataclasses (``workload.nprocs``) and entries of
their mapping fields (``workload.params.message_scale``,
``config.max_time``, ``tags.label``).  Each produced spec gets a unique
name derived from the base name and its grid coordinates.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Any, List, Mapping, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.scenarios.spec import ScenarioSpec


def _set_path(obj: Any, parts: Sequence[str], value: Any) -> Any:
    """Return a copy of ``obj`` with the attribute/key at ``parts`` replaced."""
    head = parts[0]
    if dataclasses.is_dataclass(obj):
        if head not in obj.__dataclass_fields__:
            raise ConfigurationError(
                f"{type(obj).__name__} has no field {head!r} "
                f"(fields: {sorted(obj.__dataclass_fields__)})"
            )
        current = getattr(obj, head)
        if len(parts) == 1:
            return dataclasses.replace(obj, **{head: value})
        return dataclasses.replace(obj, **{head: _set_path(current, parts[1:], value)})
    if isinstance(obj, Mapping):
        updated = dict(obj)
        if len(parts) == 1:
            updated[head] = value
        else:
            updated[head] = _set_path(updated.get(head, {}), parts[1:], value)
        return updated
    raise ConfigurationError(
        f"cannot descend into {type(obj).__name__} at {'.'.join(parts)!r}"
    )


def with_path(spec: ScenarioSpec, path: str, value: Any) -> ScenarioSpec:
    """Copy of ``spec`` with the dotted ``path`` replaced by ``value``."""
    parts = path.split(".")
    if not all(parts):
        raise ConfigurationError(f"malformed sweep path {path!r}")
    return _set_path(spec, parts, value)


def _coordinate_label(path: str, value: Any) -> str:
    leaf = path.rsplit(".", 1)[-1]
    if isinstance(value, (list, tuple)):
        text = "x".join(str(v) for v in value)
    else:
        text = str(value)
    return f"{leaf}={text}"


def sweep(
    base: ScenarioSpec,
    axes: Mapping[str, Sequence[Any]],
    name_template: str = "{base}[{coords}]",
) -> List[ScenarioSpec]:
    """Expand ``base`` over the cartesian grid described by ``axes``.

    ``axes`` maps dotted spec paths to the values each axis takes; the
    result enumerates every combination in deterministic (insertion, then
    left-to-right) order.  An empty ``axes`` returns ``[base]``.
    """
    if not axes:
        return [base]
    paths: List[str] = list(axes)
    value_lists: List[Tuple[Any, ...]] = []
    for path in paths:
        values = tuple(axes[path])
        if not values:
            raise ConfigurationError(f"sweep axis {path!r} has no values")
        value_lists.append(values)

    specs: List[ScenarioSpec] = []
    for combo in itertools.product(*value_lists):
        spec = base
        for path, value in zip(paths, combo):
            spec = with_path(spec, path, value)
        coords = ",".join(
            _coordinate_label(path, value) for path, value in zip(paths, combo)
        )
        specs.append(spec.with_name(name_template.format(base=base.name, coords=coords)))
    return specs
