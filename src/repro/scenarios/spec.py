"""Declarative scenario specifications.

A :class:`ScenarioSpec` is a frozen, JSON-round-trippable description of one
simulated run: the workload (NAS kernel, NetPIPE ping-pong, ring, stencil,
master-worker -- plus its parameters), the fault-tolerance protocol (by
:mod:`repro.ftprotocols.registry` name), how the ranks are clustered, the
network model, the failure schedule, and :class:`~repro.simulator.simulation.
SimulationConfig` overrides.

Specs are plain data: picklable by construction (so campaigns can fan them
out over ``multiprocessing`` workers) and hashable by content (so completed
results can be cached by :func:`ScenarioSpec.spec_hash`).  The factory that
turns a spec into a live :class:`~repro.simulator.simulation.Simulation`
lives in :mod:`repro.scenarios.build`; the grid expander for parameter
sweeps lives in :mod:`repro.scenarios.sweep`.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.faults.spec import FaultModelSpec
from repro.simulator.failures import validate_failure_group


def _freeze_mapping(value: Optional[Mapping[str, Any]]) -> Dict[str, Any]:
    """Normalise a params mapping to a plain dict (shallow copy)."""
    return dict(value) if value else {}


@dataclass(frozen=True)
class WorkloadSpec:
    """Which application runs, at what size.

    ``kind`` is a key of :data:`repro.scenarios.build.WORKLOAD_FACTORIES`
    (``"bt"``/``"cg"``/... for the NAS kernels, ``"netpipe"``, ``"ring"``,
    ``"pipeline"``, ``"stencil1d"``, ``"stencil2d"``, ``"master-worker"``);
    ``params`` holds the workload's own keyword arguments
    (``message_scale``, ``sizes``, ``halo_bytes``, ...).
    """

    kind: str
    nprocs: int
    iterations: int = 1
    params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "params", _freeze_mapping(self.params))
        if self.nprocs < 1:
            raise ConfigurationError(f"workload {self.kind!r}: nprocs must be >= 1")


@dataclass(frozen=True)
class ClusteringSpec:
    """How ranks are grouped into clusters for the clustered protocols.

    ``method`` is one of

    * ``"none"``      -- protocol default (single cluster / no clustering),
    * ``"explicit"``  -- use :attr:`clusters` verbatim,
    * ``"block"``     -- :func:`repro.clustering.partitioner.block_partition`,
    * ``"partition"`` -- graph-partition the workload's analytic
      communication matrix (``matrix="iteration"`` or ``"full"`` selects
      :meth:`communication_matrix` vs :meth:`full_run_matrix`),
    * ``"preset"``    -- the paper's Table I cluster count for the NAS
      kernel, then graph partitioning.

    The ``topology*`` methods place protocol clusters relative to the
    scenario's physical :class:`TopologySpec` (they require a non-flat
    ``network.topology``):

    * ``"topology"`` / ``"topology-cluster"`` -- one protocol cluster per
      physical cluster (aligned placement: inter-cluster logging traffic is
      exactly the traffic crossing the oversubscribed fabric),
    * ``"topology-node"``       -- one protocol cluster per physical node,
    * ``"topology-misaligned"`` -- deal ranks round-robin across
      ``num_clusters`` (default: the physical cluster count) so every
      protocol cluster straddles every physical cluster (the adversarial
      placement).
    """

    method: str = "none"
    num_clusters: Optional[int] = None
    clusters: Optional[Tuple[Tuple[int, ...], ...]] = None
    balance_tolerance: float = 1.1
    matrix: str = "iteration"

    _METHODS = (
        "none", "explicit", "block", "partition", "preset",
        "topology", "topology-cluster", "topology-node", "topology-misaligned",
    )

    def __post_init__(self) -> None:
        if self.method not in self._METHODS:
            raise ConfigurationError(
                f"unknown clustering method {self.method!r}; expected one of {self._METHODS}"
            )
        if self.clusters is not None:
            object.__setattr__(
                self, "clusters", tuple(tuple(int(r) for r in c) for c in self.clusters)
            )
        if self.method == "explicit" and self.clusters is None:
            raise ConfigurationError("clustering method 'explicit' needs clusters")
        if self.method in ("block", "partition") and self.num_clusters is None:
            raise ConfigurationError(
                f"clustering method {self.method!r} needs num_clusters"
            )


@dataclass(frozen=True)
class ProtocolSpec:
    """Which fault-tolerance protocol runs, with which options.

    ``name`` is a :func:`repro.ftprotocols.registry.make_protocol` name
    (``"native"``, ``"hydee"``, ``"hydee-log-all"``, ``"coordinated"``,
    ``"message-logging"``, ``"hybrid-event-logging"``) or ``"none"`` for a
    bare run without any protocol hooks; ``options`` are forwarded to the
    registry factory (``checkpoint_interval``, ``piggyback_bytes``, ...).
    """

    name: str = "none"
    options: Dict[str, Any] = field(default_factory=dict)
    clustering: ClusteringSpec = field(default_factory=ClusteringSpec)

    def __post_init__(self) -> None:
        object.__setattr__(self, "options", _freeze_mapping(self.options))


@dataclass(frozen=True)
class TopologySpec:
    """Which physical interconnect topology carries the messages.

    ``preset`` is a key of :data:`repro.topology.TOPOLOGY_PRESETS`
    (``"flat"``, ``"hierarchical"``, ``"fat-tree-2level"``,
    ``"cluster-per-node"``); ``params`` holds the preset's keyword arguments
    (``ranks_per_node``, ``nodes_per_cluster``, ``oversubscription``,
    per-tier latencies/bandwidths).  Every parameter is sweepable like any
    other spec path, e.g. ``network.topology.params.oversubscription``.

    The ``"flat"`` preset is the degenerate single-tier topology: routing
    over it reproduces the flat point-to-point model exactly.
    """

    preset: str = "flat"
    params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "params", _freeze_mapping(self.params))
        from repro.topology import available_presets

        if self.preset not in available_presets():
            raise ConfigurationError(
                f"unknown topology preset {self.preset!r}; available: "
                f"{', '.join(available_presets())}"
            )


@dataclass(frozen=True)
class NetworkSpec:
    """Which analytic network model carries the messages.

    ``model`` is a key of :data:`repro.scenarios.build.NETWORK_MODELS`;
    ``overrides`` replaces individual model fields (``bandwidth_bytes_per_s``,
    ``memcpy_overlap_fraction``, ...).  ``topology`` (optional) routes every
    message over a hierarchical :class:`TopologySpec` with deterministic
    link contention; ``None`` keeps the flat point-to-point behaviour and is
    omitted from the serialised form, so pre-topology spec hashes are
    unchanged.
    """

    model: str = "myrinet-mx"
    overrides: Dict[str, Any] = field(default_factory=dict)
    topology: Optional[TopologySpec] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "overrides", _freeze_mapping(self.overrides))
        if isinstance(self.topology, Mapping):
            object.__setattr__(self, "topology", TopologySpec(**self.topology))


@dataclass(frozen=True)
class FailureSpec:
    """One fail-stop failure event (mirrors
    :class:`repro.simulator.failures.FailureEvent`)."""

    ranks: Tuple[int, ...]
    time: Optional[float] = None
    at_iteration: Optional[int] = None
    rank_trigger: Optional[int] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "ranks", tuple(int(r) for r in self.ranks))
        validate_failure_group("failure spec", self.ranks, self.time)
        if (self.time is None) == (self.at_iteration is None):
            raise ConfigurationError(
                "specify exactly one of `time` or `at_iteration` for a failure spec"
            )
        if self.rank_trigger is not None and self.rank_trigger not in self.ranks:
            # Unlike the simulator-level FailureEvent, the declarative layer
            # requires the trigger to be one of the failing ranks: only then
            # can the injector always re-target the event if the trigger
            # rank dies before reaching its iteration boundary.
            raise ConfigurationError(
                f"failure spec rank_trigger {self.rank_trigger} is not one of "
                f"its ranks {list(self.ranks)}"
            )


@dataclass(frozen=True)
class ScenarioSpec:
    """A complete declarative simulation scenario.

    ``config`` holds :class:`~repro.simulator.simulation.SimulationConfig`
    overrides by field name; ``record_trace_events`` defaults to ``False``
    (campaign sweeps skip per-event trace allocation) and must be set
    explicitly by scenarios that compare send sequences.  ``tags`` is
    free-form metadata carried verbatim into campaign records.
    """

    name: str
    workload: WorkloadSpec
    protocol: ProtocolSpec = field(default_factory=ProtocolSpec)
    network: NetworkSpec = field(default_factory=NetworkSpec)
    failures: Tuple[FailureSpec, ...] = ()
    #: stochastic fault model (:mod:`repro.faults`): failures are *drawn*
    #: from a seeded distribution at build() time instead of listed by
    #: hand.  Mutually exclusive with ``failures``; ``None`` is omitted
    #: from the serialised form, so pre-fault-model spec hashes are
    #: unchanged.
    fault_model: Optional[FaultModelSpec] = None
    #: execution strategy: ``"exact"`` runs the full discrete-event loop,
    #: ``"hybrid"`` fast-forwards failure-free epochs analytically and drops
    #: into exact DES only around failures (see
    #: :mod:`repro.simulator.hybrid`).  ``"exact"`` is omitted from the
    #: serialised form, so pre-hybrid spec hashes are unchanged.
    execution: str = "exact"
    config: Dict[str, Any] = field(default_factory=dict)
    tags: Dict[str, Any] = field(default_factory=dict)

    _EXECUTIONS = ("exact", "hybrid")

    def __post_init__(self) -> None:
        object.__setattr__(self, "failures", tuple(self.failures))
        object.__setattr__(self, "config", _freeze_mapping(self.config))
        object.__setattr__(self, "tags", _freeze_mapping(self.tags))
        if self.execution not in self._EXECUTIONS:
            raise ConfigurationError(
                f"unknown execution mode {self.execution!r}; "
                f"expected one of {self._EXECUTIONS}"
            )
        if isinstance(self.fault_model, Mapping):
            object.__setattr__(self, "fault_model", FaultModelSpec(**self.fault_model))
        if self.fault_model is not None and self.failures:
            raise ConfigurationError(
                f"scenario {self.name!r} declares both an explicit failure "
                "list and a fault_model; failures come from exactly one "
                "source (drop one of the two)"
            )

    # -------------------------------------------------------------- json i/o
    def to_dict(self) -> Dict[str, Any]:
        """Plain-data representation (suitable for ``json.dump``)."""
        data = dataclasses.asdict(self)
        # Specs without a topology serialise exactly as before the topology
        # layer existed, keeping their spec hashes (= cache keys) stable.
        if data["network"].get("topology") is None:
            del data["network"]["topology"]
        # Same contract for the fault-model layer: specs without one keep
        # their pinned pre-fault-model hashes.
        if data.get("fault_model") is None:
            data.pop("fault_model", None)
        # And for the execution layer: exact-mode specs keep their
        # pre-hybrid hashes.
        if data.get("execution") == "exact":
            del data["execution"]
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        data = dict(data)
        if "workload" not in data:
            raise ConfigurationError(
                "a scenario spec needs a 'workload' section "
                f"(got keys: {sorted(data)})"
            )
        workload = WorkloadSpec(**data.pop("workload"))
        protocol_data = dict(data.pop("protocol", {}) or {})
        clustering_data = protocol_data.pop("clustering", None)
        clustering = (
            ClusteringSpec(**clustering_data) if clustering_data else ClusteringSpec()
        )
        protocol = ProtocolSpec(clustering=clustering, **protocol_data)
        network_data = data.pop("network", None)
        network = NetworkSpec(**network_data) if network_data else NetworkSpec()
        failures = tuple(FailureSpec(**f) for f in data.pop("failures", ()) or ())
        fault_model_data = data.pop("fault_model", None)
        fault_model = (
            FaultModelSpec(**fault_model_data) if fault_model_data else None
        )
        return cls(
            workload=workload,
            protocol=protocol,
            network=network,
            failures=failures,
            fault_model=fault_model,
            **data,
        )

    def to_json(self, **dumps_kwargs: Any) -> str:
        return json.dumps(self.to_dict(), **dumps_kwargs)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        return cls.from_dict(json.loads(text))

    # --------------------------------------------------------------- hashing
    def canonical_json(self) -> str:
        """Deterministic serialisation used as the cache identity."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    def spec_hash(self) -> str:
        """Content hash of the spec (cache key of campaign result stores)."""
        return hashlib.sha256(self.canonical_json().encode("utf-8")).hexdigest()[:16]

    def calibration_key(self) -> str:
        """Content hash of the spec's *failure-free timing* identity.

        Hybrid warm-up calibration (see :mod:`repro.simulator.calibration`)
        depends only on what the ranks do between failures: workload,
        protocol, clustering, network and config.  The failure draw
        (``failures``/``fault_model``), the scenario ``name``, free-form
        ``tags`` and the ``execution`` switch itself do not change iteration
        timing, so they are stripped before hashing -- Monte Carlo replicas
        and fault sweeps of one scenario share a single calibration entry,
        while any timing-relevant change re-keys it.
        """
        data = self.to_dict()
        for irrelevant in ("name", "failures", "fault_model", "execution", "tags"):
            data.pop(irrelevant, None)
        canonical = json.dumps(data, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]

    # ------------------------------------------------------------------ misc
    def with_name(self, name: str) -> "ScenarioSpec":
        return dataclasses.replace(self, name=name)

    def describe(self) -> str:
        parts = [
            self.workload.kind,
            f"np={self.workload.nprocs}",
            f"it={self.workload.iterations}",
            self.protocol.name,
        ]
        if self.failures:
            parts.append(f"failures={len(self.failures)}")
        if self.fault_model is not None:
            parts.append(f"faults[{self.fault_model.describe()}]")
        return " ".join(parts)


def load_specs(data: Any) -> Tuple[ScenarioSpec, ...]:
    """Parse a JSON value (one spec dict or a list of them) into specs."""
    if isinstance(data, Mapping):
        return (ScenarioSpec.from_dict(data),)
    if isinstance(data, Sequence) and not isinstance(data, (str, bytes)):
        return tuple(ScenarioSpec.from_dict(item) for item in data)
    raise ConfigurationError(
        "expected a scenario spec object or a list of them, "
        f"got {type(data).__name__}"
    )
