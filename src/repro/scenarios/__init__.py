"""Declarative scenario layer: specs, the build factory, and sweeps.

Every experiment, benchmark and example declares its runs as
:class:`ScenarioSpec` objects and hands them to the campaign runner
(:mod:`repro.campaign`) instead of wiring :class:`Simulation` objects by
hand.  Quick use::

    from repro.scenarios import ScenarioSpec, WorkloadSpec, ProtocolSpec, build

    spec = ScenarioSpec(
        name="demo",
        workload=WorkloadSpec(kind="stencil2d", nprocs=16, iterations=8),
        protocol=ProtocolSpec(name="hydee", options={"checkpoint_interval": 2}),
    )
    result = build(spec).run()
"""

from repro.faults.spec import FaultModelSpec
from repro.scenarios.spec import (
    ClusteringSpec,
    FailureSpec,
    NetworkSpec,
    ProtocolSpec,
    ScenarioSpec,
    TopologySpec,
    WorkloadSpec,
    load_specs,
)
from repro.scenarios.build import (
    NETWORK_MODELS,
    WORKLOAD_FACTORIES,
    available_networks,
    available_workloads,
    build,
    build_application,
    build_config,
    build_failures,
    build_network,
    build_protocol,
    build_topology,
    resolve_clusters,
    to_network_spec,
)
from repro.scenarios.sweep import sweep, with_path

#: alias with an unambiguous name for top-level re-export.
build_scenario = build

__all__ = [
    "build_scenario",
    "ScenarioSpec",
    "WorkloadSpec",
    "ProtocolSpec",
    "ClusteringSpec",
    "NetworkSpec",
    "TopologySpec",
    "FailureSpec",
    "FaultModelSpec",
    "load_specs",
    "build",
    "build_topology",
    "build_application",
    "build_protocol",
    "build_network",
    "build_failures",
    "build_config",
    "resolve_clusters",
    "to_network_spec",
    "available_workloads",
    "available_networks",
    "WORKLOAD_FACTORIES",
    "NETWORK_MODELS",
    "sweep",
    "with_path",
]
